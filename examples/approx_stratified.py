"""Approximate queries: uniform vs. stratified samples on skewed data.

The approximate tier (see docs/approx.md) answers aggregate queries
from materialized catalog samples, scaling SUM/COUNT by the inverse
sampling fraction and attaching 95% confidence intervals.  On skewed
data the *kind* of sample matters: a 1% uniform sample of a table
where one "whale" segment holds 90% of the rows routinely drops whole
tail segments -- their expected sample size is under one row -- while
a sample stratified on the grouping column keeps every group, at the
cost of slightly looser rates inside the whale.

This example builds the heavy-hitter ``events`` table from
``repro.datasets.skewed``, materializes both sample kinds, and runs
the same GROUP BY through exact, uniform-approximate, and
stratified-approximate execution.

Run:  python examples/approx_stratified.py
"""

from repro import LevelHeadedEngine
from repro.datasets.skewed import SKEWED_QUERIES, generate_events

SQL = SKEWED_QUERIES["segment_totals"] + " ORDER BY e_segment"


def show(result, title: str) -> None:
    print(f"== {title} ==")
    print(result.to_text())
    meta = result.approx
    if meta:
        bars = ", ".join(
            f"{name} ±{info['error']:.4g}"
            for name, info in meta["columns"].items()
            if info["error"] is not None
        )
        print(f"({meta['rows'] if 'rows' in meta else result.num_rows} groups, "
              f"fraction={meta['fraction']:g}, 95% CI: {bars})")
    else:
        print(f"({result.num_rows} groups, exact)")
    print()


def main() -> None:
    engine = LevelHeadedEngine(catalog=generate_events())

    show(engine.query(SQL), "exact")

    # a 1% uniform sample: tight on the whale, but tail segments hold
    # ~60 rows each -- expected sample size 0.6 rows, so some vanish
    engine.create_sample("events", 0.01, kind="uniform", seed=5)
    uniform = engine.query(SQL, approx=True)
    show(uniform, "1% uniform sample")

    # stratified on the grouping column: every segment is sampled
    # independently (min 1 row per stratum), so no group disappears
    engine.drop_sample(engine.samples()[0]["name"])
    engine.create_sample(
        "events", 0.01, kind="stratified", strata=["e_segment"], seed=5
    )
    stratified = engine.query(SQL, approx=True)
    show(stratified, "1% stratified sample (strata=e_segment)")

    exact_groups = engine.query(SQL).num_rows
    print(f"groups: exact={exact_groups} "
          f"uniform={uniform.num_rows} stratified={stratified.num_rows}")
    if stratified.num_rows == exact_groups > uniform.num_rows:
        print("the uniform sample lost tail segments; stratification kept them all")


if __name__ == "__main__":
    main()
