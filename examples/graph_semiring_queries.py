"""Beyond the paper's benchmarks: graph patterns and semiring queries.

LevelHeaded descends from EmptyHeaded, a WCOJ engine for *graph*
processing, and its AJAR foundation covers any commutative semiring
(Section II-C).  This example shows both inheritances:

* triangle counting -- a cyclic join where the WCOJ architecture is
  asymptotically better than any pairwise plan (AGM bound |E|^1.5),
  written as three self-joins of an edge table;
* shortest paths -- Bellman-Ford as repeated (min, +) matrix-vector
  products over the engine's own tries.

Run:  python examples/graph_semiring_queries.py
"""

import numpy as np

from repro import LevelHeadedEngine, Schema, Table, key, annotation
from repro.la import distances_to_target, semiring_matmul
from repro.la.matrix import matrix_schema
from repro.query import MIN_PLUS, agm_bound
from repro.sql import bind, parse
from repro.query.translate import translate

TRIANGLE_SQL = """
SELECT count(*) AS triangles
FROM edges e1, edges e2, edges e3
WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src
"""


def triangles_demo() -> None:
    print("== triangle counting: the WCOJ home turf ==")
    rng = np.random.default_rng(0)
    n, m = 200, 2000
    edges = list({(int(a), int(b)) for a, b in rng.integers(0, n, size=(m, 2))})
    engine = LevelHeadedEngine()
    engine.create_table(
        Schema("__v", [key("v", domain="node")]), v=np.arange(n)
    )
    engine.create_table(
        Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
        src=[e[0] for e in edges],
        dst=[e[1] for e in edges],
    )

    compiled = translate(bind(parse(TRIANGLE_SQL), engine.catalog))
    bound = agm_bound(compiled.hypergraph)
    print(f"  |E| = {len(edges)}, AGM output bound |E|^1.5 = {bound:,.0f}")
    plan = engine.compile(TRIANGLE_SQL)
    print(f"  plan: single GHD node (FHW 1.5), order {list(plan.root.attrs)}")
    count = engine.query(TRIANGLE_SQL).single_value()
    print(f"  directed triangles: {count}")

    adjacency = set(edges)
    reference = sum(
        1
        for a, b in adjacency
        for c in range(n)
        if (b, c) in adjacency and (c, a) in adjacency
    )
    assert count == reference
    print("  verified against a nested-loop reference: OK\n")


def semiring_demo() -> None:
    print("== AJAR beyond sum-product: (min, +) shortest paths ==")
    # a small weighted road network
    arcs = [
        (0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0), (1, 3, 1.0),
        (2, 3, 5.0), (3, 4, 3.0), (1, 4, 6.0),
    ]
    edges = Table.from_columns(
        matrix_schema("roads", "city"),
        i=[a[0] for a in arcs],
        j=[a[1] for a in arcs],
        v=[a[2] for a in arcs],
    )
    distances = distances_to_target(edges, target=4, n=5)
    print("  distance to city 4 from each city:", distances)
    assert distances[0] == 7.0  # 0 ->1 2 ->2 1 ->3 1 ->4 3
    print("  (min,+) two-hop distance product D2 = W ⊗ W:")
    two_hop = semiring_matmul(edges, edges, MIN_PLUS)
    for (i, j), d in sorted(two_hop.items()):
        print(f"    {i} -> {j}: {d}")
    print("  the same tries, a different semiring: OK")


if __name__ == "__main__":
    triangles_demo()
    semiring_demo()
