"""The Section VII application: SQL + feature encoding + model training.

Reproduces the voter-classification pipeline: join voters with their
precincts and filter in SQL, one-hot encode the categorical
demographics, and train a logistic regression for five iterations --
on LevelHeaded and on the three baseline pipelines of Figure 6,
printing the per-phase timing decomposition.

Run:  python examples/voter_classification.py [n_voters]
"""

import sys

from repro.datasets import generate_voters
from repro.ml import run_all_pipelines


def main(n_voters: int = 30_000) -> None:
    print(f"generating {n_voters} voters across {max(10, n_voters // 200)} precincts ...")
    catalog = generate_voters(
        n_voters=n_voters, n_precincts=max(10, n_voters // 200), seed=45
    )

    print("running the four Figure 6 pipelines (5 training iterations each)\n")
    results = run_all_pipelines(catalog, iterations=5)

    header = f"{'engine':<18} {'sql':>8} {'encode':>8} {'train':>8} {'total':>8} {'acc':>6}"
    print(header)
    print("-" * len(header))
    best_total = min(r.total_seconds for r in results)
    for r in sorted(results, key=lambda r: r.total_seconds):
        print(
            f"{r.engine:<18} {r.sql_seconds * 1000:>6.1f}ms {r.encode_seconds * 1000:>6.1f}ms "
            f"{r.train_seconds * 1000:>6.1f}ms {r.total_seconds * 1000:>6.1f}ms {r.accuracy:>6.3f}"
        )
    print()
    for r in results:
        print(f"{r.engine}: {r.total_seconds / best_total:.2f}x of best")
    print(
        "\nall pipelines train the identical from-scratch model; the spread "
        "comes from SQL processing and data transformation (the paper's point)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
