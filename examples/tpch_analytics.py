"""Business-intelligence example: the TPC-H workload end to end.

Generates a small TPC-H database with the dbgen-like generator, runs
the paper's seven benchmark queries (Section VI-B1) on LevelHeaded,
cross-checks every result against the pairwise relational baseline, and
prints the chosen query plans for the interesting join patterns.

Run:  python examples/tpch_analytics.py [scale_factor]
"""

import sys
import time

from repro import LevelHeadedEngine
from repro.baselines import PairwiseEngine
from repro.datasets import TPCH_QUERIES, generate_tpch


def main(scale_factor: float = 0.002) -> None:
    print(f"generating TPC-H at SF {scale_factor} ...")
    catalog = generate_tpch(scale_factor=scale_factor, seed=7)
    lineitem_rows = catalog.table("lineitem").num_rows
    print(f"  lineitem: {lineitem_rows} rows\n")

    levelheaded = LevelHeadedEngine(catalog)
    pairwise = PairwiseEngine(catalog)

    for name, sql in TPCH_QUERIES.items():
        start = time.perf_counter()
        result = levelheaded.query(sql)
        elapsed = time.perf_counter() - start
        reference = pairwise.query(sql)
        match = result.sorted_rows() == reference.sorted_rows() or all(
            all(abs(x - y) < 1e-6 if isinstance(x, float) else x == y for x, y in zip(a, b))
            for a, b in zip(result.sorted_rows(), reference.sorted_rows())
        )
        status = "matches pairwise baseline" if match else "MISMATCH!"
        print(f"{name}: {result.num_rows} rows in {elapsed * 1000:.1f}ms  [{status}]")
        if name == "Q5":
            print("\n  Q5's plan (the paper's two-node GHD, Figure 4):")
            for line in levelheaded.explain(sql).splitlines():
                print("   ", line)
            print()

    print("\nsample output -- Q5 revenue per nation:")
    print(levelheaded.query(TPCH_QUERIES["Q5"]).to_text())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.002)
