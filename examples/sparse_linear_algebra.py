"""Linear-algebra example: sparse and dense kernels as SQL queries.

Shows the Section VI-B2 kernels through the engine: sparse matvec and
matmul run as pure aggregate-join queries (with the cost-based
optimizer recovering MKL's loop order via the relaxed attribute order,
Figure 5b), while dense kernels are routed opaquely to the BLAS
substrate thanks to attribute elimination.  Results are verified
against scipy/numpy.

Run:  python examples/sparse_linear_algebra.py
"""

import time

import numpy as np
from scipy import sparse as sp

from repro import LevelHeadedEngine
from repro.datasets import sparse_profile
from repro.la import matmul_sql, matvec_sql


def sparse_demo() -> None:
    print("== sparse kernels on a CFD-profile matrix (harbor-like) ==")
    (rows, cols, vals), n = sparse_profile("harbor", scale=0.5, seed=3)
    print(f"  n={n}, nnz={rows.size}")
    engine = LevelHeadedEngine()
    m = engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    x = np.random.default_rng(0).normal(size=n)
    engine.register_vector("x", x, domain="dim")
    print(f"  registered {m!r}")
    csr = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()

    engine.query(matvec_sql("m", "x"))  # warm the trie cache
    start = time.perf_counter()
    smv = engine.query(matvec_sql("m", "x"))
    print(f"  SMV as SQL: {(time.perf_counter() - start) * 1000:.1f}ms")
    assert np.allclose(smv.to_vector(n), csr @ x)

    plan = engine.compile(matmul_sql("m"))
    print(f"  SMM attribute order: {list(plan.root.attrs)} "
          f"(relaxed={plan.root.relaxed} -- MKL's i,k,j loop order)")
    start = time.perf_counter()
    smm = engine.query(matmul_sql("m"))
    print(f"  SMM as SQL: {(time.perf_counter() - start) * 1000:.1f}ms, "
          f"{smm.num_rows} output nonzeros")
    assert np.allclose(smm.to_dense(n), (csr @ csr).toarray())
    print("  verified against scipy: OK\n")


def dense_demo() -> None:
    print("== dense kernels route to the BLAS substrate ==")
    n = 96
    rng = np.random.default_rng(1)
    dense = rng.normal(size=(n, n))
    engine = LevelHeadedEngine()
    d = engine.register_matrix("d", dense, domain="ddim")
    y = engine.register_vector("y", rng.normal(size=n), domain="ddim")

    plan = engine.compile(matmul_sql("d"))
    print(f"  DMM plan mode: {plan.mode} (einsum {plan.blas.einsum_spec})")
    result = engine.query(matmul_sql("d"))
    assert np.allclose(result.to_dense(n), dense @ dense)
    assert np.allclose(d.to_dense(), dense)

    dmv = engine.query(matvec_sql("d", "y"))
    assert np.allclose(dmv.to_vector(n), dense @ y.to_vector())
    print("  DMM and DMV verified against numpy: OK")


if __name__ == "__main__":
    sparse_demo()
    dense_demo()
