"""Quickstart: one engine, BI and LA queries through the same SQL API.

LevelHeaded's pitch (Section I): a single relational engine whose
worst-case optimal join architecture serves both SQL-style business
intelligence queries and linear algebra kernels.  This example builds a
tiny sales database *and* a sparse matrix in one catalog and queries
both -- same engine, same SQL.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AttrType, LevelHeadedEngine, Schema, annotation, key
from repro.la import matmul_sql


def main() -> None:
    engine = LevelHeadedEngine()

    # -- a BI-ish schema: customers and their orders -----------------------
    engine.create_table(
        Schema(
            "customer",
            [
                key("c_custkey", domain="custkey"),
                annotation("c_name", AttrType.STRING),
                annotation("c_city", AttrType.STRING),
            ],
        ),
        c_custkey=[0, 1, 2],
        c_name=["ada", "grace", "edsger"],
        c_city=["london", "new york", "amsterdam"],
    )
    engine.create_table(
        Schema(
            "orders",
            [
                key("o_orderkey", domain="orderkey"),
                key("o_custkey", domain="custkey"),
                annotation("o_total"),
            ],
        ),
        o_orderkey=[100, 101, 102, 103, 104],
        o_custkey=[0, 0, 1, 2, 1],
        o_total=[25.0, 75.0, 110.0, 40.0, 90.0],
    )

    print("== revenue per customer (aggregate-join over the WCOJ engine) ==")
    result = engine.query(
        """
        SELECT c_name, sum(o_total) AS revenue, count(*) AS n_orders
        FROM customer, orders
        WHERE c_custkey = o_custkey
        GROUP BY c_name
        """
    )
    print(result.to_text())

    print("\n== the same engine runs linear algebra: C = A @ A ==")
    rows = np.array([0, 0, 1, 2, 3])
    cols = np.array([1, 3, 2, 0, 3])
    vals = np.array([2.0, 1.0, 3.0, 4.0, 5.0])
    a = engine.register_matrix("a", rows=rows, cols=cols, values=vals, n=4, domain="dim")
    print(f"registered {a!r}")
    result = engine.query(matmul_sql("a"))
    print(result.to_text())

    dense = np.zeros((4, 4))
    dense[rows, cols] = vals
    assert np.allclose(
        [[r[2] for r in result.to_rows() if (r[0], r[1]) == (i, j)] or [0]
         for i in range(4) for j in range(4)],
        (dense @ dense).ravel().reshape(-1, 1),
    ), "engine result must equal numpy"
    print("\nverified against numpy: OK")

    print("\n== the optimizer at work: EXPLAIN for the matmul ==")
    print(engine.explain(matmul_sql("a")))


if __name__ == "__main__":
    main()
