"""The shard fleet, end to end: one surface, N worker processes.

Four contracts under test:

* **Differential correctness** -- every query answered by a shard
  surface (1, 2, and 4 workers) is byte-identical to the single-process
  serial engine: same column names, same dtypes, same values, same row
  order.  Covered across the router's three paths: scatter (Q1-style
  scan aggregate, Q3, Q5 -- lineitem and orders co-partitioned on
  orderkey), single (replicated-only operands), and local fallback
  (triangle's self-join off the partition key, SMM, GEMV).
* **Merged observability** -- ``collect_stats`` counters on routed
  queries equal the serial engine's byte for byte, one ``query_id``
  correlates the coordinator's flight entry with one entry per shard,
  and ``/healthz`` degrades when a worker dies.
* **Cancel fan-out** -- cancelling a scattered query kills it on every
  worker within the deadline envelope, frees the coordinator's
  governor slots, and leaves one ``cancelled`` flight entry per shard
  plus one at the coordinator, all sharing the query_id.
* **The unified surface** -- ``repro.connect()`` DSN parsing, the
  ``QuerySurface`` protocol across topologies, and typed
  ``UnsupportedOnTopology`` for options a topology cannot honor.
"""

import multiprocessing
import time

import numpy as np
import pytest

import repro
from repro import (
    CancelToken,
    EngineConfig,
    LevelHeadedEngine,
    QuerySurface,
    Schema,
    Table,
    annotation,
    key,
    parse_dsn,
)
from repro.errors import (
    QueryCancelledError,
    ReproError,
    UnsupportedOnTopology,
)
from repro.la import matmul_sql, matvec_sql
from repro.shard import (
    ShardCoordinator,
    choose_partition_domain,
    leading_domain,
    shard_indices,
    slice_table,
)
from repro.shard.coordinator import LOCAL, SCATTER, SINGLE
from repro.storage import AttrType, Catalog
from repro.xcution.parfor import parfor_chunks_mp
from tests.conftest import make_matrix_catalog, make_mini_tpch

Q1_STYLE_SQL = (
    "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue, "
    "count(*) AS n, min(l_quantity) AS lo, max(l_quantity) AS hi "
    "FROM lineitem"
)

Q3_SQL = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15'
GROUP BY l_orderkey, o_orderdate
"""

Q5_SQL = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1995-01-01'
GROUP BY n_name
"""

TRIANGLE_SQL = (
    "SELECT count(*) AS triangles FROM edges e1, edges e2, edges e3 "
    "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
)

#: a query over replicated tables only (region/nation never partition
#: when orderkey is the partition domain) -> the ``single`` route.
REPLICATED_SQL = (
    "SELECT r_name, count(*) AS n FROM nation, region "
    "WHERE n_regionkey = r_regionkey GROUP BY r_name"
)


def make_graph_catalog(n_nodes=20, n_edges=60, seed=7) -> Catalog:
    rng = np.random.default_rng(seed)
    edges = sorted(
        {(int(a), int(b)) for a, b in rng.integers(0, n_nodes, size=(n_edges, 2))}
    )
    cat = Catalog()
    cat.register(
        Table.from_columns(
            Schema("__v", [key("v", domain="node")]), v=np.arange(n_nodes)
        )
    )
    cat.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
            src=[e[0] for e in edges],
            dst=[e[1] for e in edges],
        )
    )
    return cat


def make_la_catalog() -> Catalog:
    cat = make_matrix_catalog(
        entries=[
            (0, 0, 2.0), (0, 2, 4.0), (1, 0, 1.0), (1, 3, 2.5),
            (2, 3, 5.0), (3, 1, 3.0), (3, 4, 1.5), (4, 2, 0.5),
            (5, 5, 7.0), (5, 0, 2.0),
        ],
        n=6,
    )
    cat.register(
        Table.from_columns(
            Schema("vec", [key("i", domain="dim"), annotation("v")]),
            i=[0, 1, 2, 3, 4, 5],
            v=[1.0, 0.5, 2.0, 1.5, 3.0, 0.25],
        )
    )
    return cat


def assert_results_identical(serial, sharded):
    """Byte-identity: names, dtypes, values, and row order all equal."""
    assert list(sharded.names) == list(serial.names)
    assert sharded.num_rows == serial.num_rows
    for name in serial.names:
        want, got = serial.column(name), sharded.column(name)
        assert got.dtype == want.dtype, f"{name}: {got.dtype} != {want.dtype}"
        if want.dtype.kind == "O":
            assert got.tolist() == want.tolist(), name
        else:
            assert np.array_equal(got, want), name


# ---------------------------------------------------------------------------
# DSN parsing and repro.connect() dispatch
# ---------------------------------------------------------------------------


def test_parse_dsn_local_forms():
    assert parse_dsn(None) == ("local", {})
    assert parse_dsn("") == ("local", {})
    assert parse_dsn("local") == ("local", {})


def test_parse_dsn_tcp():
    assert parse_dsn("tcp://10.0.0.5:7687") == (
        "tcp",
        {"host": "10.0.0.5", "port": 7687},
    )


def test_parse_dsn_shard_options():
    scheme, options = parse_dsn(
        "shard://local?workers=4&partition=orderkey&start_method=spawn"
    )
    assert scheme == "shard"
    assert options == {
        "workers": 4,
        "partition": "orderkey",
        "start_method": "spawn",
    }
    assert parse_dsn("shard://local") == ("shard", {})


@pytest.mark.parametrize(
    "dsn",
    [
        "host:1234",                      # missing scheme
        "tcp://hostonly",                 # missing port
        "shard://remotehost?workers=2",   # only shard://local exists
        "shard://local?workers=zero",     # non-integer workers
        "shard://local?workers=0",        # < 1 worker
        "shard://local?wrokers=4",        # typo'd option never ignored
        "carrier-pigeon://local",         # unknown scheme
    ],
)
def test_parse_dsn_rejects_malformed(dsn):
    with pytest.raises(ReproError):
        parse_dsn(dsn)


def test_connect_local_returns_engine():
    engine = repro.connect()
    assert isinstance(engine, LevelHeadedEngine)
    assert isinstance(engine, QuerySurface)
    engine.close()


def test_connect_accepts_positional_config_for_back_compat():
    engine = repro.connect(EngineConfig(join_strategy="wcoj"))
    assert isinstance(engine, LevelHeadedEngine)
    assert engine.config.join_strategy == "wcoj"
    with pytest.raises(ReproError):
        repro.connect(EngineConfig(), config=EngineConfig())


@pytest.mark.parametrize(
    "option, value",
    [
        ("catalog", Catalog()),
        ("config", EngineConfig()),
        ("max_concurrency", 4),
        ("global_memory_budget", 1 << 20),
        ("join_strategy", "wcoj"),
    ],
)
def test_connect_tcp_rejects_engine_options(option, value):
    with pytest.raises(UnsupportedOnTopology) as excinfo:
        repro.connect("tcp://127.0.0.1:7687", **{option: value})
    assert excinfo.value.option == option
    assert excinfo.value.topology == "tcp"


# ---------------------------------------------------------------------------
# differential correctness: sharded == serial, byte for byte
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=[1, 2, 4])
def tpch_fleet(request):
    """One serial engine and one N-worker shard surface, same catalog."""
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog)
    sharded = repro.connect(
        f"shard://local?workers={request.param}", catalog=catalog
    )
    yield serial, sharded
    sharded.close()


@pytest.mark.parametrize(
    "sql", [Q1_STYLE_SQL, Q3_SQL, Q5_SQL, REPLICATED_SQL],
    ids=["q1_scan", "q3", "q5", "replicated"],
)
def test_sharded_matches_serial_on_tpch(tpch_fleet, sql):
    serial, sharded = tpch_fleet
    assert_results_identical(serial.query(sql), sharded.query(sql))


def test_auto_partition_domain_is_orderkey(tpch_fleet):
    serial, sharded = tpch_fleet
    sharded.query(Q1_STYLE_SQL)  # force the first sync
    assert sharded._partition_domain == "orderkey"


def test_router_picks_the_documented_routes(tpch_fleet):
    serial, sharded = tpch_fleet
    sharded.query(Q1_STYLE_SQL)  # force sync so _partitioned is populated
    for sql, route in [
        (Q1_STYLE_SQL, SCATTER),
        (Q3_SQL, SCATTER),
        (Q5_SQL, SCATTER),
        (REPLICATED_SQL, SINGLE),
    ]:
        plan, _, _ = sharded.engine._cached_plan(sql, sharded.engine.config)
        assert sharded._route(plan) == route, sql


def test_prepared_statement_routes_through_coordinator(tpch_fleet):
    serial, sharded = tpch_fleet
    sql = "SELECT sum(l_extendedprice) AS s FROM lineitem WHERE l_quantity > ?"
    with sharded.prepare(sql) as stmt:
        assert stmt.params == 1
        for threshold in (0.0, 5.0, 100.0):
            assert_results_identical(
                serial.query(sql, params=[threshold]),
                stmt.execute([threshold]),
            )


@pytest.fixture(scope="module", params=[2, 4])
def graph_fleet(request):
    catalog = make_graph_catalog()
    serial = LevelHeadedEngine(catalog)
    sharded = repro.connect(
        f"shard://local?workers={request.param}", catalog=catalog
    )
    yield serial, sharded
    sharded.close()


def test_triangle_falls_back_to_local_and_matches(graph_fleet):
    serial, sharded = graph_fleet
    assert_results_identical(serial.query(TRIANGLE_SQL), sharded.query(TRIANGLE_SQL))
    plan, _, _ = sharded.engine._cached_plan(TRIANGLE_SQL, sharded.engine.config)
    assert sharded._route(plan) == LOCAL


@pytest.fixture(scope="module")
def la_fleet():
    catalog = make_la_catalog()
    serial = LevelHeadedEngine(catalog)
    sharded = repro.connect("shard://local?workers=2", catalog=catalog)
    yield serial, sharded
    sharded.close()


@pytest.mark.parametrize(
    "sql", [matmul_sql("matrix"), matvec_sql("matrix", "vec")],
    ids=["smm", "gemv"],
)
def test_la_kernels_match_serial(la_fleet, sql):
    serial, sharded = la_fleet
    assert_results_identical(serial.query(sql), sharded.query(sql))


# ---------------------------------------------------------------------------
# merged stats and flight correlation
# ---------------------------------------------------------------------------


def test_scattered_stats_match_serial_counters():
    """Counters on a 1-worker scatter equal the serial engine's.

    The serial baseline passes an explicit CancelToken because worker
    sessions always mint one (cancel_checks would differ otherwise).
    """
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog)
    with repro.connect("shard://local?workers=1", catalog=catalog) as sharded:
        want = serial.query(
            Q3_SQL, collect_stats=True, cancel_token=CancelToken()
        ).stats
        got = sharded.query(Q3_SQL, collect_stats=True).stats
        assert got.as_dict() == want.as_dict()


def test_scattered_stats_sum_across_two_workers():
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog)
    want = serial.query(Q3_SQL, collect_stats=True).stats
    with repro.connect("shard://local?workers=2", catalog=catalog) as sharded:
        got = sharded.query(Q3_SQL, collect_stats=True).stats
    # scatter splits the groups across shards; the merged counters must
    # still account for every group and row exactly once
    assert got.groups_emitted == want.groups_emitted
    assert sum(got.node_rows.values()) == sum(want.node_rows.values())
    assert got.plan_cache_misses == 1  # the coordinator's own compile


def test_query_id_correlates_coordinator_and_every_shard():
    catalog = make_mini_tpch()
    with repro.connect("shard://local?workers=2", catalog=catalog) as sharded:
        result = sharded.query(Q3_SQL, collect_stats=True)
        qid = result.query_id
        assert qid
        assert result.stats.query_id == qid
        coord_entries = sharded.engine.debug_snapshot("flight")["entries"]
        assert [e["outcome"] for e in coord_entries if e["query_id"] == qid] == ["ok"]
        flight = sharded.debug("flight")
        assert len(flight["shards"]) == 2
        for shard_view in flight["shards"]:
            matching = [
                e for e in shard_view["entries"] if e["query_id"] == qid
            ]
            assert len(matching) == 1, f"shard {shard_view['shard']}"
            assert matching[0]["outcome"] == "ok"


def test_trace_stitches_one_span_per_shard():
    catalog = make_mini_tpch()
    with repro.connect("shard://local?workers=2", catalog=catalog) as sharded:
        result = sharded.query(Q3_SQL, trace=True)
        assert result.trace.name == "shard.scatter"
        shards = sorted(child.payload["shard"] for child in result.trace.children)
        assert shards == [0, 1]


def test_metrics_prometheus_aggregates_worker_counters():
    catalog = make_mini_tpch()
    with repro.connect("shard://local?workers=2", catalog=catalog) as sharded:
        sharded.query(Q3_SQL)
        text = sharded.metrics_prometheus()
    assert "repro_shard_workers 2" in text
    assert "repro_shard_workers_alive 2" in text
    assert "repro_shard_worker_server_queries 2" in text


# ---------------------------------------------------------------------------
# cancellation fan-out
# ---------------------------------------------------------------------------


def make_slow_catalog(n_keys=120_000) -> Catalog:
    """A join wide enough that WCOJ iterates ~n_keys outer values."""
    cat = Catalog()
    keys = np.arange(n_keys)
    cat.register(
        Table.from_columns(
            Schema("fact", [key("k", domain="bigk"), annotation("v")]),
            k=keys,
            v=np.ones(n_keys),
        )
    )
    cat.register(
        Table.from_columns(Schema("dimt", [key("k", domain="bigk")]), k=keys)
    )
    return cat


SLOW_SQL = "SELECT sum(f.v) AS s FROM fact f, dimt d WHERE f.k = d.k"


def test_cancel_fans_out_to_every_worker_and_frees_slots():
    surface = repro.connect(
        "shard://local?workers=2",
        catalog=make_slow_catalog(),
        join_strategy="wcoj",
        max_concurrency=2,
    )
    try:
        handle = surface.submit(SLOW_SQL)
        # wait for the query to reach the execute phase on the workers
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            queries = surface.engine.inflight.snapshot()
            if any(q["phase"] == "execute" for q in queries):
                break
            time.sleep(0.01)
        else:
            pytest.fail("query never reached the execute phase")
        time.sleep(0.05)
        assert handle.cancel()
        with pytest.raises(QueryCancelledError) as excinfo:
            handle.result(timeout=30.0)
        qid = excinfo.value.query_id
        assert qid

        # one cancelled flight entry at the coordinator...
        coord = [
            e
            for e in surface.engine.debug_snapshot("flight")["entries"]
            if e["query_id"] == qid
        ]
        assert [e["outcome"] for e in coord] == ["cancelled"]
        # ...and one per shard, within a bounded settle window (the
        # worker records its entry when the cancel frame lands)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            views = surface.debug("flight")["shards"]
            per_shard = [
                [e for e in view.get("entries", []) if e["query_id"] == qid]
                for view in views
            ]
            if all(len(entries) == 1 for entries in per_shard):
                break
            time.sleep(0.05)
        assert all(
            entries and entries[0]["outcome"] == "cancelled"
            for entries in per_shard
        ), per_shard

        # every governor slot is back
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if surface.engine.governor.snapshot()["active"] == 0:
                break
            time.sleep(0.05)
        assert surface.engine.governor.snapshot()["active"] == 0
        # the fleet still answers queries after the cancel storm
        assert surface.query(REPLICATED_SQL_SLOWCAT) is not None
    finally:
        surface.close()


#: trivially fast follow-up query for the post-cancel health check.
REPLICATED_SQL_SLOWCAT = "SELECT count(*) AS n FROM dimt"


# ---------------------------------------------------------------------------
# liveness, degradation, and lifecycle
# ---------------------------------------------------------------------------


def test_healthz_degrades_when_a_worker_dies():
    from repro.server.http import MetricsHTTPServer

    surface = repro.connect("shard://local?workers=2", catalog=make_mini_tpch())
    try:
        surface.query(Q1_STYLE_SQL)
        http = MetricsHTTPServer(surface)
        assert http.health()["status"] == "ok"

        surface.workers[0].process.kill()
        surface.workers[0].process.join(timeout=10.0)
        payload = http.health()
        assert payload["status"] == "degraded"
        liveness = {s["shard"]: s["alive"] for s in payload["shards"]}
        assert liveness == {0: False, 1: True}
    finally:
        surface.close()


def test_close_leaves_no_worker_processes():
    surface = repro.connect("shard://local?workers=2", catalog=make_mini_tpch())
    pids = [w.process.pid for w in surface.workers]
    assert all(w.alive() for w in surface.workers)
    surface.close()
    surface.close()  # idempotent
    for worker in surface.workers:
        assert not worker.alive()
    ours = {p.pid for p in multiprocessing.active_children()}
    assert not (ours & set(pids))


# ---------------------------------------------------------------------------
# typed topology errors
# ---------------------------------------------------------------------------


def test_shard_surface_rejects_unsupported_options(tpch_fleet):
    serial, sharded = tpch_fleet
    with pytest.raises(UnsupportedOnTopology) as excinfo:
        sharded.query(Q1_STYLE_SQL, config=EngineConfig())
    assert excinfo.value.option == "config"
    assert excinfo.value.topology == "shard"
    with pytest.raises(UnsupportedOnTopology) as excinfo:
        sharded.query(Q1_STYLE_SQL, profile=True)
    assert excinfo.value.option == "profile"
    with pytest.raises(UnsupportedOnTopology):
        sharded.query(Q1_STYLE_SQL, partial=True)
    with pytest.raises(UnsupportedOnTopology):
        sharded.prepare(Q1_STYLE_SQL, config=EngineConfig())
    with pytest.raises(UnsupportedOnTopology):
        sharded.config = EngineConfig()


# ---------------------------------------------------------------------------
# the partitioner
# ---------------------------------------------------------------------------


def test_shard_indices_partition_every_row_exactly_once(mini_tpch):
    lineitem = mini_tpch.tables["lineitem"]
    for workers in (1, 2, 3, 4):
        slices = shard_indices(lineitem, "l_orderkey", workers)
        assert len(slices) == workers
        combined = np.sort(np.concatenate(slices))
        assert np.array_equal(combined, np.arange(lineitem.num_rows))
    # co-partitioning: equal keys land on the same shard across tables
    orders = mini_tpch.tables["orders"]
    l_buckets = {
        int(k): shard
        for shard, idx in enumerate(shard_indices(lineitem, "l_orderkey", 3))
        for k in lineitem.column("l_orderkey")[idx]
    }
    o_buckets = {
        int(k): shard
        for shard, idx in enumerate(shard_indices(orders, "o_orderkey", 3))
        for k in orders.column("o_orderkey")[idx]
    }
    for orderkey, shard in o_buckets.items():
        assert l_buckets.get(orderkey, shard) == shard


def test_shard_indices_hash_non_integer_values():
    # key attributes are always integral in this engine, but the hash
    # path must still cover any value dtype deterministically
    table = Table.from_columns(
        Schema(
            "names",
            [key("id", domain="names"), annotation("name", AttrType.STRING)],
        ),
        id=[0, 1, 2, 3, 4],
        name=["alpha", "beta", "gamma", "delta", "epsilon"],
    )
    slices = shard_indices(table, "name", 2)
    combined = np.sort(np.concatenate(slices))
    assert np.array_equal(combined, np.arange(table.num_rows))
    again = shard_indices(table, "name", 2)
    for first, second in zip(slices, again):
        assert np.array_equal(first, second)


def test_choose_partition_domain_prefers_biggest_and_skips_anchors(mini_tpch):
    assert choose_partition_domain(mini_tpch.tables.values()) == "orderkey"
    la = make_la_catalog()
    # the __dim-style anchor table must not vote
    anchor_only = [t for t in la.tables.values() if t.name.startswith("__")]
    assert choose_partition_domain(la.tables.values()) is not None


def test_slice_table_keeps_schema_and_rows(mini_tpch):
    lineitem = mini_tpch.tables["lineitem"]
    indices = np.array([0, 3, 5])
    sliced = slice_table(lineitem, indices)
    assert sliced.schema is lineitem.schema
    assert sliced.num_rows == 3
    assert np.array_equal(
        sliced.column("l_orderkey"), lineitem.column("l_orderkey")[indices]
    )


def test_leading_domain(mini_tpch):
    assert leading_domain(mini_tpch.tables["lineitem"]) == "orderkey"
    assert leading_domain(mini_tpch.tables["region"]) == "regionkey"


# ---------------------------------------------------------------------------
# the multiprocessing parfor fallback
# ---------------------------------------------------------------------------


def _chunk_total(sl: slice) -> int:
    return sum(i * i for i in range(sl.start, sl.stop))


def test_parfor_chunks_mp_matches_serial():
    total = 101
    want = sum(i * i for i in range(total))
    got = sum(parfor_chunks_mp(_chunk_total, total, 2))
    assert got == want


def test_parfor_chunks_mp_unpicklable_worker_degrades_to_serial():
    acc = []

    def worker(sl: slice):  # a closure: cannot cross a process boundary
        acc.append(sl)
        return sum(range(sl.start, sl.stop))

    got = sum(parfor_chunks_mp(worker, 10, 4))
    assert got == sum(range(10))
    assert len(acc) == 4  # it really ran in-process


def test_parfor_chunks_mp_honors_cancel():
    token = CancelToken()
    token.cancel("test")
    with pytest.raises(QueryCancelledError):
        list(parfor_chunks_mp(_chunk_total, 100, 2, cancel=token))
