"""Approximate tier: samples, rewrite, error bars, persistence (PR 10).

Pins the ``repro.approx`` contract:

* sampling is deterministic -- identical ``(base, fraction, kind,
  strata, seed)`` arguments produce byte-identical sample columns, and
  stratified samples keep every stratum key;
* samples version with the catalog: ``replace_table`` drops them, and
  sample churn never flushes *exact* cached plans;
* samples persist: ``save_catalog`` / ``load_catalog`` round-trips the
  sample tables and re-ties them to their bases;
* estimation is honest: ``fraction=1.0`` reproduces the exact answer
  bit-for-bit with every error bar at ``0.0``, ``approx=False`` is
  byte-identical to a sample-free engine, MIN/MAX are flagged
  non-scalable, and the 95% CI covers the truth on >= 95% of cells
  over 40 seeded trials;
* the three request spellings (``approx=``, the ``APPROXIMATE``
  prefix, DSN ``?approx=``) agree, and explain output (text and
  ``schema_version`` 2 JSON) carries the approx block.
"""

import numpy as np
import pytest

import repro
from repro import EngineConfig, LevelHeadedEngine
from repro.approx import APPROX_POLICIES, default_sample_name, normalize_policy
from repro.core.engine import EXPLAIN_SCHEMA_VERSION
from repro.datasets import generate_events
from repro.errors import ReproError, UnsupportedQueryError
from repro.storage import AttrType, Catalog, Schema, Table, annotation, key
from repro.storage.persist import load_catalog, save_catalog

from .conftest import make_mini_tpch

Q1ISH_SQL = (
    "SELECT l_suppkey, SUM(l_extendedprice) AS revenue, COUNT(*) AS lines "
    "FROM lineitem GROUP BY l_suppkey"
)


def _measure_catalog(n=4000, groups=4, seed=7) -> Catalog:
    """One flat fact table with a group key and a noisy measure."""
    rng = np.random.default_rng(seed)
    cat = Catalog()
    cat.register(
        Table.from_columns(
            Schema(
                "t",
                [
                    key("rowid", domain="t_rowid"),
                    annotation("g", AttrType.LONG),
                    annotation("v", AttrType.DOUBLE),
                ],
            ),
            rowid=np.arange(n, dtype=np.int64),
            g=rng.integers(0, groups, size=n),
            v=rng.normal(100.0, 15.0, size=n),
        )
    )
    return cat


# ---------------------------------------------------------------------------
# sampling: determinism and strata preservation
# ---------------------------------------------------------------------------


def test_uniform_sample_is_seed_deterministic():
    a = LevelHeadedEngine(generate_events(seed=3))
    b = LevelHeadedEngine(generate_events(seed=3))
    sa = a.create_sample("events", 0.1, seed=42)
    sb = b.create_sample("events", 0.1, seed=42)
    assert sa.name == sb.name == default_sample_name("events", 0.1, "uniform")
    assert sa.num_rows == sb.num_rows > 0
    for name in sa.columns:
        assert np.array_equal(sa.column(name), sb.column(name))
    # a different seed draws a different sample
    sc = a.create_sample("events", 0.1, seed=43, name="other_seed")
    assert sc.num_rows != sa.num_rows or not all(
        np.array_equal(sc.column(n), sa.column(n)) for n in sa.columns
    )


def test_stratified_sample_preserves_every_stratum():
    engine = LevelHeadedEngine(generate_events())
    base = engine.catalog.table("events")
    sample = engine.create_sample(
        "events", 0.01, kind="stratified", strata=["e_segment"], seed=5
    )
    assert set(np.unique(sample.column("e_segment"))) == set(
        np.unique(base.column("e_segment"))
    )
    # ...where a 1% uniform sample of the same skew loses tail groups
    uniform = engine.create_sample("events", 0.01, seed=5, name="u1")
    assert len(np.unique(uniform.column("e_segment"))) < len(
        np.unique(base.column("e_segment"))
    )


def test_sample_is_a_queryable_catalog_table():
    engine = LevelHeadedEngine(make_mini_tpch())
    sample = engine.create_sample("lineitem", 0.5, seed=1)
    r = engine.query(f"SELECT count(*) AS n FROM {sample.name}")
    assert r.columns["n"][0] == sample.num_rows
    metas = engine.samples()
    assert [m["name"] for m in metas] == [sample.name]
    assert metas[0]["base"] == "lineitem" and metas[0]["seed"] == 1
    engine.drop_sample(sample.name)
    assert engine.samples() == []


# ---------------------------------------------------------------------------
# catalog versioning
# ---------------------------------------------------------------------------


def test_replace_table_drops_samples_and_cached_plans():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 0.5, seed=1)
    exact = engine.query(Q1ISH_SQL)
    assert engine.samples()
    fresh = make_mini_tpch().table("lineitem")
    engine.replace_table(fresh)
    assert engine.samples() == []  # samples of the old rows are gone
    before = engine.plan_cache.stats.hits
    r = engine.query(Q1ISH_SQL)  # recompiles against the new table
    assert engine.plan_cache.stats.hits == before
    assert r.sorted_rows() == exact.sorted_rows()  # same contents, new plan


def test_sample_churn_does_not_flush_exact_plans():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.query(Q1ISH_SQL)  # warm
    engine.create_sample("lineitem", 0.5, seed=1)
    before = engine.plan_cache.stats.hits
    engine.query(Q1ISH_SQL)
    assert engine.plan_cache.stats.hits == before + 1  # still a cache hit


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def test_samples_survive_save_and_load(tmp_path):
    engine = LevelHeadedEngine(generate_events())
    sample = engine.create_sample(
        "events", 0.05, kind="stratified", strata=["e_segment"], seed=9
    )
    save_catalog(engine.catalog, str(tmp_path))
    reloaded = LevelHeadedEngine(load_catalog(str(tmp_path)))
    metas = reloaded.samples()
    assert [m["name"] for m in metas] == [sample.name]
    assert metas[0]["kind"] == "stratified"
    assert metas[0]["strata"] == ["e_segment"]
    got = reloaded.catalog.table(sample.name)
    for name in sample.columns:
        assert np.array_equal(got.column(name), sample.column(name))
    # re-tied to the reloaded base: approx queries find the sample...
    r = reloaded.query(
        "SELECT e_segment, SUM(e_amount) AS total FROM events "
        "GROUP BY e_segment",
        approx=True,
    )
    assert r.approx is not None and r.approx["fraction"] == 0.05
    assert [use["sample"] for use in r.approx["samples"]] == [sample.name]
    # ...and replacing the reloaded base still drops them
    reloaded.replace_table(generate_events(seed=12).table("events"))
    assert reloaded.samples() == []


# ---------------------------------------------------------------------------
# estimation: exactness at fraction=1.0, byte-identity, error-bar kinds
# ---------------------------------------------------------------------------


def test_fraction_one_approx_is_exactly_exact():
    engine = LevelHeadedEngine(make_mini_tpch())
    exact = engine.query(Q1ISH_SQL)
    engine.create_sample("lineitem", 1.0, seed=0)
    approx = engine.query(Q1ISH_SQL, approx=True)
    assert approx.approx is not None and approx.approx["fraction"] == 1.0
    assert approx.names == exact.names
    assert approx.sorted_rows() == exact.sorted_rows()
    for info in approx.approx["columns"].values():
        if info["scalable"]:
            assert info["error"] == 0.0


def test_approx_false_is_byte_identical_to_sample_free_engine():
    baseline = LevelHeadedEngine(make_mini_tpch()).query(Q1ISH_SQL)
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 0.5, seed=1)
    r = engine.query(Q1ISH_SQL, approx=False)
    assert r.approx is None
    assert r.names == baseline.names
    for name in r.names:
        col, want = r.columns[name], baseline.columns[name]
        assert col.dtype == want.dtype and np.array_equal(col, want)


def test_approx_without_usable_sample_runs_exact():
    engine = LevelHeadedEngine(make_mini_tpch())
    r = engine.query(Q1ISH_SQL, approx=True)  # no sample registered
    assert r.approx is None


def test_min_max_pass_through_nonscalable_and_avg_unscaled():
    engine = LevelHeadedEngine(make_mini_tpch())
    exact = engine.query(
        "SELECT AVG(l_quantity) AS aq, MIN(l_quantity) AS lo, "
        "MAX(l_quantity) AS hi FROM lineitem"
    )
    engine.create_sample("lineitem", 1.0, seed=0)
    r = engine.query(
        "SELECT AVG(l_quantity) AS aq, MIN(l_quantity) AS lo, "
        "MAX(l_quantity) AS hi FROM lineitem",
        approx=True,
    )
    cols = r.approx["columns"]
    assert cols["aq"]["scaled"] is False and cols["aq"]["error"] == 0.0
    for name in ("lo", "hi"):
        assert cols[name]["scalable"] is False and cols[name]["error"] is None
        assert r.columns[name][0] == exact.columns[name][0]
    assert r.columns["aq"][0] == pytest.approx(exact.columns["aq"][0])


def test_counts_stay_integers_after_scaling():
    engine = LevelHeadedEngine(generate_events())
    engine.create_sample("events", 0.1, seed=2)
    r = engine.query("SELECT COUNT(*) AS n FROM events", approx=True)
    assert np.issubdtype(r.columns["n"].dtype, np.integer)
    assert r.approx["columns"]["n"]["kind"] == "count"
    assert r.approx["columns"]["n"]["error"] > 0


# ---------------------------------------------------------------------------
# CI coverage over seeded trials
# ---------------------------------------------------------------------------


def test_ci_covers_truth_on_95_percent_of_cells_over_40_seeds():
    engine = LevelHeadedEngine(_measure_catalog())
    sql = "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM t GROUP BY g"
    exact = engine.query(sql)
    truth = {
        int(g): (exact.columns["total"][i], exact.columns["n"][i])
        for i, g in enumerate(exact.columns["g"])
    }
    covered = total = 0
    for seed in range(40):
        engine.create_sample("t", 0.1, seed=seed, name="__trial")
        try:
            r = engine.query(sql, approx=True)
        finally:
            engine.drop_sample("__trial")
        errs = {k: v["error"] for k, v in r.approx["columns"].items()}
        for i, g in enumerate(r.columns["g"]):
            want_total, want_n = truth[int(g)]
            for name, want in (("total", want_total), ("n", want_n)):
                total += 1
                if abs(float(r.columns[name][i]) - float(want)) <= errs[name] + 1e-9:
                    covered += 1
    assert total >= 40 * 4 * 2 * 0.9  # nearly every group present at 10%
    assert covered / total >= 0.95


# ---------------------------------------------------------------------------
# request spellings, policy parsing, explain surfaces
# ---------------------------------------------------------------------------


def test_approximate_sql_prefix_forces_rewrite():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 1.0, seed=0)
    r = engine.query("APPROXIMATE " + Q1ISH_SQL)
    assert r.approx is not None and r.approx["mode"] == "forced"
    assert r.approx["samples"][0]["base"] == "lineitem"


def test_normalize_policy_spellings_and_errors():
    assert APPROX_POLICIES == ("never", "allow", "force")
    assert normalize_policy(True, default="never") == "force"
    assert normalize_policy(False, default="force") == "never"
    assert normalize_policy("on", default="never") == "allow"
    assert normalize_policy("off", default="force") == "never"
    assert normalize_policy(None, default="allow") == "allow"
    with pytest.raises(UnsupportedQueryError):
        normalize_policy("sometimes", default="never")


def test_explain_json_schema_version_and_approx_block():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 0.5, seed=1)
    exact = engine.explain(Q1ISH_SQL, format="json")
    assert exact["schema_version"] == EXPLAIN_SCHEMA_VERSION == 2
    assert exact["approx"] is None
    approx = engine.explain("APPROXIMATE " + Q1ISH_SQL, format="json")
    assert approx["approx"]["fraction"] == 0.5
    assert approx["approx"]["samples"][0]["base"] == "lineitem"


def test_explain_text_carries_approx_line():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 0.5, seed=1)
    text = engine.explain("APPROXIMATE " + Q1ISH_SQL)
    assert "approx:" in text and "fraction=0.5" in text
    assert "approx:" not in engine.explain(Q1ISH_SQL)


def test_connect_dsn_and_kwarg_set_the_policy():
    engine = repro.connect("local://?approx=force", catalog=make_mini_tpch())
    assert engine.config.approx == "force"
    engine = repro.connect(catalog=make_mini_tpch(), approx="on")
    assert engine.config.approx == "allow"
    with pytest.raises(ReproError):
        repro.connect("local://?approx=sometimes", catalog=make_mini_tpch())


def test_engine_config_default_policy_applies_without_kwarg():
    engine = LevelHeadedEngine(
        make_mini_tpch(), config=EngineConfig(approx="force")
    )
    engine.create_sample("lineitem", 1.0, seed=0)
    r = engine.query(Q1ISH_SQL)
    assert r.approx is not None and r.approx["mode"] == "forced"
    assert engine.query(Q1ISH_SQL, approx=False).approx is None  # per-call wins


def test_prepared_statement_executes_approx_variant():
    engine = LevelHeadedEngine(make_mini_tpch())
    engine.create_sample("lineitem", 1.0, seed=0)
    stmt = engine.prepare(Q1ISH_SQL)
    exact = stmt.execute()
    assert exact.approx is None
    approx = stmt.execute(approx=True)
    assert approx.approx is not None
    assert approx.sorted_rows() == exact.sorted_rows()  # fraction=1.0
