"""Tests for the tracing + metrics layer (``repro.obs``)."""

import json

import pytest

from repro import EngineConfig, LevelHeadedEngine, MetricsRegistry, Span, Tracer
from repro.obs import NULL_TRACER, Histogram, phase_times
from tests.conftest import make_mini_tpch
from tests.test_engine import Q5_SQL


# ---------------------------------------------------------------------------
# Span / Tracer units
# ---------------------------------------------------------------------------


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


def test_tracer_builds_nested_spans():
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 3.0, 4.0, 5.0, 10.0]))
    with tracer.span("query"):
        with tracer.span("parse"):
            pass
        with tracer.span("execute", mode="join"):
            pass
    root = tracer.root
    assert root.name == "query"
    assert [c.name for c in root.children] == ["parse", "execute"]
    assert root.duration == pytest.approx(10.0)
    assert root.children[0].duration == pytest.approx(2.0)
    assert root.children[1].payload == {"mode": "join"}


def test_tracer_second_toplevel_span_grafts_under_root():
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 3.0]))
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert tracer.root.name == "first"
    assert [c.name for c in tracer.root.children] == ["second"]


def test_span_find_walk_and_render():
    tracer = Tracer(clock=_fake_clock(list(range(10))))
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c", n=3):
                pass
        with tracer.span("b"):
            pass
    root = tracer.root
    assert root.find("c").payload == {"n": 3}
    assert len(root.find_all("b")) == 2
    assert [s.name for s in root.walk()] == ["a", "b", "c", "b"]
    text = root.render()
    assert "a:" in text and "  b:" in text and "    c:" in text and "n=3" in text


def test_span_as_dict_is_json_ready():
    tracer = Tracer(clock=_fake_clock([0.0, 0.5, 1.0, 2.0]))
    with tracer.span("query", sql_len=12):
        with tracer.span("execute"):
            pass
    d = tracer.root.as_dict()
    json.dumps(d)  # must not raise
    assert d["name"] == "query"
    assert d["children"][0]["name"] == "execute"
    assert d["payload"] == {"sql_len": 12}


def test_phase_times_aggregates_by_name():
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 3.0, 5.0, 6.0]))
    with tracer.span("query"):
        with tracer.span("node.execute"):
            pass
        with tracer.span("node.execute"):
            pass
    times = phase_times(tracer.root)
    assert times["node.execute"] == pytest.approx(3.0)


def test_null_tracer_is_inert():
    assert NULL_TRACER.active is False
    with NULL_TRACER.span("anything", x=1) as span:
        span.set(y=2)
    assert NULL_TRACER.root is None
    NULL_TRACER.annotate(z=3)  # no-op, must not raise


# ---------------------------------------------------------------------------
# Histogram / MetricsRegistry units
# ---------------------------------------------------------------------------


def test_histogram_moments_and_percentiles():
    h = Histogram()
    for v in range(1, 101):
        h.observe(float(v))
    assert h.count == 100
    assert h.min == 1.0 and h.max == 100.0
    assert h.mean == pytest.approx(50.5)
    assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
    assert h.percentile(95) == pytest.approx(95.0, abs=1.0)


def test_histogram_reservoir_stays_bounded():
    h = Histogram()
    for v in range(10_000):
        h.observe(float(v))
    assert h.count == 10_000
    assert len(h._samples) <= 4096
    assert h.max == 9999.0


def test_histogram_as_dict_reports_reservoir_samples():
    h = Histogram()
    for v in range(5000):
        h.observe(float(v))
    d = h.as_dict()
    assert d["count"] == 5000
    assert d["samples"] == 4096  # reservoir size, distinct from count
    assert h.samples == 4096


def test_metrics_as_dict_is_a_consistent_snapshot():
    """cache_hit_rate must be computed from the same counter snapshot
    the dict reports, not re-read after the fact."""
    m = MetricsRegistry()
    m.record_query(0.001, cache_outcome="miss", rows=1)
    m.record_query(0.001, cache_outcome="hit", rows=1)
    snap = m.as_dict()
    hits = snap["counters"]["plan_cache_hit"]
    misses = snap["counters"]["plan_cache_miss"]
    assert snap["cache_hit_rate"] == pytest.approx(hits / (hits + misses))


def test_metrics_registry_record_query():
    m = MetricsRegistry()
    m.record_query(0.010, compile_seconds=0.050, cache_outcome="miss", rows=3,
                   bytes_materialized=96, groups_emitted=3)
    m.record_query(0.008, cache_outcome="hit", rows=3, bytes_materialized=96)
    assert m.counter("queries_served") == 2
    assert m.counter("rows_emitted") == 6
    assert m.counter("plan_cache_hit") == 1
    assert m.counter("plan_cache_miss") == 1
    assert m.cache_hit_rate == pytest.approx(0.5)
    assert m.histogram("execute_seconds").count == 2
    assert m.histogram("compile_seconds").count == 1
    snap = m.as_dict()
    json.dumps(snap)
    assert snap["counters"]["bytes_materialized"] == 192
    assert "execute_seconds" in m.describe()
    m.reset()
    assert m.counter("queries_served") == 0


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine():
    return LevelHeadedEngine(make_mini_tpch())


def test_query_trace_covers_the_lifecycle(engine):
    result = engine.query(Q5_SQL, trace=True)
    root = result.trace
    assert isinstance(root, Span)
    assert root.name == "query"
    names = {s.name for s in root.walk()}
    # compile phases (first compile of this SQL on this engine), the
    # physical plan's sub-phases, and the execution/decode phases
    assert {"plan_cache.lookup", "parse", "bind", "translate",
            "physical_plan", "execute", "decode"} <= names
    assert {"ghd.decompose", "attribute_order", "trie.build",
            "node.execute"} <= names
    # the chosen-order payload carries the icost*weight breakdown
    order_span = root.find("attribute_order")
    assert "order" in order_span.payload and "icost_weight" in order_span.payload
    # span-scoped counters hang off the execution spans
    exec_span = root.find("execute")
    assert exec_span.stats["nodes_executed"] == 2
    node_spans = root.find_all("node.execute")
    assert len(node_spans) == 2
    assert all("layout_mix" in s.payload for s in node_spans)
    assert sum(s.stats["groups_emitted"] for s in node_spans) == \
        exec_span.stats["groups_emitted"]


def test_trace_child_durations_sum_to_root(engine):
    result = engine.query(Q5_SQL, trace=True)
    root = result.trace
    child_sum = sum(c.duration for c in root.children)
    assert child_sum <= root.duration + 1e-9
    # the phases account for the bulk of the query's wall time
    assert child_sum >= 0.5 * root.duration


def test_trace_cache_hit_skips_compile_spans(engine):
    engine.query(Q5_SQL)  # warm the plan cache
    result = engine.query(Q5_SQL, trace=True)
    root = result.trace
    lookup = root.find("plan_cache.lookup")
    assert lookup.payload["outcome"] == "hit"
    assert root.find("parse") is None
    assert root.find("execute") is not None


def test_untraced_query_has_no_trace(engine):
    result = engine.query(Q5_SQL)
    assert result.trace is None


def test_trace_with_params_goes_through_prepared(engine):
    result = engine.query(
        "SELECT sum(o_totalprice) AS t FROM orders WHERE o_totalprice > ?",
        params=[0.0],
        trace=True,
    )
    assert result.trace is not None
    assert result.trace.name == "query"
    assert result.trace.find("execute") is not None


def test_explain_analyze_includes_trace(engine):
    text = engine.explain(Q5_SQL, analyze=True)
    assert "trace:" in text
    assert "node.execute" in text
    payload = engine.explain(Q5_SQL, analyze=True, format="json")
    json.dumps(payload)
    assert payload["trace"]["name"] == "query"
    child_names = [c["name"] for c in payload["trace"]["children"]]
    assert "execute" in child_names and "decode" in child_names


def test_engine_metrics_accumulate():
    engine = LevelHeadedEngine(make_mini_tpch())
    for _ in range(3):
        engine.query(Q5_SQL)
    m = engine.metrics
    assert m.counter("queries_served") == 3
    assert m.counter("plan_cache_miss") == 1
    assert m.counter("plan_cache_hit") == 2
    assert m.cache_hit_rate == pytest.approx(2 / 3)
    assert m.histogram("execute_seconds").count == 3
    assert m.histogram("compile_seconds").count == 1  # only the miss compiles
    assert m.counter("rows_emitted") == 3
    assert m.counter("bytes_materialized") > 0


def test_traced_parallel_run_matches_serial_counters():
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog, config=EngineConfig(parallel=False))
    parallel = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=True, num_threads=4)
    )
    s = serial.query(Q5_SQL, trace=True)
    p = parallel.query(Q5_SQL, trace=True)
    s_exec = s.trace.find("execute").stats
    p_exec = p.trace.find("execute").stats
    drop_cache = lambda d: {k: v for k, v in d.items() if not k.startswith("plan_cache")}
    assert drop_cache(p_exec) == drop_cache(s_exec)


def test_bench_harness_traced_measurement():
    from repro.bench.harness import run_traced

    engine = LevelHeadedEngine(make_mini_tpch())
    traced = run_traced(engine, Q5_SQL, repeats=3)
    assert traced.measurement.ok
    assert traced.measurement.seconds > 0
    assert "execute" in traced.phase_seconds
    assert "decode" in traced.phase_seconds
    assert all(v >= 0 for v in traced.phase_seconds.values())
    assert traced.trace is not None and traced.trace.name == "query"


def test_traced_measurement_trace_is_a_real_dataclass_field():
    """``trace`` must be an annotated dataclass field -- a bare class
    attribute would make constructor assignment silently impossible."""
    import dataclasses

    from repro.bench.harness import TracedMeasurement

    names = {f.name for f in dataclasses.fields(TracedMeasurement)}
    assert "trace" in names
    traced = TracedMeasurement(measurement=None, trace="sentinel")
    assert traced.trace == "sentinel"
    assert TracedMeasurement(measurement=None).trace is None
