"""Tests for execution statistics and the structural optimizer claims.

These tests assert the paper's optimizer effects in terms of *work
counters* rather than wall-clock time, so they are deterministic.
"""

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.la import matmul_sql, matvec_sql
from repro.xcution import ExecutionStats
from tests.conftest import make_matrix_catalog, make_mini_tpch
from tests.test_engine import Q5_SQL


def _stats_for(engine, sql):
    plan = engine.compile(sql)
    result = engine.execute(plan, collect_stats=True)
    return plan, result, result.stats


def _sparse_setup(n=80, nnz=600, seed=5):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    flat = np.unique(rows * n + cols)
    rows, cols = flat // n, flat % n
    vals = rng.normal(size=rows.size)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    engine.register_vector("x", rng.normal(size=n), domain="dim")
    return engine


def test_stats_merge_and_describe():
    a, b = ExecutionStats(intersections=2), ExecutionStats(intersections=3, fetches=1)
    a.merge(b)
    assert a.intersections == 5 and a.fetches == 1
    assert "intersections=5" in a.describe()
    assert a.as_dict()["fetches"] == 1


def test_smv_runs_through_flat_kernel():
    engine = _sparse_setup()
    _plan, result, stats = _stats_for(engine, matvec_sql("m", "x"))
    assert result.num_rows > 0
    assert stats.flat_kernels == 1
    assert stats.loop_values == 0  # zero per-tuple Python work


def test_smm_relaxed_order_uses_union_kernel():
    engine = _sparse_setup()
    _plan, result, stats = _stats_for(engine, matmul_sql("m"))
    assert result.num_rows > 0
    assert stats.relaxed_unions > 0


def test_smm_worst_order_does_far_more_loop_work():
    engine = _sparse_setup(n=300, nnz=4000, seed=6)
    sql = matmul_sql("m")
    _p1, _r1, good = _stats_for(engine, sql)
    bad_engine = LevelHeadedEngine(
        engine.catalog,
        config=EngineConfig(enable_attribute_ordering=False, enable_relaxation=False),
    )
    _p2, _r2, bad = _stats_for(bad_engine, sql)
    # the cost-based order turns per-tuple loops into vectorized unions
    assert good.relaxed_unions > 0 and bad.relaxed_unions == 0
    assert bad.loop_values > 10 * max(1, good.loop_values)


def test_q5_stats_counts_nodes_and_fetches(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    _plan, result, stats = _stats_for(engine, Q5_SQL)
    assert result.num_rows > 0
    assert stats.nodes_executed == 2  # root + the region/nation child
    assert stats.fetches > 0  # n_name fetched during the walk
    assert stats.groups_emitted >= result.num_rows


def test_explain_analyze_text(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    text = engine.explain(Q5_SQL, analyze=True)
    assert "stats:" in text
    assert "result rows: 1" in text
    assert "mode: join" in text


def test_deferred_annotations_do_no_fetches(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = (
        "SELECT c_custkey, c_name, sum(o_totalprice) AS t "
        "FROM customer, orders WHERE c_custkey = o_custkey "
        "GROUP BY c_custkey, c_name"
    )
    _plan, result, stats = _stats_for(engine, sql)
    assert result.num_rows > 0
    assert stats.fetches == 0  # c_name decoded columnarly afterwards


def test_matmul_stats(matrix_catalog):
    engine = LevelHeadedEngine(matrix_catalog)
    sql = (
        "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v FROM matrix m1, matrix m2 "
        "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
    )
    _plan, result, stats = _stats_for(engine, sql)
    assert stats.groups_emitted == result.num_rows
