"""Shared fixtures: a miniature TPC-H-shaped catalog and matrices."""

import numpy as np
import pytest

from repro.storage import AttrType, Catalog, Schema, Table, annotation, key


def make_mini_tpch() -> Catalog:
    """A tiny, hand-checkable TPC-H-shaped database.

    2 regions, 4 nations, 4 suppliers, 6 customers, 8 orders, 14
    lineitems -- small enough that every query result can be verified
    by hand or by a brute-force reference join.
    """
    cat = Catalog()
    cat.register(
        Table.from_columns(
            Schema(
                "region",
                [key("r_regionkey", domain="regionkey"), annotation("r_name", AttrType.STRING)],
            ),
            r_regionkey=[0, 1],
            r_name=["ASIA", "EUROPE"],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "nation",
                [
                    key("n_nationkey", domain="nationkey"),
                    key("n_regionkey", domain="regionkey"),
                    annotation("n_name", AttrType.STRING),
                ],
            ),
            n_nationkey=[0, 1, 2, 3],
            n_regionkey=[0, 0, 1, 1],
            n_name=["CHINA", "JAPAN", "FRANCE", "GERMANY"],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "supplier",
                [
                    key("s_suppkey", domain="suppkey"),
                    key("s_nationkey", domain="nationkey"),
                    annotation("s_acctbal"),
                ],
            ),
            s_suppkey=[0, 1, 2, 3],
            s_nationkey=[0, 1, 2, 3],
            s_acctbal=[100.0, 200.0, 300.0, 400.0],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "customer",
                [
                    key("c_custkey", domain="custkey"),
                    key("c_nationkey", domain="nationkey"),
                    annotation("c_acctbal"),
                    annotation("c_name", AttrType.STRING),
                ],
            ),
            c_custkey=[0, 1, 2, 3, 4, 5],
            c_nationkey=[0, 0, 1, 2, 3, 1],
            c_acctbal=[10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
            c_name=["c0", "c1", "c2", "c3", "c4", "c5"],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "orders",
                [
                    key("o_orderkey", domain="orderkey"),
                    key("o_custkey", domain="custkey"),
                    annotation("o_orderdate", AttrType.DATE),
                    annotation("o_totalprice"),
                ],
            ),
            o_orderkey=[0, 1, 2, 3, 4, 5, 6, 7],
            o_custkey=[0, 1, 2, 3, 4, 5, 0, 2],
            # dates: orders 0,1,2,3,6 in 1994 (1994-01-01 is ordinal
            # 727929), orders 4,5,7 in 1995
            o_orderdate=[727929, 727959, 727989, 728019, 728325, 728355, 727930, 728385],
            o_totalprice=[100.0, 110.0, 120.0, 130.0, 140.0, 150.0, 160.0, 170.0],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "lineitem",
                [
                    key("l_orderkey", domain="orderkey"),
                    key("l_suppkey", domain="suppkey"),
                    annotation("l_extendedprice"),
                    annotation("l_discount"),
                    annotation("l_quantity"),
                    annotation("l_shipdate", AttrType.DATE),
                ],
            ),
            # order 0 has two lines with the same supplier (dup key tuple)
            l_orderkey=[0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 7, 2, 3],
            l_suppkey=[0, 0, 1, 1, 2, 2, 3, 0, 1, 2, 3, 0, 0, 1],
            l_extendedprice=[10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140.0],
            l_discount=[0.1, 0.0, 0.2, 0.1, 0.0, 0.3, 0.1, 0.0, 0.2, 0.1, 0.0, 0.1, 0.2, 0.0],
            l_quantity=[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14.0],
            l_shipdate=[727930, 727960, 727990, 728020, 728326, 728356, 727932, 728390,
                        728420, 727935, 728450, 728460, 727995, 728025],
        )
    )
    return cat


def make_matrix_catalog(entries=None, n=4) -> Catalog:
    """A catalog with one sparse 'matrix' table over a shared dim domain."""
    cat = Catalog()
    if entries is None:
        entries = [(0, 0, 2.0), (0, 2, 4.0), (1, 0, 1.0), (3, 1, 3.0), (2, 3, 5.0)]
    i = [e[0] for e in entries]
    j = [e[1] for e in entries]
    v = [e[2] for e in entries]
    # Anchor the shared dim domain with every index 0..n-1.
    anchor = Table.from_columns(
        Schema("dimension", [key("d", domain="dim")]), d=list(range(n))
    )
    cat.register(anchor)
    cat.register(
        Table.from_columns(
            Schema(
                "matrix",
                [key("i", domain="dim"), key("j", domain="dim"), annotation("v")],
            ),
            i=i,
            j=j,
            v=v,
        )
    )
    return cat


@pytest.fixture()
def mini_tpch():
    return make_mini_tpch()


@pytest.fixture()
def matrix_catalog():
    return make_matrix_catalog()
