"""Tests for the bench harness, reporting, and the result table."""

import time

import numpy as np
import pytest

from repro import ResultTable
from repro.bench import (
    Measurement,
    ReportLog,
    best_of,
    comparison_row,
    format_seconds,
    measure,
    render_table,
    run_guarded,
)
from repro.errors import OutOfMemoryBudgetError

# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def test_measure_protocol_drops_extremes():
    calls = []

    def fn():
        calls.append(1)

    seconds = measure(fn, repeats=7, warmup=1)
    assert seconds >= 0
    assert len(calls) == 8  # 1 warmup + 7 timed


def test_run_guarded_ok():
    m = run_guarded(lambda: None, repeats=2)
    assert m.ok and m.seconds is not None


def test_run_guarded_oom():
    def boom():
        raise OutOfMemoryBudgetError("too big")

    m = run_guarded(boom)
    assert m.label == "oom" and not m.ok


def test_run_guarded_timeout():
    def slow():
        time.sleep(0.05)

    m = run_guarded(slow, timeout_seconds=0.01)
    assert m.label == "t/o"
    assert m.seconds >= 0.05


def test_measurement_render_relative():
    assert Measurement("ok", 0.2).render_relative(0.1) == "2.00x"
    assert Measurement("oom").render_relative(0.1) == "oom"
    assert Measurement("ok", 0.25).render_relative(None) == "250.00ms"


def test_best_of():
    measurements = {
        "a": Measurement("ok", 0.5),
        "b": Measurement("oom"),
        "c": Measurement("ok", 0.2),
    }
    assert best_of(measurements) == 0.2
    assert best_of({"x": Measurement("oom")}) is None


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def test_format_seconds():
    assert format_seconds(None) == "-"
    assert format_seconds(2.5) == "2.50s"
    assert format_seconds(0.0123) == "12.30ms"


def test_render_table_alignment():
    text = render_table("title", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_comparison_row():
    measurements = {
        "fast": Measurement("ok", 0.1),
        "slow": Measurement("ok", 1.0),
        "dead": Measurement("oom"),
    }
    row = comparison_row("Q1", measurements, ["fast", "slow", "dead", "absent"])
    assert row[0] == "Q1"
    assert row[1] == "100.00ms"
    assert row[2] == "1.00x"
    assert row[3] == "10.00x"
    assert row[4] == "oom"
    assert row[5] == "-"


def test_report_log_writes_files(tmp_path):
    log = ReportLog(str(tmp_path / "results"))
    log.add_table("exp1", "hello")
    log.flush()
    assert (tmp_path / "results" / "exp1.txt").read_text() == "hello\n"


# ---------------------------------------------------------------------------
# ResultTable
# ---------------------------------------------------------------------------


def _table():
    return ResultTable(
        ["name", "value"],
        [np.array(["b", "a"]), np.array([2.0, 1.0])],
    )


def test_result_table_basics():
    t = _table()
    assert len(t) == 2
    assert t.names == ["name", "value"]
    assert list(t.column("value")) == [2.0, 1.0]
    assert t.to_rows() == [("b", 2.0), ("a", 1.0)]
    assert t.sorted_rows() == [("a", 1.0), ("b", 2.0)]
    assert t.to_dict() == {"name": ["b", "a"], "value": [2.0, 1.0]}


def test_result_table_single_value():
    t = ResultTable(["s"], [np.array([42.0])])
    assert t.single_value() == 42.0
    with pytest.raises(ValueError):
        _table().single_value()


def test_result_table_to_text_truncates():
    t = ResultTable(["x"], [np.arange(30)])
    text = t.to_text(limit=5)
    assert "30 rows total" in text


def test_result_table_validation():
    with pytest.raises(ValueError):
        ResultTable(["a"], [np.array([1]), np.array([2])])
    with pytest.raises(ValueError):
        ResultTable(["a", "b"], [np.array([1]), np.array([1, 2])])


def test_result_table_mixed_sort_keys():
    t = ResultTable(["k"], [np.array([3, 1, 2])])
    assert t.sorted_rows() == [(1,), (2,), (3,)]
