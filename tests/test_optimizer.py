"""Tests for the cost-based attribute-ordering optimizer (Section V)."""

import pytest

from repro.optimizer import (
    ICOST,
    OrderDecision,
    candidate_orders,
    choose_order,
    guess_layouts,
    multiway_icost,
    order_cost,
    pairwise_icost,
    relation_scores,
    vertex_icost,
    vertex_weight,
    vertex_weights,
)
from repro.query import Hyperedge
from repro.sets import Layout

BS, UINT = Layout.BITSET, Layout.UINT

# ---------------------------------------------------------------------------
# icost model (Section V-A1)
# ---------------------------------------------------------------------------


def test_paper_icost_constants():
    assert pairwise_icost(BS, BS) == 1
    assert pairwise_icost(BS, UINT) == 10
    assert pairwise_icost(UINT, BS) == 10
    assert pairwise_icost(UINT, UINT) == 50


def test_multiway_icost_bs_first_rule():
    # paper example: l(e0) <= l(e1) <= l(e2) with bs < uint:
    # icost = icost(bs ∩ bs) + icost(bs ∩ uint) = 1 + 10 = 11
    assert multiway_icost([BS, UINT, BS]) == 11
    assert multiway_icost([UINT, UINT, UINT]) == 100  # 50 + 50
    assert multiway_icost([BS, BS]) == 1
    assert multiway_icost([UINT]) == 0  # no intersection needed
    assert multiway_icost([]) == 0


def _q5_node_edges():
    """The expensive GHD node of TPC-H Q5 plus the child-result edge."""
    return [
        Hyperedge("orders", "orders", ("orderkey", "custkey"), 15_000_000),
        Hyperedge("lineitem", "lineitem", ("orderkey", "suppkey"), 60_000_000),
        Hyperedge("customer", "customer", ("custkey", "nationkey"), 1_500_000),
        Hyperedge("supplier", "supplier", ("suppkey", "nationkey"), 100_000),
        Hyperedge("node1", "node1", ("nationkey",), 25),
    ]


def test_example_5_1_icosts():
    """Reproduce Example 5.1's per-vertex icosts exactly."""
    edges = _q5_node_edges()
    order = ["orderkey", "custkey", "nationkey", "suppkey"]
    assert vertex_icost("orderkey", [], edges) == 1  # bs ∩ bs
    assert vertex_icost("custkey", order[:1], edges) == 10  # uint ∩ bs
    assert vertex_icost("nationkey", order[:2], edges) == 11  # bs ∩ bs ∩ uint
    assert vertex_icost("suppkey", order[:3], edges) == 50  # uint ∩ uint


def test_guess_layouts_observation_5_1():
    edges = _q5_node_edges()
    layouts = guess_layouts("custkey", ["orderkey"], edges)
    # orders was opened at orderkey -> uint; customer unopened -> bs
    assert sorted(l.value for l in layouts) == ["bs", "uint"]


def test_dense_relation_icost_zero():
    dense = [
        Hyperedge("m1", "matrix", ("i", "k"), 100, fully_dense=True),
        Hyperedge("m2", "matrix", ("k", "j"), 100, fully_dense=True),
    ]
    assert vertex_icost("k", ["i"], dense) == 0
    assert vertex_icost("i", [], dense) == 0


def test_single_edge_vertex_icost_zero():
    edges = [Hyperedge("m2", "matrix", ("k", "j"), 100)]
    assert vertex_icost("j", ["k"], edges) == 0


# ---------------------------------------------------------------------------
# weights (Section V-B)
# ---------------------------------------------------------------------------


def _q5_full_edges():
    return [
        Hyperedge("lineitem", "lineitem", ("orderkey", "suppkey"), 59_986_052),
        Hyperedge("orders", "orders", ("orderkey", "custkey"), 15_000_000),
        Hyperedge("customer", "customer", ("custkey", "nationkey"), 1_500_000),
        Hyperedge("supplier", "supplier", ("suppkey", "nationkey"), 100_000),
        Hyperedge("nation", "nation", ("nationkey", "regionkey"), 25),
        Hyperedge("region", "region", ("regionkey",), 5, has_equality_selection=True),
    ]


def test_example_5_3_scores():
    scores = relation_scores(_q5_full_edges())
    assert scores["lineitem"] == 100
    assert scores["orders"] == 26
    assert scores["customer"] == 3
    assert scores["region"] == 1
    assert scores["supplier"] == 1
    assert scores["nation"] == 1


def test_example_5_3_weights():
    edges = _q5_full_edges()
    scores = relation_scores(edges)
    assert vertex_weight("orderkey", edges, scores) == 26   # min(26, 100)
    assert vertex_weight("custkey", edges, scores) == 3     # min(3, 26)
    assert vertex_weight("suppkey", edges, scores) == 1     # min(1, 100)
    assert vertex_weight("nationkey", edges, scores) == 1   # min(1, 1, 3)
    assert vertex_weight("regionkey", edges, scores) == 1   # max(1, 1): equality sel


def test_vertex_weights_bulk():
    weights = vertex_weights(_q5_full_edges())
    assert weights["orderkey"] == 26
    assert set(weights) == {"orderkey", "custkey", "suppkey", "nationkey", "regionkey"}


# ---------------------------------------------------------------------------
# order enumeration and choice
# ---------------------------------------------------------------------------


def test_candidate_orders_materialized_first():
    orders = candidate_orders(["a", "b"], ["x", "y"], allow_relaxation=False)
    assert all(not relaxed for _, relaxed in orders)
    for order, _ in orders:
        assert set(order[:2]) == {"a", "b"}
        assert set(order[2:]) == {"x", "y"}
    assert len(orders) == 4  # 2! * 2!


def test_candidate_orders_relaxation_swaps_tail():
    orders = candidate_orders(["i", "j"], ["k"])
    plain = [o for o, r in orders if not r]
    relaxed = [o for o, r in orders if r]
    assert ("i", "j", "k") in plain
    assert ("i", "k", "j") in relaxed
    assert ("j", "k", "i") in relaxed


def test_candidate_orders_no_relaxation_with_two_aggregated():
    orders = candidate_orders(["m"], ["a", "b"])
    assert all(not relaxed for _, relaxed in orders)


def test_candidate_orders_fixed_materialized_order():
    orders = candidate_orders(
        ["b", "a"], ["x"], fixed_materialized_order=["a", "b"], allow_relaxation=False
    )
    assert [o for o, _ in orders] == [("a", "b", "x")]


def test_choose_order_q5_puts_high_cardinality_first():
    """Observation 5.2: orderkey (heaviest) must come first on Q5's node."""
    edges = _q5_node_edges()
    decision = choose_order(
        ["orderkey", "custkey", "suppkey", "nationkey"],
        materialized=[],
        edges=edges,
    )
    assert decision.order[0] == "orderkey"
    # paper Figure 5c: [orderkey, custkey, nationkey, suppkey]-class
    # orders cost far less than suppkey-first orders
    bad_cost, _ = order_cost(
        ("suppkey", "nationkey", "custkey", "orderkey"), edges
    )
    assert decision.cost < bad_cost


def test_choose_order_matmul_relaxation_matches_mkl():
    """Figure 5b: sparse matmul picks [i,k,j], MKL's loop order."""
    edges = [
        Hyperedge("m1", "matrix", ("i", "k"), 1000),
        Hyperedge("m2", "matrix", ("k", "j"), 1000),
    ]
    decision = choose_order(["i", "j", "k"], materialized=["i", "j"], edges=edges)
    assert decision.relaxed
    assert decision.order in (("i", "k", "j"), ("j", "k", "i"))
    # the unrelaxed [i,j,k] order costs 50 on k; the relaxed one costs 10
    cost_ijk, _ = order_cost(("i", "j", "k"), edges)
    assert decision.cost < cost_ijk


def test_choose_order_without_relaxation():
    edges = [
        Hyperedge("m1", "matrix", ("i", "k"), 1000),
        Hyperedge("m2", "matrix", ("k", "j"), 1000),
    ]
    decision = choose_order(
        ["i", "j", "k"], materialized=["i", "j"], edges=edges, allow_relaxation=False
    )
    assert not decision.relaxed
    assert set(decision.order[:2]) == {"i", "j"}


def test_choose_order_pick_worst_for_ablation():
    edges = _q5_node_edges()
    best = choose_order(
        ["orderkey", "custkey", "suppkey", "nationkey"], [], edges
    )
    worst = choose_order(
        ["orderkey", "custkey", "suppkey", "nationkey"], [], edges, pick_worst=True
    )
    assert worst.cost > best.cost
    assert not worst.relaxed


def test_choose_order_dense_matmul_all_zero_cost():
    edges = [
        Hyperedge("m1", "matrix", ("i", "k"), 10_000, fully_dense=True),
        Hyperedge("m2", "matrix", ("k", "j"), 10_000, fully_dense=True),
    ]
    decision = choose_order(["i", "j", "k"], materialized=["i", "j"], edges=edges)
    assert decision.cost == 0


def test_order_decision_describe_smoke():
    edges = _q5_node_edges()
    decision = choose_order(["orderkey", "custkey"], [], edges)
    text = decision.describe()
    assert "cost=" in text and "orderkey" in text
