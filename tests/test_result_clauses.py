"""Tests for HAVING / ORDER BY / LIMIT on both engines."""

import numpy as np
import pytest

from repro import LevelHeadedEngine
from repro.baselines import PairwiseEngine
from repro.errors import BindError, ExecutionError, UnsupportedQueryError
from tests.conftest import make_mini_tpch


@pytest.fixture(scope="module")
def tpch():
    return make_mini_tpch()


def _both(tpch, sql):
    lh = LevelHeadedEngine(tpch).query(sql)
    pw = PairwiseEngine(tpch).query(sql)
    return lh, pw


# ---------------------------------------------------------------------------
# ORDER BY
# ---------------------------------------------------------------------------


def test_order_by_aggregate_desc(tpch):
    sql = (
        "SELECT c_name, sum(o_totalprice) AS total FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY total DESC"
    )
    lh, pw = _both(tpch, sql)
    totals = [row[1] for row in lh.to_rows()]
    assert totals == sorted(totals, reverse=True)
    assert lh.to_rows() == pytest.approx(pw.to_rows())


def test_order_by_group_column_asc(tpch):
    sql = (
        "SELECT c_name, sum(o_totalprice) AS total FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name"
    )
    lh, pw = _both(tpch, sql)
    names = [row[0] for row in lh.to_rows()]
    assert names == sorted(names)
    assert [r[0] for r in pw.to_rows()] == names


def test_order_by_two_keys(tpch):
    sql = (
        "SELECT l_suppkey, l_orderkey, sum(l_quantity) AS q FROM lineitem "
        "GROUP BY l_suppkey, l_orderkey ORDER BY l_suppkey, q DESC"
    )
    lh, pw = _both(tpch, sql)
    rows = lh.to_rows()
    assert rows == [tuple(pytest.approx(x) for x in r) for r in pw.to_rows()]
    for i in range(1, len(rows)):
        assert rows[i][0] >= rows[i - 1][0]
        if rows[i][0] == rows[i - 1][0]:
            assert rows[i][2] <= rows[i - 1][2]


def test_order_by_on_scan_path(tpch):
    sql = "SELECT l_suppkey, sum(l_quantity) AS q FROM lineitem GROUP BY l_suppkey ORDER BY q"
    lh, pw = _both(tpch, sql)
    values = [row[1] for row in lh.to_rows()]
    assert values == sorted(values)
    assert lh.to_rows() == pytest.approx(pw.to_rows())


def test_order_by_on_plain_select(tpch):
    sql = (
        "SELECT c_custkey, c_name FROM customer, orders "
        "WHERE c_custkey = o_custkey ORDER BY c_custkey DESC"
    )
    lh, pw = _both(tpch, sql)
    keys = [row[0] for row in lh.to_rows()]
    assert keys == sorted(keys, reverse=True)
    assert len(lh) == len(pw)


# ---------------------------------------------------------------------------
# LIMIT
# ---------------------------------------------------------------------------


def test_limit_truncates(tpch):
    sql = (
        "SELECT c_name, sum(o_totalprice) AS total FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY total DESC LIMIT 2"
    )
    lh, pw = _both(tpch, sql)
    assert lh.num_rows == 2
    assert lh.to_rows() == pytest.approx(pw.to_rows())


def test_limit_larger_than_result(tpch):
    sql = "SELECT count(*) AS n FROM orders LIMIT 10"
    lh, _pw = _both(tpch, sql)
    assert lh.num_rows == 1


# ---------------------------------------------------------------------------
# HAVING
# ---------------------------------------------------------------------------


def test_having_filters_groups(tpch):
    base_sql = (
        "SELECT c_name, sum(o_totalprice) AS total FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name"
    )
    unfiltered = LevelHeadedEngine(tpch).query(base_sql)
    sql = base_sql + " HAVING sum(o_totalprice) > 200"
    lh, pw = _both(tpch, sql)
    expected = {r[0] for r in unfiltered.to_rows() if r[1] > 200}
    assert {r[0] for r in lh.to_rows()} == expected
    assert lh.sorted_rows() == pytest.approx(pw.sorted_rows())
    assert 0 < lh.num_rows < unfiltered.num_rows


def test_having_with_unselected_aggregate(tpch):
    sql = (
        "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey "
        "GROUP BY c_name HAVING count(*) > 1"
    )
    lh, pw = _both(tpch, sql)
    assert lh.sorted_rows() == pw.sorted_rows()
    # customers 0 and 2 have two orders each in the fixture
    assert lh.num_rows == 2


def test_having_requires_group_context(tpch):
    with pytest.raises(BindError):
        LevelHeadedEngine(tpch).query("SELECT c_name FROM customer HAVING c_name = 'x'")


def test_order_by_unknown_reference_rejected(tpch):
    with pytest.raises(UnsupportedQueryError):
        LevelHeadedEngine(tpch).query(
            "SELECT c_name, sum(o_totalprice) AS t FROM customer, orders "
            "WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY o_totalprice"
        )


def test_combined_having_order_limit(tpch):
    sql = (
        "SELECT l_suppkey, sum(l_quantity) AS q FROM lineitem "
        "GROUP BY l_suppkey HAVING sum(l_quantity) > 10 ORDER BY q DESC LIMIT 2"
    )
    lh, pw = _both(tpch, sql)
    assert lh.num_rows <= 2
    assert lh.to_rows() == pytest.approx(pw.to_rows())
    values = [r[1] for r in lh.to_rows()]
    assert values == sorted(values, reverse=True)
    assert all(v > 10 for v in values)
