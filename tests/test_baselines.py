"""Tests for the baseline engines, including cross-engine agreement."""

import numpy as np
import pytest

from repro import LevelHeadedEngine
from repro.baselines import LAPackage, NaiveWCOJEngine, PairwiseEngine
from repro.baselines.pairwise import ColumnRelation, hash_join
from repro.errors import OutOfMemoryBudgetError, UnsupportedQueryError
from repro.la import matmul_sql, matvec_sql, random_sparse_coo
from tests.conftest import make_matrix_catalog, make_mini_tpch
from tests.test_engine import Q5_SQL

# ---------------------------------------------------------------------------
# relational operators
# ---------------------------------------------------------------------------


def _relation(**cols):
    arrays = {k: np.asarray(v) for k, v in cols.items()}
    n = len(next(iter(arrays.values())))
    return ColumnRelation(columns=arrays, num_rows=n)


def test_hash_join_basic():
    left = _relation(**{"a.k": [1, 2, 2, 3], "a.v": [10, 20, 21, 30]})
    right = _relation(**{"b.k": [2, 3, 4], "b.w": [200, 300, 400]})
    out = hash_join(left, right, ["a.k"], ["b.k"])
    assert out.num_rows == 3
    rows = sorted(zip(out.columns["a.k"], out.columns["a.v"], out.columns["b.w"]))
    assert rows == [(2, 20, 200), (2, 21, 200), (3, 30, 300)]


def test_hash_join_composite_keys():
    left = _relation(**{"a.x": [1, 1, 2], "a.y": [5, 6, 5], "a.v": [1, 2, 3]})
    right = _relation(**{"b.x": [1, 2], "b.y": [6, 5], "b.w": [10, 20]})
    out = hash_join(left, right, ["a.x", "a.y"], ["b.x", "b.y"])
    rows = sorted(zip(out.columns["a.v"], out.columns["b.w"]))
    assert rows == [(2, 10), (3, 20)]


def test_hash_join_empty_side():
    left = _relation(**{"a.k": np.array([], dtype=np.int64)})
    right = _relation(**{"b.k": [1, 2]})
    assert hash_join(left, right, ["a.k"], ["b.k"]).num_rows == 0


def test_hash_join_memory_budget_oom():
    n = 200
    left = _relation(**{"a.k": np.zeros(n, dtype=np.int64)})
    right = _relation(**{"b.k": np.zeros(n, dtype=np.int64)})
    with pytest.raises(OutOfMemoryBudgetError):
        hash_join(left, right, ["a.k"], ["b.k"], memory_budget_bytes=1000)


# ---------------------------------------------------------------------------
# pairwise engine correctness (vs brute force through LevelHeaded tests)
# ---------------------------------------------------------------------------


@pytest.fixture()
def tpch_catalog():
    return make_mini_tpch()


CROSS_CHECK_QUERIES = [
    "SELECT c_name, sum(o_totalprice) AS t FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_name",
    Q5_SQL,
    "SELECT count(*) AS n FROM orders, lineitem WHERE o_orderkey = l_orderkey",
    "SELECT l_suppkey, sum(l_quantity) AS q FROM lineitem GROUP BY l_suppkey",
    "SELECT sum(l_extendedprice * l_discount) AS rev FROM lineitem "
    "WHERE l_quantity < 8",
    "SELECT extract(year from o_orderdate) AS y, avg(o_totalprice) AS t "
    "FROM orders GROUP BY extract(year from o_orderdate)",
    "SELECT c_custkey, c_name FROM customer, orders WHERE c_custkey = o_custkey",
]


@pytest.mark.parametrize("planner", ["selinger", "fifo"])
@pytest.mark.parametrize("sql", CROSS_CHECK_QUERIES, ids=range(len(CROSS_CHECK_QUERIES)))
def test_pairwise_agrees_with_levelheaded(tpch_catalog, planner, sql):
    lh = LevelHeadedEngine(tpch_catalog)
    pw = PairwiseEngine(tpch_catalog, planner=planner)
    lh_rows = lh.query(sql).sorted_rows()
    pw_rows = pw.query(sql).sorted_rows()
    assert len(lh_rows) == len(pw_rows)
    for a, b in zip(lh_rows, pw_rows):
        assert a == pytest.approx(b)


def test_pairwise_matmul_agrees(tpch_catalog):
    catalog = make_matrix_catalog()
    lh = LevelHeadedEngine(catalog)
    pw = PairwiseEngine(catalog)
    sql = matmul_sql("matrix")
    assert lh.query(sql).sorted_rows() == pytest.approx(pw.query(sql).sorted_rows())


def test_pairwise_planner_orders_small_first(tpch_catalog):
    pw = PairwiseEngine(tpch_catalog, planner="selinger")
    order = pw.join_order(Q5_SQL)
    # region (after its equality filter: 1 row) should come before lineitem
    assert order.index("region") < order.index("lineitem")


def test_pairwise_fifo_order_is_from_order(tpch_catalog):
    pw = PairwiseEngine(tpch_catalog, planner="fifo")
    order = pw.join_order(
        "SELECT count(*) AS n FROM orders, lineitem WHERE o_orderkey = l_orderkey"
    )
    assert order == ["orders", "lineitem"]


def test_pairwise_rejects_cross_product(tpch_catalog):
    pw = PairwiseEngine(tpch_catalog)
    with pytest.raises(UnsupportedQueryError):
        pw.query("SELECT count(*) AS n FROM customer, region")


def test_pairwise_unknown_planner(tpch_catalog):
    with pytest.raises(ValueError):
        PairwiseEngine(tpch_catalog, planner="quantum")


def test_pairwise_oom_on_smm_with_budget():
    """The Table II shape: pairwise SMM blows the memory budget."""
    rng = np.random.default_rng(0)
    n, nnz = 300, 9000
    rows, cols, vals = random_sparse_coo(n, nnz, rng)
    lh = LevelHeadedEngine()
    lh.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    pw = PairwiseEngine(lh.catalog, memory_budget_bytes=1_000_000)
    with pytest.raises(OutOfMemoryBudgetError):
        pw.query(matmul_sql("m"))
    # LevelHeaded handles the same query within the same budget
    from repro import EngineConfig

    lh_budgeted = LevelHeadedEngine(
        lh.catalog, config=EngineConfig(memory_budget_bytes=50_000_000)
    )
    assert lh_budgeted.query(matmul_sql("m")).num_rows > 0


# ---------------------------------------------------------------------------
# naive WCOJ baseline
# ---------------------------------------------------------------------------


def test_naive_wcoj_correct_but_costlier(tpch_catalog):
    naive = NaiveWCOJEngine(tpch_catalog)
    tuned = LevelHeadedEngine(tpch_catalog)
    assert naive.query(Q5_SQL).sorted_rows() == pytest.approx(
        tuned.query(Q5_SQL).sorted_rows()
    )
    naive_cost = naive.compile(Q5_SQL).root.decision.cost
    tuned_cost = tuned.compile(Q5_SQL).root.decision.cost
    assert naive_cost >= tuned_cost


def test_naive_wcoj_no_blas():
    import numpy as np

    naive = NaiveWCOJEngine()
    LevelHeadedEngine(naive.catalog).register_matrix("m", np.eye(4), domain="dim")
    assert naive.compile(matmul_sql("m")).mode == "join"


# ---------------------------------------------------------------------------
# LA package baseline
# ---------------------------------------------------------------------------


def test_la_package_kernels_match_engine():
    rng = np.random.default_rng(12)
    n, nnz = 25, 120
    rows, cols, vals = random_sparse_coo(n, nnz, rng)
    x = rng.normal(size=n)
    dense = rng.normal(size=(n, n))

    pkg = LAPackage()
    pkg.load_sparse("m", rows, cols, vals, n)
    pkg.load_vector("x", x)
    pkg.load_dense("d", dense)

    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    engine.register_vector("x", x, domain="dim")

    assert np.allclose(
        engine.query(matvec_sql("m", "x")).to_vector(n), pkg.smv("m", "x")
    )
    assert np.allclose(
        engine.query(matmul_sql("m")).to_dense(n), pkg.smm("m").toarray()
    )
    assert np.allclose(pkg.dmm("d"), dense @ dense)
    assert np.allclose(pkg.dmv("d", "x"), dense @ x)
