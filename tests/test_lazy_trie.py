"""Lazy build-on-probe tries: correctness of pruned builds, parity with
eager builds end to end, cancellation and budget behavior inside lazy
materialization, and the parallel-invariant profiler counters."""

import numpy as np
import pytest

from repro import (
    CancelToken,
    EngineConfig,
    LevelHeadedEngine,
    OutOfMemoryBudgetError,
    QueryCancelledError,
)
from repro.core.governor import cancel_scope
from repro.trie.builder import AnnotationSpec, build_trie
from repro.trie.lazy import LazyTrie
from tests.conftest import make_mini_tpch
from tests.test_engine import Q5_SQL


def _random_columns(n_rows=400, n_keys=30, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, n_keys, n_rows).astype(np.uint32)
    b = rng.integers(0, n_keys, n_rows).astype(np.uint32)
    c = rng.integers(0, n_keys, n_rows).astype(np.uint32)
    vals = rng.normal(size=n_rows)
    return [a, b, c], vals


# ---------------------------------------------------------------------------
# LazyTrie unit behavior
# ---------------------------------------------------------------------------


def test_lazy_matches_eager_on_full_access():
    cols, vals = _random_columns()
    specs = [AnnotationSpec("v", vals, level=2, combine="sum")]
    eager = build_trie(cols, ("a", "b", "c"), specs)
    lazy = build_trie(cols, ("a", "b", "c"), specs, lazy=True)
    assert isinstance(lazy, LazyTrie)
    assert not lazy.built
    # deep access falls back to a full one-shot materialization
    assert lazy.num_tuples == eager.num_tuples
    assert lazy.built and not lazy.pruned
    for i in range(3):
        np.testing.assert_array_equal(
            lazy.level(i).flat_values, eager.level(i).flat_values
        )
        np.testing.assert_array_equal(lazy.level(i).offsets, eager.level(i).offsets)
    np.testing.assert_allclose(
        lazy.annotation("v").values, eager.annotation("v").values
    )


def test_root_level_alone_does_not_build():
    cols, _ = _random_columns()
    lazy = build_trie(cols, ("a", "b", "c"), lazy=True)
    root = lazy.level(0)
    assert not lazy.built  # only the cheap np.unique root exists
    np.testing.assert_array_equal(root.flat_values, np.unique(cols[0]))
    assert len(lazy.materialized_levels()) == 1


def test_pruned_build_is_consistent_under_probed_roots():
    cols, vals = _random_columns()
    specs = [AnnotationSpec("v", vals, level=2, combine="sum")]
    eager = build_trie(cols, ("a", "b", "c"), specs)
    lazy = build_trie(cols, ("a", "b", "c"), specs, lazy=True, prunable=True)
    probed = np.unique(cols[0])[::3]  # survive every third root
    lazy.note_probed_roots(probed)
    assert lazy.built and lazy.pruned

    # level-0 numbering must match the eager trie exactly (widening)
    np.testing.assert_array_equal(
        lazy.level(0).flat_values, eager.level(0).flat_values
    )

    # every tuple under a probed root resolves to the same annotation
    # value through both tries' own node ids
    mask = np.isin(cols[0], probed)
    sub_cols = [c[mask] for c in cols]
    lazy_nodes = lazy.lookup_nodes_batch(sub_cols)
    eager_nodes = eager.lookup_nodes_batch(sub_cols)
    assert (lazy_nodes >= 0).all() and (eager_nodes >= 0).all()
    np.testing.assert_allclose(
        lazy.annotation("v").values[lazy_nodes],
        eager.annotation("v").values[eager_nodes],
    )

    # unprobed roots were pruned away: their child slices are empty
    unprobed_mask = ~np.isin(eager.level(0).flat_values, probed)
    offsets = lazy.level(1).offsets
    widths = np.diff(offsets)
    assert (widths[unprobed_mask] == 0).all()


def test_probing_every_root_skips_pruning():
    cols, _ = _random_columns()
    lazy = build_trie(cols, ("a", "b", "c"), lazy=True, prunable=True)
    lazy.note_probed_roots(np.unique(cols[0]))
    assert lazy.built and not lazy.pruned


def test_note_probed_roots_is_noop_after_build():
    cols, _ = _random_columns()
    lazy = build_trie(cols, ("a", "b", "c"), lazy=True, prunable=True)
    n = lazy.num_tuples  # full build
    lazy.note_probed_roots(np.unique(cols[0])[:2])
    assert not lazy.pruned
    assert lazy.num_tuples == n


def test_non_prunable_lazy_ignores_probes():
    cols, _ = _random_columns()
    lazy = build_trie(cols, ("a", "b", "c"), lazy=True, prunable=False)
    lazy.note_probed_roots(np.unique(cols[0])[:2])
    if lazy.built:
        assert not lazy.pruned


def test_arity_one_lazy_trie():
    col = np.array([3, 1, 2, 1, 3], dtype=np.uint32)
    lazy = build_trie([col], ("a",), lazy=True, prunable=True)
    lazy.note_probed_roots(np.array([1], dtype=np.uint32))  # no-op at arity 1
    assert lazy.num_tuples == 3
    np.testing.assert_array_equal(lazy.level(0).flat_values, [1, 2, 3])


def test_empty_relation_lazy_trie():
    lazy = build_trie(
        [np.empty(0, np.uint32), np.empty(0, np.uint32)], ("a", "b"), lazy=True
    )
    assert lazy.num_tuples == 0


def test_cancelled_build_leaves_trie_unbuilt_and_retryable():
    cols, _ = _random_columns()
    lazy = build_trie(cols, ("a", "b", "c"), lazy=True)
    token = CancelToken()
    token.cancel("mid-build abort")
    with cancel_scope(token):
        with pytest.raises(QueryCancelledError):
            lazy.num_tuples
    assert not lazy.built  # cancellation left no partial structure
    assert lazy.num_tuples > 0  # clean retry outside the scope


# ---------------------------------------------------------------------------
# end to end: lazy vs eager engines
# ---------------------------------------------------------------------------


def _engines():
    # join_strategy is pinned to wcoj: these tests exercise the lazy
    # *trie* path, which binary fragments bypass entirely, so the
    # module must not inherit a REPRO_JOIN_STRATEGY env default
    catalog = make_mini_tpch()
    lazy = LevelHeadedEngine(
        catalog,
        config=EngineConfig(lazy_trie_build=True, join_strategy="wcoj"),
    )
    eager = LevelHeadedEngine(
        catalog,
        config=EngineConfig(lazy_trie_build=False, join_strategy="wcoj"),
    )
    return lazy, eager


def test_lazy_and_eager_engines_agree():
    lazy, eager = _engines()
    assert lazy.query(Q5_SQL).sorted_rows() == eager.query(Q5_SQL).sorted_rows()


def test_lazy_engine_agrees_under_parallelism():
    catalog = make_mini_tpch()
    want = LevelHeadedEngine(
        catalog,
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj", parallel=False
        ),
    ).query(Q5_SQL).sorted_rows()
    for threads in (2, 4):
        engine = LevelHeadedEngine(
            catalog,
            config=EngineConfig(
                lazy_trie_build=True, join_strategy="wcoj",
                parallel=True, num_threads=threads,
            ),
        )
        assert engine.query(Q5_SQL).sorted_rows() == want


def test_profiler_attributes_lazy_builds():
    lazy, _ = _engines()
    prof = lazy.query(Q5_SQL, profile=True).profile
    counters = prof.counters()
    assert counters["lazy_builds"] > 0
    assert counters["lazy_trie_bytes"] > 0
    assert any(name.startswith("trie.lazy") for name in prof.category_seconds)


def test_lazy_profiler_counters_parallel_invariant():
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(
        catalog,
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj", parallel=False
        ),
    )
    parallel = LevelHeadedEngine(
        catalog,
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj",
            parallel=True, num_threads=4,
        ),
    )
    s = serial.query(Q5_SQL, profile=True).profile.counters()
    p = parallel.query(Q5_SQL, profile=True).profile.counters()
    assert s["lazy_builds"] == p["lazy_builds"]
    assert s["lazy_pruned_builds"] == p["lazy_pruned_builds"]
    assert s["lazy_trie_bytes"] == p["lazy_trie_bytes"]


def test_lazy_query_respects_timeout_and_recovers():
    # an adversarial join with lazy tries: the deadline must fire even
    # if it lands inside a lazy materialization, and the engine stays
    # healthy afterwards
    rng = np.random.default_rng(11)
    pairs = sorted(
        {(int(a), int(b)) for a, b in rng.integers(0, 400, size=(15_000, 2))}
    )
    from repro.storage import Catalog, Schema, Table, key

    catalog = Catalog()
    catalog.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="n"), key("dst", domain="n")]),
            src=np.array([p[0] for p in pairs]),
            dst=np.array([p[1] for p in pairs]),
        )
    )
    engine = LevelHeadedEngine(
        catalog,
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj", parallel=False
        ),
    )
    sql = (
        "SELECT count(*) AS triangles FROM edges e1, edges e2, edges e3 "
        "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
    )
    from repro.errors import QueryKilledError

    with pytest.raises(QueryKilledError):
        engine.query(sql, timeout_ms=50)
    assert engine.query("SELECT count(*) AS n FROM edges").single_value() > 0


def test_lazy_query_under_memory_budget_pressure():
    lazy, _ = _engines()
    # a generous budget passes and matches the unbudgeted result
    budgeted = LevelHeadedEngine(
        make_mini_tpch(),
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj",
            memory_budget_bytes=50_000_000,
        ),
    )
    assert budgeted.query(Q5_SQL).sorted_rows() == lazy.query(Q5_SQL).sorted_rows()
    # a starvation budget dies with the typed error, not a crash
    starved = LevelHeadedEngine(
        make_mini_tpch(),
        config=EngineConfig(
            lazy_trie_build=True, join_strategy="wcoj",
            memory_budget_bytes=16,
        ),
    )
    with pytest.raises(OutOfMemoryBudgetError):
        starved.query(Q5_SQL)
