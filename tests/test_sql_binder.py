"""Tests for name resolution, join-vertex construction, and validation."""

import pytest

from repro.errors import BindError, UnsupportedQueryError
from repro.sql import ColumnRef, bind, parse
from repro.storage import AttrType, Catalog, Schema, Table, annotation, key


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(
        Table.from_columns(
            Schema(
                "customer",
                [
                    key("c_custkey", domain="custkey"),
                    key("c_nationkey", domain="nationkey"),
                    annotation("c_acctbal"),
                    annotation("c_name", AttrType.STRING),
                ],
            ),
            c_custkey=[1, 2],
            c_nationkey=[0, 1],
            c_acctbal=[10.0, 20.0],
            c_name=["alice", "bob"],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "orders",
                [
                    key("o_orderkey", domain="orderkey"),
                    key("o_custkey", domain="custkey"),
                    annotation("o_orderdate", AttrType.DATE),
                    annotation("o_total"),
                ],
            ),
            o_orderkey=[100, 101],
            o_custkey=[1, 2],
            o_orderdate=[728294, 728295],
            o_total=[5.0, 7.0],
        )
    )
    cat.register(
        Table.from_columns(
            Schema(
                "matrix",
                [
                    key("i", domain="dim"),
                    key("j", domain="dim"),
                    annotation("v"),
                ],
            ),
            i=[0, 1],
            j=[1, 0],
            v=[1.0, 2.0],
        )
    )
    return cat


def test_bind_resolves_unqualified_columns(catalog):
    q = bind(parse("SELECT c_name FROM customer"), catalog)
    assert q.select_items[0].expr == ColumnRef("customer", "c_name")


def test_bind_unknown_table(catalog):
    with pytest.raises(BindError):
        bind(parse("SELECT x FROM nosuch"), catalog)


def test_bind_unknown_column(catalog):
    with pytest.raises(BindError):
        bind(parse("SELECT zzz FROM customer"), catalog)


def test_bind_unknown_alias_qualifier(catalog):
    with pytest.raises(BindError):
        bind(parse("SELECT q.c_name FROM customer"), catalog)


def test_bind_duplicate_alias(catalog):
    with pytest.raises(BindError):
        bind(parse("SELECT 1 FROM customer c, orders c"), catalog)


def test_bind_ambiguous_column(catalog):
    # both matrix aliases expose 'v'
    with pytest.raises(BindError):
        bind(parse("SELECT v FROM matrix m1, matrix m2 WHERE m1.j = m2.i"), catalog)


def test_bind_join_vertices_union_find(catalog):
    q = bind(
        parse(
            "SELECT c_name, sum(o_total) FROM customer, orders "
            "WHERE c_custkey = o_custkey GROUP BY c_name"
        ),
        catalog,
    )
    names = {v.name for v in q.vertices}
    assert "custkey" in names  # common suffix naming
    custkey = q.vertex("custkey")
    assert set(custkey.members) == {("customer", "c_custkey"), ("orders", "o_custkey")}
    assert q.vertex_of[("orders", "o_custkey")] == "custkey"
    # orderkey is not referenced anywhere -> not a vertex (attribute elimination)
    assert all(("orders", "o_orderkey") not in v.members for v in q.vertices)


def test_bind_unreferenced_keys_eliminated(catalog):
    q = bind(parse("SELECT sum(o_total) FROM orders"), catalog)
    assert q.vertices == []


def test_bind_referenced_key_becomes_singleton_vertex(catalog):
    q = bind(parse("SELECT o_orderkey, sum(o_total) FROM orders GROUP BY o_orderkey"), catalog)
    assert len(q.vertices) == 1
    assert q.vertices[0].members == [("orders", "o_orderkey")]


def test_bind_self_join_vertices(catalog):
    q = bind(
        parse(
            "SELECT m1.i, m2.j, sum(m1.v * m2.v) FROM matrix m1, matrix m2 "
            "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
        ),
        catalog,
    )
    assert len(q.vertices) == 3
    shared = [v for v in q.vertices if len(v.members) == 2]
    assert len(shared) == 1
    assert set(shared[0].members) == {("m1", "j"), ("m2", "i")}
    assert q.edge_vertices("m1")[1] == shared[0].name
    assert q.edge_vertices("m2")[0] == shared[0].name


def test_bind_rejects_mismatched_domains(catalog):
    with pytest.raises(BindError):
        bind(
            parse("SELECT 1 FROM customer, orders WHERE c_custkey = o_orderkey"),
            catalog,
        )


def test_bind_rejects_key_annotation_join(catalog):
    with pytest.raises(BindError):
        bind(
            parse("SELECT 1 FROM customer, orders WHERE c_custkey = o_total"),
            catalog,
        )


def test_bind_filters_assigned_to_alias(catalog):
    q = bind(
        parse(
            "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey "
            "AND o_total > 5 AND c_acctbal < 100 GROUP BY c_name"
        ),
        catalog,
    )
    assert len(q.filters["orders"]) == 1
    assert len(q.filters["customer"]) == 1


def test_bind_cross_table_filter_rejected(catalog):
    with pytest.raises(UnsupportedQueryError):
        bind(
            parse(
                "SELECT 1 FROM customer, orders "
                "WHERE c_custkey = o_custkey AND c_acctbal > o_total"
            ),
            catalog,
        )


def test_bind_equality_selection_flags(catalog):
    q = bind(
        parse(
            "SELECT c_name FROM customer WHERE c_name = 'alice' GROUP BY c_name"
        ),
        catalog,
    )
    assert q.has_equality_selection["customer"]
    q2 = bind(parse("SELECT c_name FROM customer WHERE c_acctbal > 5 GROUP BY c_name"), catalog)
    assert not q2.has_equality_selection["customer"]


def test_bind_group_by_validation(catalog):
    with pytest.raises(BindError):
        bind(parse("SELECT c_name, sum(c_acctbal) FROM customer"), catalog)
    with pytest.raises(BindError):
        bind(
            parse("SELECT c_name, c_acctbal FROM customer GROUP BY c_name"),
            catalog,
        )
    with pytest.raises(BindError):
        bind(parse("SELECT c_name FROM customer GROUP BY sum(c_acctbal)"), catalog)


def test_bind_is_aggregate_property(catalog):
    agg = bind(parse("SELECT sum(o_total) FROM orders"), catalog)
    assert agg.is_aggregate
    plain = bind(parse("SELECT c_name FROM customer"), catalog)
    assert not plain.is_aggregate


def test_bind_alias_keys_in_schema_order(catalog):
    q = bind(
        parse(
            "SELECT m1.i, m2.j, sum(m1.v) FROM matrix m1, matrix m2 "
            "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
        ),
        catalog,
    )
    assert q.alias_keys("m1") == ["i", "j"]
    assert q.alias_keys("m2") == ["i", "j"]
