"""Serving-layer tests: protocol, round-trips, robustness, HTTP, shutdown.

Pins the PR-5 wire contract:

* framing survives malformed, truncated, oversized, and unknown frames
  without crashing the server (log-and-continue);
* a served query returns the same :class:`ResultTable` rows, dtypes,
  and column names as the in-process engine;
* prepared statements, explain, and the error taxonomy work over the
  wire (server-side exceptions rebuild as the same typed classes);
* a mid-stream disconnect frees the session's governor slots;
* ``GET /metrics`` and ``GET /healthz`` answer on the HTTP sidecar;
* ``stop()`` leaves no repro-server threads or bound sockets behind.
"""

import json
import socket
import struct
import threading
import time
import urllib.request

import numpy as np
import pytest

import repro
from repro.client import ReproClient, connect
from repro.server import ReproServer
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.errors import error_from_wire, error_to_wire

from .conftest import make_mini_tpch


def _server_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-server")
    ]


@pytest.fixture()
def served_engine():
    engine = repro.connect(catalog=make_mini_tpch(), max_concurrency=4)
    server = ReproServer(engine, port=0, http_port=0)
    server.start()
    yield engine, server
    server.stop()
    assert _server_threads() == []


def _raw_connection(server):
    sock = socket.create_connection((server.host, server.port), timeout=10)
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    return sock, rfile, wfile


def _raw_hello(server):
    sock, rfile, wfile = _raw_connection(server)
    write_frame(wfile, {"type": "hello", "version": PROTOCOL_VERSION})
    reply = read_frame(rfile)
    assert reply["type"] == "hello"
    return sock, rfile, wfile


# ---------------------------------------------------------------------------
# framing primitives
# ---------------------------------------------------------------------------


def test_frame_round_trip_via_streams(tmp_path):
    path = tmp_path / "frames.bin"
    with open(path, "wb") as out:
        write_frame(out, {"type": "a", "n": 1})
        write_frame(out, {"type": "b", "rows": [[1, "x"], [2, "y"]]})
    with open(path, "rb") as stream:
        assert read_frame(stream) == {"type": "a", "n": 1}
        assert read_frame(stream)["rows"] == [[1, "x"], [2, "y"]]
        assert read_frame(stream) is None  # clean EOF


def test_oversized_outgoing_frame_is_rejected(tmp_path):
    with open(tmp_path / "big.bin", "wb") as out:
        with pytest.raises(ProtocolError, match="exceeds"):
            write_frame(out, {"type": "x", "pad": "y" * 64}, max_frame_bytes=32)


def test_truncated_frame_raises_protocol_error(tmp_path):
    path = tmp_path / "trunc.bin"
    payload = json.dumps({"type": "x"}).encode()
    with open(path, "wb") as out:
        out.write(struct.pack("!I", len(payload)) + payload[:-3])
    with open(path, "rb") as stream:
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(stream)


def test_error_wire_round_trip_rebuilds_typed_exception():
    wire = error_to_wire(repro.RetryableAdmissionError("busy", retry_after_ms=42))
    assert wire["code"] == "admission_retry"
    rebuilt = error_from_wire(wire)
    assert isinstance(rebuilt, repro.RetryableAdmissionError)
    assert rebuilt.retry_after_ms == 42
    protocol = error_from_wire(error_to_wire(ProtocolError("bad frame")))
    assert isinstance(protocol, ProtocolError)


# ---------------------------------------------------------------------------
# query round-trips
# ---------------------------------------------------------------------------

Q1ISH = (
    "SELECT l.l_suppkey, sum(l.l_quantity) AS sum_qty, count(*) AS n "
    "FROM lineitem l GROUP BY l.l_suppkey"
)


def test_hello_announces_join_strategy(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        assert client.join_strategy == engine.config.join_strategy
        assert client.join_strategy in ("auto", "wcoj", "binary")


def test_served_query_matches_in_process(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        remote = client.query(Q1ISH)
    local = engine.query(Q1ISH)
    assert remote.names == local.names
    assert sorted(remote.to_rows()) == sorted(local.to_rows())
    for name in local.names:
        assert remote.columns[name].dtype.kind == local.columns[name].dtype.kind


def test_batching_streams_large_results_intact(served_engine):
    engine, server = served_engine
    # tiny batches force many batch frames for a multi-row result
    small = ReproServer(engine, port=0, batch_rows=2)
    small.start()
    try:
        sql = (
            "SELECT l.l_orderkey, l.l_suppkey, sum(l.l_quantity) AS q "
            "FROM lineitem l GROUP BY l.l_orderkey, l.l_suppkey"
        )
        with connect(small.host, small.port) as client:
            remote = client.query(sql)
        local = engine.query(sql)
        assert remote.num_rows > small.batch_rows  # really crossed batches
        assert sorted(remote.to_rows()) == sorted(local.to_rows())
    finally:
        small.stop()


def test_prepared_statement_over_the_wire(served_engine):
    engine, server = served_engine
    sql = "SELECT count(*) AS n FROM lineitem l WHERE l.l_quantity > ?"
    with connect(server.host, server.port) as client:
        with client.prepare(sql) as stmt:
            assert stmt.params == 1
            local = engine.prepare(sql)
            for qty in (0.0, 10.0, 1e9):
                assert (
                    stmt.execute([qty]).single_value()
                    == local.execute([qty]).single_value()
                )
        with pytest.raises(repro.ReproError, match="closed"):
            stmt.execute([1.0])


def test_unknown_statement_id_is_typed_error(served_engine):
    _, server = served_engine
    with connect(server.host, server.port) as client:
        sock_alive_before = client.session
        with pytest.raises(repro.ReproError, match="unknown prepared statement"):
            stmt = client.prepare("SELECT count(*) AS n FROM lineitem l")
            stmt.stmt_id = 9999
            stmt.execute()
        # the connection survived the error
        assert client.query("SELECT count(*) AS n FROM lineitem l").single_value() > 0
        assert client.session == sock_alive_before


def test_explain_over_the_wire(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        assert client.explain(Q1ISH).splitlines()[0] == engine.explain(Q1ISH).splitlines()[0]


def test_server_error_becomes_same_typed_exception(served_engine):
    _, server = served_engine
    with connect(server.host, server.port) as client:
        with pytest.raises(repro.ParseError):
            client.query("SELEKT broken")
        with pytest.raises(repro.BindError):
            client.query("SELECT count(*) AS n FROM no_such_table t")
        # connection still serves after both errors
        assert client.query("SELECT count(*) AS n FROM lineitem l").single_value() > 0


def test_concurrent_cancel_of_active_query(served_engine):
    _, server = served_engine
    client = connect(server.host, server.port)
    errors = []

    def run():
        try:
            client.query(
                "SELECT count(*) AS n FROM lineitem l1, lineitem l2, lineitem l3 "
                "WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey"
            )
        except repro.QueryCancelledError as exc:
            errors.append(exc)
        except repro.ReproError as exc:  # pragma: no cover -- diagnosing aid
            errors.append(exc)

    worker = threading.Thread(target=run)
    worker.start()
    deadline = time.time() + 5
    while client._active_qid is None and time.time() < deadline:
        time.sleep(0.005)
    client.cancel_active("killed from test")
    worker.join(20)
    client.close()
    # the query either finished before the cancel landed or was killed;
    # a cancel must produce the typed error, never a protocol failure
    assert all(isinstance(e, repro.QueryCancelledError) for e in errors)


# ---------------------------------------------------------------------------
# protocol robustness: the server must log-and-continue
# ---------------------------------------------------------------------------


def test_first_frame_must_be_hello(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_connection(server)
    write_frame(wfile, {"type": "query", "qid": 1, "sql": "SELECT 1"})
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert reply["error"]["code"] == "protocol"
    assert read_frame(rfile) is None  # server hung up
    sock.close()


def test_version_mismatch_is_rejected(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_connection(server)
    write_frame(wfile, {"type": "hello", "version": 999})
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert "version" in reply["error"]["message"]
    sock.close()


def test_malformed_payload_gets_error_and_disconnect(served_engine):
    engine, server = served_engine
    before = engine.metrics.counter("server_protocol_errors")
    sock, rfile, wfile = _raw_hello(server)
    garbage = b"this is not json"
    wfile.write(struct.pack("!I", len(garbage)) + garbage)
    wfile.flush()
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert reply["error"]["code"] == "protocol"
    assert read_frame(rfile) is None
    sock.close()
    assert engine.metrics.counter("server_protocol_errors") > before
    # and the server still answers new connections
    with connect(server.host, server.port) as client:
        assert client.query("SELECT count(*) AS n FROM lineitem l").single_value() > 0


def test_oversized_announced_frame_is_cut_off(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_hello(server)
    wfile.write(struct.pack("!I", MAX_FRAME_BYTES + 1))
    wfile.flush()
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert "frame limit" in reply["error"]["message"]
    sock.close()


def test_truncated_frame_mid_payload_drops_connection(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_hello(server)
    payload = json.dumps({"type": "query", "qid": 1, "sql": "SELECT 1"}).encode()
    wfile.write(struct.pack("!I", len(payload)) + payload[: len(payload) // 2])
    wfile.flush()
    sock.shutdown(socket.SHUT_WR)  # half-close: the read side sees truncation
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert "truncated" in reply["error"]["message"]
    sock.close()


def test_unknown_message_type_keeps_connection_alive(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_hello(server)
    write_frame(wfile, {"type": "frobnicate"})
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert "unknown message type" in reply["error"]["message"]
    # same connection still serves queries afterwards
    write_frame(wfile, {"type": "query", "qid": 7, "sql": "SELECT count(*) AS n FROM lineitem l"})
    kinds = []
    while True:
        frame = read_frame(rfile)
        kinds.append(frame["type"])
        if frame["type"] in ("done", "error"):
            break
    assert kinds[0] == "result_header"
    assert kinds[-1] == "done"
    write_frame(wfile, {"type": "close"})
    assert read_frame(rfile)["type"] == "bye"
    sock.close()


def test_missing_qid_is_protocol_error(served_engine):
    _, server = served_engine
    sock, rfile, wfile = _raw_hello(server)
    write_frame(wfile, {"type": "query", "sql": "SELECT 1"})
    reply = read_frame(rfile)
    assert reply["type"] == "error"
    assert "qid" in reply["error"]["message"]
    sock.close()


def test_midstream_disconnect_frees_governor_slots(served_engine):
    engine, server = served_engine
    sock, rfile, wfile = _raw_hello(server)
    write_frame(
        wfile,
        {
            "type": "query",
            "qid": 1,
            "sql": (
                "SELECT count(*) AS n FROM lineitem l1, lineitem l2, lineitem l3 "
                "WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey"
            ),
        },
    )
    read_frame(rfile)  # wait for the header: the query is definitely running
    # vanish mid-stream (makefile objects hold the fd; close them all)
    sock.shutdown(socket.SHUT_RDWR)
    rfile.close()
    wfile.close()
    sock.close()
    deadline = time.time() + 20
    while time.time() < deadline:
        snap = engine.governor.snapshot()
        if (
            snap["active"] == 0
            and not snap["sessions"]
            and engine.metrics.counter("server_connections_closed") >= 1
        ):
            break
        time.sleep(0.02)
    snap = engine.governor.snapshot()
    assert snap["active"] == 0
    assert snap["sessions"] == {}
    assert engine.metrics.counter("server_connections_closed") >= 1


# ---------------------------------------------------------------------------
# HTTP sidecar
# ---------------------------------------------------------------------------


def test_http_metrics_and_healthz(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        client.query("SELECT count(*) AS n FROM lineitem l")
        base = f"http://{server.host}:{server.http_port}"
        body = urllib.request.urlopen(f"{base}/metrics", timeout=10).read().decode()
        assert "repro_server_queries_total" in body
        assert "repro_server_active_connections 1" in body
        assert "repro_queries_served_total" in body
        health = json.loads(
            urllib.request.urlopen(f"{base}/healthz", timeout=10).read().decode()
        )
        assert health["status"] == "ok"
        assert health["active_connections"] == 1
        assert health["inflight_queries"] == 0
        assert health["plan_cache"]["entries"] == 1
        assert health["plan_cache"]["capacity"] == engine.plan_cache.capacity
        assert health["governor"] == {
            "active": 0,
            "waiting": 0,
            "max_queue": engine.governor.max_queue,
            "load_shedding": False,
        }
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=10)


# ---------------------------------------------------------------------------
# correlation: wire traces, query ids, debug frames, live endpoints
# ---------------------------------------------------------------------------


def test_remote_trace_stitches_one_correlated_span_tree(served_engine):
    import io

    engine, server = served_engine
    sink = io.StringIO()
    engine.enable_query_log(sink)
    with connect(server.host, server.port) as client:
        result = client.query(Q1ISH, trace=True)
    qid = result.query_id
    assert qid
    root = result.trace
    assert root is not None and root.name == "client.query"
    # one stitched tree: client send + wire, with the server's
    # admission/compile/execute spans grafted inside the wire span
    assert [c.name for c in root.children] == ["client.send", "wire"]
    wire = root.children[1]
    assert wire.children and wire.children[0].name == "query"
    for name in ("admission.wait", "compile", "execute"):
        assert root.find(name) is not None
    # the one query_id (and trace_id) appears on both ends of the tree
    assert root.payload["query_id"] == qid
    server_root = root.find("query")
    assert server_root.payload["query_id"] == qid
    assert server_root.payload["trace_id"] == root.payload["trace_id"]
    # ... and in the server's JSONL query log
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert qid in [e["query_id"] for e in events]
    # ... and in the flight recorder
    flight = engine.debug_snapshot("flight")
    assert qid in [e["query_id"] for e in flight["entries"]]
    # the stitched tree exports to Chrome trace like a local one
    from repro.obs import to_chrome_trace

    doc = to_chrome_trace(root)
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"client.query", "client.send", "wire", "query", "execute"} <= names


def test_untraced_remote_query_still_carries_query_id(served_engine):
    _, server = served_engine
    with connect(server.host, server.port) as client:
        result = client.query(Q1ISH)
    assert result.query_id
    assert result.trace is None


def test_wire_error_carries_query_id_matching_flight_entry(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        with pytest.raises(repro.BindError) as info:
            client.query("SELECT count(*) AS n FROM no_such_table t")
    qid = getattr(info.value, "query_id", None)
    assert qid
    flight = engine.debug_snapshot("flight", outcome="error")
    assert qid in [e["query_id"] for e in flight["entries"]]


def test_debug_frames_over_the_wire(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        client.query(Q1ISH)
        flight = client.debug("flight", n=5)
        assert flight["capacity"] == engine.flight.capacity
        assert flight["entries"] and flight["entries"][0]["outcome"] == "ok"
        assert client.debug("queries") == {"count": 0, "queries": []}
        plans = client.debug("plans")
        assert plans["size"] == len(plans["entries"]) == 1
        gov = client.debug("governor")["governor"]
        assert gov["max_queue"] == engine.governor.max_queue
        with pytest.raises(repro.ReproError, match="unknown debug view"):
            client.debug("bogus")
        # the connection survived the bad debug request
        assert client.query(Q1ISH).num_rows > 0


def test_debug_endpoints_concurrent_with_queries(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "1")
    engine = repro.connect(catalog=make_mini_tpch(), max_concurrency=4)
    assert engine.config.parallel  # the env toggle reached the config
    server = ReproServer(engine, port=0, http_port=0)
    server.start()
    try:
        stop = threading.Event()
        query_errors = []

        def churn():
            with connect(server.host, server.port) as client:
                while not stop.is_set():
                    try:
                        client.query(Q1ISH)
                    except repro.ReproError as exc:
                        query_errors.append(exc)
                        return

        workers = [threading.Thread(target=churn) for _ in range(3)]
        for w in workers:
            w.start()
        base = f"http://{server.host}:{server.http_port}"
        deadline = time.time() + 2.0
        scrapes = 0
        while time.time() < deadline:
            for what in ("queries", "flight", "plans", "governor"):
                body = urllib.request.urlopen(
                    f"{base}/debug/{what}", timeout=10
                ).read()
                json.loads(body)  # every scrape is whole, valid JSON
                scrapes += 1
            health = json.loads(
                urllib.request.urlopen(f"{base}/healthz", timeout=10).read()
            )
            assert health["status"] in ("ok", "overloaded")
        stop.set()
        for w in workers:
            w.join(20)
        assert not query_errors
        assert scrapes >= 4
        flight = engine.debug_snapshot("flight")
        assert flight["entries"]
        ids = [e["query_id"] for e in flight["entries"]]
        assert len(set(ids)) == len(ids)
    finally:
        server.stop()


def test_http_debug_flight_filters_via_query_string(served_engine):
    engine, server = served_engine
    with connect(server.host, server.port) as client:
        client.query(Q1ISH)
        client.query(Q1ISH)
        with pytest.raises(repro.BindError):
            client.query("SELECT count(*) AS n FROM no_such_table t")
    base = f"http://{server.host}:{server.http_port}"
    flight = json.loads(
        urllib.request.urlopen(f"{base}/debug/flight?n=1", timeout=10).read()
    )
    assert len(flight["entries"]) == 1
    errors = json.loads(
        urllib.request.urlopen(
            f"{base}/debug/flight?outcome=error", timeout=10
        ).read()
    )
    assert [e["outcome"] for e in errors["entries"]] == ["error"]
    bad = urllib.request.Request(f"{base}/debug/flight?n=zebra")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(bad, timeout=10)
    assert info.value.code == 400
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(f"{base}/debug/nothing", timeout=10)


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


def test_metrics_http_lifecycle_is_idempotent_and_restartable():
    from repro.server.http import MetricsHTTPServer

    engine = repro.connect(catalog=make_mini_tpch())
    http = MetricsHTTPServer(engine, port=0)
    host, port = http.start()
    assert http.start() == (host, port)  # idempotent, same address
    body = urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=10).read()
    assert json.loads(body)["status"] == "ok"
    http.stop()
    http.stop()  # idempotent
    with pytest.raises((ConnectionError, OSError)):
        urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=2)
    host2, port2 = http.start()  # re-startable after stop
    body = urllib.request.urlopen(
        f"http://{host2}:{port2}/healthz", timeout=10
    ).read()
    assert json.loads(body)["status"] == "ok"
    http.stop()


def test_stop_is_clean_and_idempotent():
    engine = repro.connect(catalog=make_mini_tpch())
    server = ReproServer(engine, port=0, http_port=0)
    host, port = server.start()
    with connect(host, port) as client:
        client.query("SELECT count(*) AS n FROM lineitem l")
    server.stop()
    server.stop()  # idempotent
    assert _server_threads() == []
    # both ports are released and re-bindable
    for bound in (port, server.http_port):
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, bound))
        probe.close()


def test_stop_kills_connected_sessions():
    engine = repro.connect(catalog=make_mini_tpch(), max_concurrency=2)
    server = ReproServer(engine, port=0)
    host, port = server.start()
    client = connect(host, port)
    server.stop()
    with pytest.raises((repro.ReproError, OSError)):
        client.query("SELECT count(*) AS n FROM lineitem l")
    client.close()
    assert _server_threads() == []


def test_context_manager_starts_and_stops():
    engine = repro.connect(catalog=make_mini_tpch())
    with ReproServer(engine, port=0) as server:
        with connect(server.host, server.port) as client:
            assert client.server.startswith("repro-server")
    assert _server_threads() == []


def test_lazy_top_level_exports():
    assert repro.ReproServer is ReproServer
    assert repro.ReproClient is ReproClient
    assert "ReproClient" in dir(repro)
