"""Tests for the exporters (``repro.obs.export``): Prometheus text
exposition, the JSONL query log with slow-query capture, and Chrome
trace-event rendering."""

import io
import json
from pathlib import Path

import pytest

from repro import LevelHeadedEngine, MetricsRegistry, Tracer
from repro.obs import QueryLog, to_chrome_trace, to_prometheus
from tests.conftest import make_mini_tpch
from tests.test_engine import Q5_SQL

GOLDEN = Path(__file__).parent / "golden" / "metrics_golden.prom"


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def test_prometheus_matches_golden_file():
    m = MetricsRegistry()
    m.record_query(0.010, compile_seconds=0.050, cache_outcome="miss", rows=3,
                   bytes_materialized=96, groups_emitted=3)
    m.record_query(0.008, cache_outcome="hit", rows=3, bytes_materialized=96)
    assert m.to_prometheus() == GOLDEN.read_text()


def test_prometheus_empty_registry_renders_rate_only():
    text = to_prometheus(MetricsRegistry())
    assert "repro_plan_cache_hit_rate 0" in text
    assert "_total" not in text
    assert text.endswith("\n")


def test_prometheus_counters_are_sorted_and_typed():
    m = MetricsRegistry()
    m.record_query(0.001, cache_outcome="hit", rows=1, bytes_materialized=8)
    text = to_prometheus(m)
    lines = text.splitlines()
    counter_names = [
        line.split(" ")[0] for line in lines
        if line and not line.startswith("#") and line.split(" ")[0].endswith("_total")
    ]
    assert counter_names == sorted(counter_names)
    for name in counter_names:
        assert f"# TYPE {name} counter" in text


def test_prometheus_notes_wrapped_reservoir():
    # a summary-style (bucket-less) histogram keeps quantile series and
    # marks them approximate once the reservoir wraps
    m = MetricsRegistry()
    for v in range(5000):  # past the 4096-sample reservoir
        m.observe("server_request_seconds", float(v))
    text = to_prometheus(m)
    assert "quantiles are approximate" in text
    assert "repro_server_request_seconds_reservoir_samples 4096" in text
    assert "repro_server_request_seconds_count 5000" in text


def test_prometheus_bucketed_histograms_emit_cumulative_bucket_series():
    m = MetricsRegistry()
    for v in (0.0005, 0.002, 0.002, 0.3, 42.0):
        m.observe("execute_seconds", v)
    m.observe("admission_wait_seconds", 0.05)
    text = to_prometheus(m)
    assert "# TYPE repro_execute_seconds histogram" in text
    # cumulative le-counts: 1 at <=0.001, 3 at <=0.0025, 4 at <=0.5,
    # and +Inf catches the 42s outlier
    assert 'repro_execute_seconds_bucket{le="0.001"} 1' in text
    assert 'repro_execute_seconds_bucket{le="0.0025"} 3' in text
    assert 'repro_execute_seconds_bucket{le="0.5"} 4' in text
    assert 'repro_execute_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_execute_seconds_count 5" in text
    # bucketed families drop the (approximate) quantile series
    assert 'repro_execute_seconds{quantile=' not in text
    assert 'repro_admission_wait_seconds_bucket{le="0.05"} 1' in text
    assert 'repro_admission_wait_seconds_bucket{le="+Inf"} 1' in text


# ---------------------------------------------------------------------------
# JSONL query log: schema
# ---------------------------------------------------------------------------

EXPECTED_FIELDS = ["ts", "event", "query_id", "sql", "mode", "cache_outcome",
                   "compile_ms", "execute_ms", "rows", "slow", "annotations"]


def test_query_log_event_schema_and_field_order():
    sink = io.StringIO()
    log = QueryLog(sink, clock=_fake_clock([100.0]))
    log.record(sql="SELECT 1", mode="join", cache_outcome="miss",
               compile_seconds=0.002, execute_seconds=0.001, rows=1)
    line = sink.getvalue().strip()
    event = json.loads(line)
    assert list(event.keys()) == EXPECTED_FIELDS
    assert event["ts"] == 100.0
    assert event["event"] == "query"
    assert event["mode"] == "join"
    assert event["cache_outcome"] == "miss"
    assert event["compile_ms"] == pytest.approx(2.0)
    assert event["execute_ms"] == pytest.approx(1.0)
    assert event["rows"] == 1
    assert event["slow"] is False
    # annotations is present on every event, an empty dict when unused.
    assert event["annotations"] == {}
    assert log.events_written == 1 and log.slow_events_written == 0


def test_query_log_null_compile_on_cache_hit():
    sink = io.StringIO()
    log = QueryLog(sink)
    log.record(sql="q", mode="join", cache_outcome="hit",
               compile_seconds=None, execute_seconds=0.001, rows=0)
    event = json.loads(sink.getvalue())
    assert event["compile_ms"] is None


def test_query_log_fast_query_below_threshold_is_not_slow():
    sink = io.StringIO()
    log = QueryLog(sink, slow_query_seconds=10.0)
    assert log.captures_traces
    log.record(sql="q", mode="join", cache_outcome="hit",
               compile_seconds=None, execute_seconds=0.001, rows=0)
    event = json.loads(sink.getvalue())
    assert event["event"] == "query" and event["slow"] is False
    assert "plan" not in event and "trace" not in event


def test_query_log_slow_query_carries_plan_and_trace():
    tracer = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 3.0]))
    with tracer.span("query"):
        with tracer.span("execute"):
            pass
    sink = io.StringIO()
    log = QueryLog(sink, slow_query_seconds=0.5)
    log.record(sql="q", mode="join", cache_outcome="hit",
               compile_seconds=None, execute_seconds=2.0, rows=0,
               plan_text="plan text here", trace_root=tracer.root)
    event = json.loads(sink.getvalue())
    assert event["event"] == "slow_query" and event["slow"] is True
    assert list(event.keys()) == EXPECTED_FIELDS + ["threshold_ms", "plan", "trace"]
    assert event["threshold_ms"] == pytest.approx(500.0)
    assert event["plan"] == "plan text here"
    assert event["trace"]["name"] == "query"
    assert event["trace"]["children"][0]["name"] == "execute"
    assert log.slow_events_written == 1


def test_query_log_path_sink_appends(tmp_path):
    path = tmp_path / "queries.jsonl"
    log = QueryLog(path)
    log.record(sql="a", mode="join", cache_outcome="miss",
               compile_seconds=0.001, execute_seconds=0.001, rows=1)
    log.close()
    log = QueryLog(path)
    log.record(sql="b", mode="join", cache_outcome="hit",
               compile_seconds=None, execute_seconds=0.001, rows=1)
    log.close()
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["sql"] for e in events] == ["a", "b"]


# ---------------------------------------------------------------------------
# JSONL query log: engine integration
# ---------------------------------------------------------------------------


@pytest.fixture()
def engine():
    return LevelHeadedEngine(make_mini_tpch())


def test_engine_query_log_records_every_query(engine):
    sink = io.StringIO()
    engine.enable_query_log(sink)
    engine.query(Q5_SQL)
    engine.query(Q5_SQL)
    events = [json.loads(line) for line in sink.getvalue().splitlines()]
    assert len(events) == 2
    assert [e["cache_outcome"] for e in events] == ["miss", "hit"]
    ids = [e["query_id"] for e in events]
    assert all(ids) and len(set(ids)) == 2  # one distinct id per query
    assert events[0]["compile_ms"] > 0 and events[1]["compile_ms"] is None
    assert all(e["rows"] == 1 for e in events)
    assert all(e["slow"] is False for e in events)
    engine.query_log = None
    engine.query(Q5_SQL)
    assert len(sink.getvalue().splitlines()) == 2  # detached: no new events


def test_engine_slow_query_capture_only_above_threshold(engine):
    sink = io.StringIO()
    # threshold 0: everything is slow; the engine force-enables tracing
    # so the event carries the full plan and span tree.
    engine.enable_query_log(sink, slow_query_seconds=0.0)
    result = engine.query(Q5_SQL)
    assert result.trace is None  # forced trace stays internal
    event = json.loads(sink.getvalue().splitlines()[0])
    assert event["event"] == "slow_query"
    assert "GHD" in event["plan"] or "node" in event["plan"].lower()
    span_names = {event["trace"]["name"]}
    span_names.update(c["name"] for c in event["trace"]["children"])
    assert "query" in span_names and "execute" in span_names

    # an absurdly high threshold: nothing is slow, no plan/trace capture
    sink2 = io.StringIO()
    engine.enable_query_log(sink2, slow_query_seconds=1e9)
    engine.query(Q5_SQL)
    event2 = json.loads(sink2.getvalue().splitlines()[0])
    assert event2["event"] == "query"
    assert "plan" not in event2 and "trace" not in event2


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


def test_chrome_trace_structure():
    tracer = Tracer(clock=_fake_clock([0.0, 0.001, 0.002, 0.004]))
    with tracer.span("query", sql_len=8):
        with tracer.span("execute"):
            pass
    doc = to_chrome_trace(tracer.root)
    json.dumps(doc)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert [e["name"] for e in events] == ["query", "execute"]
    assert all(e["ph"] == "X" for e in events)
    root, child = events
    assert root["ts"] == 0.0 and root["dur"] == pytest.approx(4000.0)
    assert child["ts"] == pytest.approx(1000.0)
    assert child["dur"] == pytest.approx(1000.0)
    assert root["args"]["sql_len"] == 8


Q3_MINI = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15'
GROUP BY l_orderkey, o_orderdate
"""


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_chrome_trace_event_schema_golden_for_q3(parallel):
    # pins the Chrome trace-event schema the tooling depends on: every
    # span is one complete event with exactly ph/ts/dur/pid/tid (+args),
    # whether the tree came from a serial or a parallel execution
    from repro.xcution.plan import EngineConfig

    engine = LevelHeadedEngine(make_mini_tpch(), config=EngineConfig(parallel=parallel))
    result = engine.query(Q3_MINI, trace=True)
    doc = to_chrome_trace(result.trace)
    json.dumps(doc)  # JSON-serializable end to end
    assert set(doc.keys()) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert events and events[0]["name"] == "query"
    for event in events:
        assert set(event.keys()) in (
            {"name", "ph", "ts", "dur", "pid", "tid"},
            {"name", "ph", "ts", "dur", "pid", "tid", "args"},
        )
        assert event["ph"] == "X"
        assert isinstance(event["name"], str)
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["pid"] == 1 and event["tid"] == 1
        if "args" in event:
            assert isinstance(event["args"], dict) and event["args"]
    names = {e["name"] for e in events}
    assert {"query", "compile", "execute", "decode", "node.execute"} <= names
    # the root span carries the minted query_id into the export
    root_args = events[0]["args"]
    assert root_args["query_id"] == result.query_id


def test_chrome_trace_from_engine_query(engine, tmp_path):
    from repro.obs import write_chrome_trace

    result = engine.query(Q5_SQL, trace=True)
    path = tmp_path / "trace.json"
    write_chrome_trace(result.trace, path)
    doc = json.loads(path.read_text())
    names = {e["name"] for e in doc["traceEvents"]}
    assert "query" in names and "execute" in names and "decode" in names
