"""Differential tests: parallel execution must equal serial, exactly.

The parfor path chunks the outermost intersection across worker
threads.  These tests pin down the contract the executor documents in
``repro.xcution.parfor``:

* result tables are identical to the serial run (same rows),
* the merged :class:`~repro.xcution.stats.ExecutionStats` counters are
  byte-identical to the serial run (workers accumulate into private
  stats objects merged deterministically -- no lost updates, no
  chunk-count leakage),
* repeated parallel runs are deterministic,
* the global ``memory_budget_bytes`` is respected: apportioned worker
  budgets cannot add up past the configured limit.
"""

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine, OutOfMemoryBudgetError
from repro.datasets.tpch.queries import Q5
from repro.la import matmul_sql
from tests.conftest import make_mini_tpch

THREAD_COUNTS = [1, 2, 4]

# TPC-H Q3's shape (customer |x| orders |x| lineitem, revenue per
# order) restricted to the mini catalog's columns.
Q3_MINI = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15'
GROUP BY l_orderkey, o_orderdate
"""


def _run(catalog, sql, config):
    """Compile + execute outside the plan cache: pure executor counters."""
    engine = LevelHeadedEngine(catalog, config=config)
    plan = engine.compile(sql)
    result = engine.execute(plan, collect_stats=True)
    return result, result.stats


def _sparse_catalog(n=60, nnz=500, seed=11):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    flat = np.unique(rows * n + cols)
    rows, cols = flat // n, flat % n
    vals = rng.normal(size=rows.size)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    return engine.catalog


@pytest.fixture(scope="module")
def tpch_catalog():
    return make_mini_tpch()


@pytest.fixture(scope="module")
def smm_catalog():
    return _sparse_catalog()


@pytest.mark.parametrize("sql_name,sql", [("Q3", Q3_MINI), ("Q5", Q5)])
@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_tpch_parallel_matches_serial(tpch_catalog, sql_name, sql, threads):
    serial_result, serial_stats = _run(tpch_catalog, sql, EngineConfig(parallel=False))
    par_result, par_stats = _run(
        tpch_catalog, sql, EngineConfig(parallel=True, num_threads=threads)
    )
    assert par_result.sorted_rows() == serial_result.sorted_rows()
    assert par_stats.as_dict() == serial_stats.as_dict()


@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_smm_parallel_matches_serial(smm_catalog, threads):
    sql = matmul_sql("m")
    serial_result, serial_stats = _run(smm_catalog, sql, EngineConfig(parallel=False))
    par_result, par_stats = _run(
        smm_catalog, sql, EngineConfig(parallel=True, num_threads=threads)
    )
    assert par_result.sorted_rows() == serial_result.sorted_rows()
    assert par_stats.as_dict() == serial_stats.as_dict()


def test_parallel_repeated_runs_are_deterministic(tpch_catalog):
    runs = [
        _run(tpch_catalog, Q5, EngineConfig(parallel=True, num_threads=4))
        for _ in range(3)
    ]
    first_rows = runs[0][0].sorted_rows()
    first_stats = runs[0][1].as_dict()
    for result, stats in runs[1:]:
        assert result.sorted_rows() == first_rows
        assert stats.as_dict() == first_stats


def test_smm_parallel_repeated_runs_are_deterministic(smm_catalog):
    sql = matmul_sql("m")
    runs = [
        _run(smm_catalog, sql, EngineConfig(parallel=True, num_threads=4))
        for _ in range(3)
    ]
    first_rows = runs[0][0].sorted_rows()
    first_stats = runs[0][1].as_dict()
    for result, stats in runs[1:]:
        assert result.sorted_rows() == first_rows
        assert stats.as_dict() == first_stats


@pytest.mark.parametrize("threads", [2, 4])
def test_tight_budget_raises_under_parallel(smm_catalog, threads):
    """Workers must not multiply the budget by the chunk count.

    SMM on this catalog emits a few thousand groups; a budget sized
    for a handful must fail whether one thread or four share it.
    """
    config = EngineConfig(
        parallel=True, num_threads=threads, memory_budget_bytes=1000
    )
    engine = LevelHeadedEngine(smm_catalog, config=config)
    with pytest.raises(OutOfMemoryBudgetError):
        engine.query(matmul_sql("m"))


def test_tight_budget_raises_serial_too(smm_catalog):
    config = EngineConfig(parallel=False, memory_budget_bytes=1000)
    engine = LevelHeadedEngine(smm_catalog, config=config)
    with pytest.raises(OutOfMemoryBudgetError):
        engine.query(matmul_sql("m"))


def _profile_counters(catalog, sql, config):
    engine = LevelHeadedEngine(catalog, config=config)
    plan = engine.compile(sql)
    return engine.execute(plan, profile=True).profile.counters()


@pytest.mark.parametrize("sql_name,sql", [("Q3", Q3_MINI), ("Q5", Q5)])
@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_tpch_profiler_counters_parallel_match_serial(
    tpch_catalog, sql_name, sql, threads
):
    """Chunking must not change what work the kernels do.

    The profiler's ``counters()`` are defined to be parallel-invariant:
    splitting the outer intersection across workers changes neither the
    set of pairwise intersections nor their operand layouts or bytes.
    """
    serial = _profile_counters(tpch_catalog, sql, EngineConfig(parallel=False))
    par = _profile_counters(
        tpch_catalog, sql, EngineConfig(parallel=True, num_threads=threads)
    )
    assert par == serial


@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_smm_profiler_counters_parallel_match_serial(smm_catalog, threads):
    sql = matmul_sql("m")
    serial = _profile_counters(smm_catalog, sql, EngineConfig(parallel=False))
    par = _profile_counters(
        smm_catalog, sql, EngineConfig(parallel=True, num_threads=threads)
    )
    assert par == serial


def test_generous_budget_passes_under_parallel(smm_catalog):
    config = EngineConfig(
        parallel=True, num_threads=4, memory_budget_bytes=50 * 1024 * 1024
    )
    engine = LevelHeadedEngine(smm_catalog, config=config)
    result = engine.query(matmul_sql("m"))
    assert result.num_rows > 0
