"""Governance over the wire: admission, cancel, timeout, e2e serving.

The serving layer must surface the PR-4 governance contract to network
clients unchanged:

* concurrent clients behind a two-slot governor all complete (or see a
  typed, retryable shed) -- and :func:`repro.retry_admission` works on
  client-side calls because the admission error rebuilds with its
  ``retry_after_ms``;
* a wire-level ``cancel`` kills a long scan within the same latency
  envelope PR-4 pinned for in-process cancellation;
* per-query ``timeout_ms`` travels with the query frame and comes back
  as :class:`repro.QueryTimeoutError`;
* eight concurrent clients running mixed SQL + LA workloads against one
  server get results identical to the in-process engine, the /metrics
  scrape shows the admission counters, and zero governor slots leak;
* ``repro.cli serve --load`` round-trips a persisted TPC-H catalog:
  the served Q1 answer equals the in-process answer on the same files.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

import repro
from repro import LevelHeadedEngine, RetryableAdmissionError, retry_admission
from repro.client import connect
from repro.core.governor import Governor
from repro.datasets.tpch import generate_tpch
from repro.datasets.tpch.queries import TPCH_QUERIES
from repro.server import ReproServer
from repro.storage.persist import load_catalog, save_catalog

from .test_governance import DEGREE_SQL, TRIANGLE_SQL, graph_catalog

MATMUL_SQL = (
    "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v FROM matrix m1, matrix m2 "
    "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
)


def _graph_engine(max_concurrency=2, **kwargs):
    governor = (
        Governor(max_concurrency=max_concurrency, **kwargs)
        if max_concurrency is not None
        else None
    )
    engine = LevelHeadedEngine(graph_catalog(150, 3_000), governor=governor)
    engine.register_matrix(
        "matrix",
        rows=[0, 0, 1, 2, 3], cols=[0, 2, 0, 1, 3], values=[0.5, 1.5, 2.0, 3.0, 4.0],
        n=4,
    )
    return engine


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------


def test_queued_client_sees_retryable_error_with_retry_after():
    engine = _graph_engine(max_concurrency=1, max_queue=0)
    server = ReproServer(engine, port=0)
    server.start()
    try:
        held = engine.governor.admit(cached=True, token=None)
        try:
            with connect(server.host, server.port) as client:
                with pytest.raises(RetryableAdmissionError) as excinfo:
                    client.query(DEGREE_SQL)
                assert excinfo.value.retry_after_ms > 0
        finally:
            engine.governor.release(held)
        # the standard client-side backoff helper works over the wire
        with connect(server.host, server.port) as client:
            rows = retry_admission(
                lambda: client.query(DEGREE_SQL).sorted_rows(), attempts=8
            )
        assert rows == engine.query(DEGREE_SQL).sorted_rows()
    finally:
        server.stop()


def test_concurrent_clients_fair_admission_two_slots():
    engine = _graph_engine(max_concurrency=2)
    expected = LevelHeadedEngine(graph_catalog(150, 3_000)).query(
        DEGREE_SQL
    ).sorted_rows()
    server = ReproServer(engine, port=0)
    server.start()
    results, failures = [], []

    def client_session():
        try:
            with connect(server.host, server.port) as client:
                rows = retry_admission(
                    lambda: client.query(DEGREE_SQL).sorted_rows(), attempts=8
                )
            results.append(rows)
        except RetryableAdmissionError as exc:
            failures.append(exc)

    try:
        threads = [threading.Thread(target=client_session) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(not t.is_alive() for t in threads)
        assert len(results) + len(failures) == 6
        assert results, "admission starved every client"
        for rows in results:
            assert rows == expected
        # admissions were tagged per session while in flight; afterwards
        # nothing is held
        snap = engine.governor.snapshot()
        assert snap["active"] == 0
        assert snap["sessions"] == {}
        assert engine.governor.counters["admitted"] >= len(results)
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# cancellation and deadlines over the wire
# ---------------------------------------------------------------------------


def test_wire_cancel_kills_long_scan_quickly():
    # ~2s of serial work; the wire-level cancel must kill it fast.
    engine = LevelHeadedEngine(
        graph_catalog(500, 20_000),
        config=repro.EngineConfig(parallel=False),
        governor=Governor(max_concurrency=2),
    )
    server = ReproServer(engine, port=0)
    server.start()
    client = connect(server.host, server.port)
    outcome = {}

    def run():
        try:
            client.query(TRIANGLE_SQL)
            outcome["finished"] = True
        except repro.QueryCancelledError as exc:
            outcome["cancelled"] = exc

    try:
        worker = threading.Thread(target=run)
        worker.start()
        deadline = time.time() + 5
        while client._active_qid is None and time.time() < deadline:
            time.sleep(0.005)
        time.sleep(0.2)  # let the scan get going
        cancel_start = time.perf_counter()
        assert client.cancel_active("wire cancel test")
        worker.join(20)
        cancel_latency = time.perf_counter() - cancel_start
        assert not worker.is_alive()
        assert "cancelled" in outcome, f"query survived cancel: {outcome}"
        assert "wire cancel test" in str(outcome["cancelled"])
        # same envelope PR-4 pins for in-process cancellation: the kill
        # lands far faster than the query's natural ~2s runtime
        assert cancel_latency < 1.0
        assert engine.metrics.counter("server_cancel_frames") == 1
    finally:
        client.close()
        server.stop()
    snap = engine.governor.snapshot()
    assert snap["active"] == 0 and snap["sessions"] == {}


def test_wire_timeout_returns_typed_error_within_envelope():
    engine = LevelHeadedEngine(
        graph_catalog(500, 20_000),
        config=repro.EngineConfig(parallel=False),
        governor=Governor(max_concurrency=2),
    )
    server = ReproServer(engine, port=0)
    server.start()
    try:
        with connect(server.host, server.port) as client:
            start = time.perf_counter()
            with pytest.raises(repro.QueryTimeoutError) as excinfo:
                client.query(TRIANGLE_SQL, timeout_ms=150)
            elapsed_ms = (time.perf_counter() - start) * 1000
        assert excinfo.value.timeout_ms == 150
        # 1.5x the PR-4 envelope, plus generous wire slack
        assert elapsed_ms < 150 * 1.5 + 500
    finally:
        server.stop()
    assert engine.governor.snapshot()["active"] == 0


# ---------------------------------------------------------------------------
# the acceptance e2e: 8 concurrent mixed-workload clients
# ---------------------------------------------------------------------------


def test_eight_concurrent_clients_mixed_sql_and_la():
    engine = _graph_engine(max_concurrency=2)
    reference = _graph_engine(max_concurrency=None)  # ungoverned twin
    expected = {
        "sql": reference.query(DEGREE_SQL).sorted_rows(),
        "la": reference.query(MATMUL_SQL).sorted_rows(),
    }
    server = ReproServer(engine, port=0, http_port=0)
    server.start()
    results, failures = [], []

    def client_session(i):
        kind = "la" if i % 2 else "sql"
        sql = MATMUL_SQL if kind == "la" else DEGREE_SQL
        try:
            with connect(server.host, server.port) as client:
                rows = retry_admission(
                    lambda: client.query(sql).sorted_rows(), attempts=10
                )
            results.append((kind, rows))
        except RetryableAdmissionError as exc:
            failures.append(exc)

    try:
        threads = [
            threading.Thread(target=client_session, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert all(not t.is_alive() for t in threads)
        assert len(results) + len(failures) == 8
        assert len(results) >= 4, f"too many sheds: {len(failures)}"
        for kind, rows in results:
            assert rows == expected[kind], f"{kind} result diverged over the wire"

        # governor admission counters are visible in the /metrics scrape
        base = f"http://{server.host}:{server.http_port}"
        scrape = urllib.request.urlopen(f"{base}/metrics", timeout=10).read().decode()
        assert "repro_admission_admitted_total" in scrape
        assert "repro_server_queries_total" in scrape
        assert "repro_server_connections_opened_total" in scrape
        assert "repro_server_request_seconds_count" in scrape
    finally:
        server.stop()

    # zero leaked governor slots after every client disconnected
    snap = engine.governor.snapshot()
    assert snap["active"] == 0
    assert snap["sessions"] == {}
    assert engine.metrics.gauge("server_active_connections") == 0
    assert engine.metrics.counter("server_connections_opened") == engine.metrics.counter(
        "server_connections_closed"
    )


# ---------------------------------------------------------------------------
# serve --load round-trip on a persisted TPC-H catalog
# ---------------------------------------------------------------------------


def test_serve_load_round_trips_tpch_q1(tmp_path):
    data_dir = str(tmp_path / "tpch")
    save_catalog(generate_tpch(scale_factor=0.01), data_dir)
    q1 = TPCH_QUERIES["Q1"]
    expected = LevelHeadedEngine(load_catalog(data_dir)).query(q1)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--load", data_dir, "--port", "0", "--max-concurrency", "4",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        assert "serving" in banner, f"unexpected banner: {banner!r}"
        port = int(banner.strip().rsplit(":", 1)[-1])
        with connect("127.0.0.1", port) as client:
            served = client.query(q1)
        assert served.names == expected.names
        assert served.to_rows() == expected.to_rows()  # byte-identical rows
        for name in expected.names:
            local_dtype = expected.columns[name].dtype
            if local_dtype.kind in "iufb":
                assert served.columns[name].dtype == local_dtype
            else:  # strings travel as JSON and come back as object arrays
                assert served.columns[name].dtype.kind in "OU"
    finally:
        proc.send_signal(2)
        assert proc.wait(timeout=30) == 0
