"""Prepared statements, parameter binding, and the versioned plan cache."""

import math
import warnings

import numpy as np
import pytest

import repro
from repro import (
    BindError,
    EngineConfig,
    LevelHeadedEngine,
    ParseError,
    PlanCache,
    PreparedStatement,
    Schema,
    Table,
    UnsupportedQueryError,
    annotation,
    key,
)

from tests.conftest import make_matrix_catalog, make_mini_tpch


Q_QTY = (
    "SELECT sum(l_extendedprice * l_discount) AS revenue "
    "FROM lineitem WHERE l_quantity < {}"
)

Q_JOIN = (
    "SELECT c_custkey, sum(o_totalprice) AS t "
    "FROM customer, orders WHERE c_custkey = o_custkey "
    "AND o_totalprice > {} GROUP BY c_custkey"
)


# ---------------------------------------------------------------------------
# prepared-statement round trips
# ---------------------------------------------------------------------------


def test_positional_param_matches_inline(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    inline = engine.query(Q_QTY.format("7")).single_value()
    stmt = engine.prepare(Q_QTY.format("?"))
    assert [s.type_hint for s in stmt.param_slots] == ["number"]
    assert stmt.execute([7]).single_value() == pytest.approx(inline)
    # executing through __call__ works too
    assert stmt([7]).single_value() == pytest.approx(inline)


def test_positional_param_in_join_query(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    inline = engine.query(Q_JOIN.format("125")).sorted_rows()
    assert inline  # the fixture makes this selective but non-empty
    stmt = engine.prepare(Q_JOIN.format("?"))
    assert stmt.execute([125]).sorted_rows() == inline
    # a different value produces a different (correct) result
    assert stmt.execute([0]).sorted_rows() == engine.query(Q_JOIN.format("0")).sorted_rows()


def test_named_date_params_match_inline(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    inline = engine.query(
        "SELECT count(*) AS n FROM orders "
        "WHERE o_orderdate >= date '1994-01-01' AND o_orderdate < date '1995-01-01'"
    ).single_value()
    stmt = engine.prepare(
        "SELECT count(*) AS n FROM orders "
        "WHERE o_orderdate >= :lo AND o_orderdate < :hi"
    )
    assert sorted(s.name for s in stmt.param_slots) == ["hi", "lo"]
    assert all(s.type_hint == "date" for s in stmt.param_slots)
    got = stmt.execute({"lo": "1994-01-01", "hi": "1995-01-01"}).single_value()
    assert got == inline == 5


def test_string_param(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    stmt = engine.prepare(
        "SELECT sum(c_acctbal) AS b FROM customer WHERE c_name = ?"
    )
    assert stmt.param_slots[0].type_hint == "string"
    assert stmt.execute(["c3"]).single_value() == pytest.approx(40.0)
    assert stmt.execute(["c5"]).single_value() == pytest.approx(60.0)


def test_query_with_params_one_shot(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    inline = engine.query(Q_QTY.format("7")).single_value()
    assert engine.query(Q_QTY.format("?"), [7]).single_value() == pytest.approx(inline)
    got = engine.query(
        "SELECT count(*) AS n FROM orders WHERE o_orderdate >= :lo",
        {"lo": "1995-01-01"},
    ).single_value()
    assert got == 3


def test_explain_with_params(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    text = engine.explain(Q_JOIN.format("?"), [125], analyze=True)
    assert "plan cache:" in text
    assert "stats:" in text


# ---------------------------------------------------------------------------
# parameter validation
# ---------------------------------------------------------------------------


def test_param_count_and_type_errors(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    stmt = engine.prepare(Q_QTY.format("?"))
    with pytest.raises(BindError):
        stmt.execute()  # missing value
    with pytest.raises(BindError):
        stmt.execute([1, 2])  # too many
    with pytest.raises(BindError):
        stmt.execute(["seven"])  # number slot, string value
    with pytest.raises(BindError):
        stmt.execute({"q": 7})  # positional slot, mapping supplied


def test_named_param_errors(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    stmt = engine.prepare(
        "SELECT count(*) AS n FROM orders WHERE o_orderdate >= :lo"
    )
    with pytest.raises(BindError):
        stmt.execute({"nope": "1994-01-01"})
    with pytest.raises(BindError):
        stmt.execute({"lo": "not-a-date"})


def test_mixing_positional_and_named_rejected(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    with pytest.raises(ParseError):
        engine.prepare(
            "SELECT count(*) AS n FROM orders "
            "WHERE o_totalprice > ? AND o_orderdate >= :lo"
        )


def test_params_outside_where_rejected(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    with pytest.raises(UnsupportedQueryError):
        engine.prepare("SELECT c_custkey, c_acctbal + ? AS b FROM customer")


def test_placeholder_query_without_params_errors(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    with pytest.raises((BindError, UnsupportedQueryError)):
        engine.query(Q_QTY.format("?"))


# ---------------------------------------------------------------------------
# plan cache: hits, misses, normalization, eviction
# ---------------------------------------------------------------------------


def test_plan_cache_hit_miss_counters(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    cold = engine.query(sql, collect_stats=True)
    assert cold.stats.plan_cache_misses == 1
    assert cold.stats.plan_cache_hits == 0
    warm = engine.query(sql, collect_stats=True)
    assert warm.stats.plan_cache_hits == 1
    assert warm.stats.plan_cache_misses == 0
    assert warm.sorted_rows() == cold.sorted_rows()
    assert engine.plan_cache.stats.hits == 1
    assert engine.plan_cache.stats.misses == 1


def test_cache_key_is_whitespace_and_case_insensitive(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    engine.query("SELECT count(*) AS n FROM orders")
    warm = engine.query("select   COUNT(*)  as N\n from ORDERS", collect_stats=True)
    assert warm.stats.plan_cache_hits == 1


def test_cache_keys_on_config_fingerprint(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    engine.query(sql)
    other = engine.query(
        sql, config=EngineConfig(enable_attribute_ordering=False), collect_stats=True
    )
    assert other.stats.plan_cache_misses == 1  # different fingerprint, own entry
    assert len(engine.plan_cache) == 2


def test_cache_keys_on_param_values(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    stmt = engine.prepare(Q_QTY.format("?"))
    stmt.execute([7])
    stmt.execute([9])
    stmt.execute([7])
    assert engine.plan_cache.stats.misses == 2
    assert engine.plan_cache.stats.hits == 1
    assert stmt.recompiles == 0


def test_prepared_and_adhoc_share_the_cache(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    engine.prepare(sql)  # no placeholders: compiled (and cached) eagerly
    warm = engine.query(sql, collect_stats=True)
    assert warm.stats.plan_cache_hits == 1


def test_lru_eviction():
    cache_engine = LevelHeadedEngine(
        make_matrix_catalog(), plan_cache_capacity=2
    )
    sqls = [
        "SELECT sum(m.v) AS s FROM matrix m",
        "SELECT count(m.v) AS c FROM matrix m",
        "SELECT max(m.v) AS x FROM matrix m",
    ]
    for sql in sqls:
        cache_engine.query(sql)
    assert len(cache_engine.plan_cache) == 2
    assert cache_engine.plan_cache.stats.evictions == 1
    # the evicted (least recently used) first query misses again
    again = cache_engine.query(sqls[0], collect_stats=True)
    assert again.stats.plan_cache_misses == 1


def test_plan_cache_capacity_validation():
    with pytest.raises(ValueError):
        PlanCache(0)


# ---------------------------------------------------------------------------
# invalidation: catalog registrations bump domain versions
# ---------------------------------------------------------------------------


def _extra_supplier_table():
    return Table.from_columns(
        Schema(
            "supplier2",
            [
                key("s_suppkey", domain="suppkey"),
                key("s_nationkey", domain="nationkey"),
                annotation("s_acctbal"),
            ],
        ),
        s_suppkey=[90, 91],  # new suppkey values: extends + re-codes the domain
        s_nationkey=[0, 1],
        s_acctbal=[1.0, 2.0],
    )


def test_register_invalidates_cached_plan(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = (
        "SELECT sum(l_extendedprice) AS s FROM lineitem, supplier "
        "WHERE l_suppkey = s_suppkey"
    )
    before = engine.query(sql).single_value()
    assert engine.query(sql, collect_stats=True).stats.plan_cache_hits == 1
    engine.register_table(_extra_supplier_table())
    after = engine.query(sql, collect_stats=True)
    assert after.stats.plan_cache_invalidations == 1
    assert after.stats.plan_cache_hits == 0
    assert after.single_value() == pytest.approx(before)
    # and the recompiled plan is cached again
    assert engine.query(sql, collect_stats=True).stats.plan_cache_hits == 1


def test_prepared_statement_recompiles_after_invalidation(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    stmt = engine.prepare(
        "SELECT sum(l_extendedprice) AS s FROM lineitem, supplier "
        "WHERE l_suppkey = s_suppkey AND l_quantity < ?"
    )
    before = stmt.execute([9]).single_value()
    stmt.execute([9])
    assert stmt.recompiles == 0  # warm executions never recompile...
    assert stmt.is_current
    engine.register_table(_extra_supplier_table())
    assert not stmt.is_current  # ...until a registration re-codes a domain
    assert stmt.execute([9]).single_value() == pytest.approx(before)
    assert stmt.recompiles == 1
    assert stmt.is_current
    assert engine.plan_cache.stats.invalidations == 1


def test_recompiled_plan_sees_recoded_dictionary():
    catalog = make_matrix_catalog()
    engine = LevelHeadedEngine(catalog)
    sql = "SELECT m.i, sum(m.v) AS s FROM matrix m GROUP BY m.i"
    before = engine.query(sql).sorted_rows()
    # registering negative dim values shifts every existing code up
    engine.create_table(
        Schema("dim_extra", [key("d", domain="dim")]), d=[-5, -1]
    )
    after = engine.query(sql, collect_stats=True)
    assert after.stats.plan_cache_invalidations == 1
    assert after.sorted_rows() == before  # decoded values, not stale codes


# ---------------------------------------------------------------------------
# the redesigned query surface
# ---------------------------------------------------------------------------


def test_connect_constructor(mini_tpch):
    engine = repro.connect(catalog=mini_tpch, config=EngineConfig())
    assert isinstance(engine, LevelHeadedEngine)
    assert isinstance(engine.prepare("SELECT count(*) AS n FROM orders"), PreparedStatement)
    assert engine.query("SELECT count(*) AS n FROM orders").single_value() == 8


def test_stats_attribute_lifecycle(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    plain = engine.query("SELECT count(*) AS n FROM orders")
    assert plain.stats is None
    traced = engine.query("SELECT count(*) AS n FROM orders", collect_stats=True)
    assert traced.stats is not None
    assert traced.stats.plan_cache_hits == 1


def test_explain_json_format(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    doc = engine.explain(sql, analyze=True, format="json")
    assert doc["mode"] == "join"
    assert doc["result_rows"] == engine.query(sql).num_rows
    assert doc["plan_cache"]["outcome"] in ("miss", "hit")
    assert isinstance(doc["stats"], dict)
    assert doc["domain_versions"]  # join plans snapshot their key domains
    plain = engine.explain(sql, format="json")
    assert plain["stats"] is None and plain["result_rows"] is None
    with pytest.raises(ValueError):
        engine.explain(sql, format="yaml")


def test_explain_analyze_shows_cache_outcome(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    assert "plan cache: miss" in engine.explain(sql, analyze=True)
    assert "plan cache: hit" in engine.explain(sql, analyze=True)


def test_deprecated_shims_are_gone(mini_tpch):
    # the PR-1 compatibility shims were removed with the strategy-aware
    # API redesign: the replacements are explain(analyze=True),
    # execute(collect_stats=True), and the config= keyword
    engine = LevelHeadedEngine(mini_tpch)
    sql = Q_JOIN.format("125")
    assert not hasattr(engine, "explain_analyze")
    assert not hasattr(engine, "execute_with_stats")
    # positional config is now a plain params mis-use, not a shim
    with pytest.raises(Exception):
        engine.query(sql, EngineConfig(enable_attribute_ordering=False))


# ---------------------------------------------------------------------------
# decode fixes: zero-row aggregates and empty ORDER BY/LIMIT results
# ---------------------------------------------------------------------------


def test_zero_row_grand_aggregate_identities(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    row = engine.query(
        "SELECT count(*) AS n, sum(l_extendedprice) AS s, "
        "min(l_quantity) AS mn, max(l_quantity) AS mx "
        "FROM lineitem WHERE l_quantity > 1000"
    ).to_rows()[0]
    n, s, mn, mx = row
    assert n == 0 and isinstance(n, int)
    assert s == 0.0
    assert math.isnan(mn) and math.isnan(mx)


def test_zero_row_join_aggregate_identities(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    row = engine.query(
        "SELECT count(*) AS n, sum(l_extendedprice) AS s "
        "FROM lineitem, supplier WHERE l_suppkey = s_suppkey "
        "AND s_acctbal > 99999"
    ).to_rows()[0]
    assert row[0] == 0 and isinstance(row[0], int)
    assert row[1] == 0.0


def test_order_by_limit_on_empty_result(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT c_custkey, sum(o_totalprice) AS t "
        "FROM customer, orders WHERE c_custkey = o_custkey "
        "AND o_totalprice > 99999 "
        "GROUP BY c_custkey ORDER BY t DESC LIMIT 5"
    )
    assert result.num_rows == 0
    assert result.to_rows() == []


def test_plan_reexecution_is_deterministic(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    plan = engine.compile(Q_JOIN.format("125"))
    first = engine.execute(plan).sorted_rows()
    for _ in range(3):
        assert engine.execute(plan).sorted_rows() == first


def test_import_is_deprecation_clean():
    # importing the package itself must not trip -W error::DeprecationWarning
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import importlib

        import repro as package

        importlib.reload(package)
