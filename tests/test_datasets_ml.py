"""Tests for the TPC-H generator, matrix profiles, voters, and ML stack.

The heavyweight integration test here is engine agreement: every
benchmark TPC-H query must produce identical results from LevelHeaded
and the pairwise baseline on generated data.
"""

import numpy as np
import pytest

from repro import LevelHeadedEngine
from repro.baselines import PairwiseEngine
from repro.datasets import (
    CATEGORICAL_FEATURES,
    NUMERIC_FEATURES,
    TPCH_QUERIES,
    dense_matrix,
    generate_tpch,
    generate_voters,
    sparse_profile,
    table_sizes,
)
from repro.datasets.matrices import PROFILES
from repro.datasets.tpch import NATIONS, REGIONS, partsupp_suppliers
from repro.ml import (
    LogisticRegression,
    OneHotEncoder,
    build_feature_matrix,
    run_all_pipelines,
    run_levelheaded_pipeline,
    sigmoid,
    standardize,
)

SF = 0.002  # tiny but non-trivial: ~3k orders, ~12k lineitems


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale_factor=SF, seed=7)


# ---------------------------------------------------------------------------
# TPC-H generator
# ---------------------------------------------------------------------------


def test_table_sizes_scale_linearly():
    small, large = table_sizes(0.01), table_sizes(0.1)
    assert large["orders"] == 10 * small["orders"]
    assert small["nation"] == 25 and small["region"] == 5
    assert small["partsupp"] == 4 * small["part"]


def test_generator_row_counts(tpch):
    sizes = table_sizes(SF)
    assert tpch.table("orders").num_rows == sizes["orders"]
    assert tpch.table("customer").num_rows == sizes["customer"]
    assert tpch.table("nation").num_rows == 25
    lineitem = tpch.table("lineitem")
    assert 1 * sizes["orders"] <= lineitem.num_rows <= 7 * sizes["orders"]


def test_generator_referential_integrity(tpch):
    lineitem = tpch.table("lineitem")
    orders = tpch.table("orders")
    assert set(np.unique(lineitem.column("l_orderkey"))) <= set(
        orders.column("o_orderkey").tolist()
    )
    # dbgen invariant: every (l_partkey, l_suppkey) exists in partsupp
    partsupp = tpch.table("partsupp")
    ps_pairs = set(
        zip(partsupp.column("ps_partkey").tolist(), partsupp.column("ps_suppkey").tolist())
    )
    li_pairs = set(
        zip(lineitem.column("l_partkey").tolist(), lineitem.column("l_suppkey").tolist())
    )
    assert li_pairs <= ps_pairs


def test_generator_partsupp_suppliers_distinct():
    parts = np.repeat(np.arange(10), 4)
    slots = np.tile(np.arange(4), 10)
    supps = partsupp_suppliers(parts, slots, 40)
    for p in range(10):
        assert len(set(supps[parts == p].tolist())) == 4


def test_generator_value_domains(tpch):
    assert list(tpch.table("region").column("r_name")) == REGIONS
    assert list(tpch.table("nation").column("n_name")) == [n for n, _ in NATIONS]
    discounts = tpch.table("lineitem").column("l_discount")
    assert discounts.min() >= 0.0 and discounts.max() <= 0.10
    flags = set(np.unique(tpch.table("lineitem").column("l_returnflag")).tolist())
    assert flags <= {"R", "A", "N"}


def test_generator_selectivities_nonzero(tpch):
    part = tpch.table("part")
    green = np.char.find(part.column("p_name"), "green") >= 0
    assert green.any()
    econ = part.column("p_type") == "ECONOMY ANODIZED STEEL"
    assert econ.any()
    segment = tpch.table("customer").column("c_mktsegment") == "BUILDING"
    assert segment.any()


def test_generator_deterministic():
    a = generate_tpch(scale_factor=0.001, seed=42)
    b = generate_tpch(scale_factor=0.001, seed=42)
    assert np.array_equal(
        a.table("lineitem").column("l_extendedprice"),
        b.table("lineitem").column("l_extendedprice"),
    )


# ---------------------------------------------------------------------------
# the big one: every TPC-H benchmark query agrees across engines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", list(TPCH_QUERIES))
def test_tpch_queries_agree_across_engines(tpch, name):
    sql = TPCH_QUERIES[name]
    lh_rows = LevelHeadedEngine(tpch).query(sql).sorted_rows()
    pw_rows = PairwiseEngine(tpch).query(sql).sorted_rows()
    assert len(lh_rows) > 0, f"{name} returned no rows at SF {SF}"
    assert len(lh_rows) == len(pw_rows)
    for a, b in zip(lh_rows, pw_rows):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-7)


# ---------------------------------------------------------------------------
# matrix profiles
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", list(PROFILES))
def test_sparse_profiles_shape(name):
    (rows, cols, vals), n = sparse_profile(name, scale=0.25, seed=1)
    assert rows.size == cols.size == vals.size > n  # more than the diagonal
    assert rows.max() < n and cols.max() < n
    per_row = rows.size / n
    assert 2 <= per_row <= PROFILES[name].nnz_per_row + 1


def test_kkt_profile_symmetric():
    (rows, cols, _vals), n = sparse_profile("nlp240", scale=0.2, seed=2)
    entries = set(zip(rows.tolist(), cols.tolist()))
    assert all((c, r) in entries for r, c in entries)


def test_dense_matrix_sizes():
    assert dense_matrix("8192", scale=1.0).shape == (128, 128)
    assert dense_matrix("16384", scale=0.5).shape == (128, 128)


# ---------------------------------------------------------------------------
# ML: encoding and logistic regression
# ---------------------------------------------------------------------------


def test_one_hot_encoder_roundtrip():
    enc = OneHotEncoder().fit({"color": np.array(["r", "g", "b", "g"])})
    out = enc.transform({"color": np.array(["g", "r"])})
    assert out.shape == (2, 3)
    assert out.sum() == 2
    # order-preserving categories: b, g, r
    assert out[0, 1] == 1 and out[1, 2] == 1


def test_one_hot_unseen_value_encodes_to_zero():
    enc = OneHotEncoder().fit({"c": np.array(["a", "b"])})
    out = enc.transform({"c": np.array(["z"])})
    assert out.sum() == 0


def test_one_hot_unfitted_raises():
    with pytest.raises(ValueError):
        OneHotEncoder().transform({"c": np.array(["a"])})


def test_standardize():
    out = standardize(np.array([1.0, 2.0, 3.0]))
    assert out.mean() == pytest.approx(0.0)
    assert out.std() == pytest.approx(1.0)
    assert np.all(standardize(np.ones(5)) == 0)


def test_build_feature_matrix_width():
    columns = {
        "cat": np.array(["a", "b", "a"]),
        "num": np.array([1.0, 2.0, 3.0]),
    }
    features, enc = build_feature_matrix(columns, ["cat"], ["num"])
    assert features.shape == (3, 2 + 1 + 1)  # 2 categories + numeric + bias
    assert np.all(features[:, -1] == 1.0)


def test_sigmoid_stable():
    z = np.array([-1000.0, 0.0, 1000.0])
    out = sigmoid(z)
    assert out[0] == pytest.approx(0.0)
    assert out[1] == pytest.approx(0.5)
    assert out[2] == pytest.approx(1.0)


def test_logistic_regression_learns_separable():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(400, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    features = np.hstack([x, np.ones((400, 1))])
    model = LogisticRegression(learning_rate=1.0, iterations=50).fit(features, y)
    assert model.accuracy(features, y) > 0.95
    assert model.loss_history[-1] < model.loss_history[0]


def test_logistic_regression_validation():
    with pytest.raises(ValueError):
        LogisticRegression(iterations=0)
    model = LogisticRegression()
    with pytest.raises(ValueError):
        model.fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        model.predict(np.zeros((1, 2)))


# ---------------------------------------------------------------------------
# voters + pipelines
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def voters():
    return generate_voters(n_voters=4000, n_precincts=40, seed=9)


def test_voter_generator_shape(voters):
    assert voters.table("voters").num_rows == 4000
    assert voters.table("precincts").num_rows == 40
    voted = voters.table("voters").column("v_voted")
    assert 0.1 < voted.mean() < 0.95


def test_levelheaded_pipeline_trains(voters):
    result = run_levelheaded_pipeline(voters, iterations=5)
    assert result.n_rows > 0
    assert result.accuracy > 0.55  # better than chance on the planted signal
    assert result.total_seconds > 0


def test_all_pipelines_agree_on_rows_and_learn(voters):
    results = run_all_pipelines(voters, iterations=5)
    assert {r.engine for r in results} == {
        "levelheaded", "monetdb-sklearn", "pandas-sklearn", "spark",
    }
    row_counts = {r.n_rows for r in results}
    assert len(row_counts) == 1  # every pipeline sees the same feature set
    for r in results:
        assert r.accuracy > 0.55
