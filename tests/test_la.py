"""Tests for the LA subsystem: matrices, CSR conversion, BLAS, kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse as sp

from repro import EngineConfig, LevelHeadedEngine, SchemaError
from repro.la import (
    blas,
    coo_to_csr,
    csr_matmul,
    csr_matvec,
    csr_to_dense,
    ensure_dimension,
    frobenius_norm_sql,
    matmul_sql,
    matvec_sql,
    random_sparse_coo,
    run_matmul,
    run_matvec,
    to_dense,
    vector_dot_sql,
)
from repro.errors import ExecutionError

# ---------------------------------------------------------------------------
# matrix registration
# ---------------------------------------------------------------------------


def test_register_coo_and_to_dense():
    engine = LevelHeadedEngine()
    rows, cols, vals = [0, 1, 3], [2, 0, 1], [1.5, 2.5, 3.5]
    table = engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=4).table
    dense = to_dense(table, 4)
    assert dense[0, 2] == 1.5 and dense[3, 1] == 3.5
    assert dense.sum() == pytest.approx(7.5)


def test_register_coo_bounds_check():
    engine = LevelHeadedEngine()
    with pytest.raises(SchemaError):
        engine.register_matrix("m", rows=[5], cols=[0], values=[1.0], n=4)


def test_register_dense_requires_square():
    engine = LevelHeadedEngine()
    with pytest.raises(SchemaError):
        engine.register_matrix("m", np.zeros((2, 3)))


def test_dimension_anchor_makes_encoding_identity():
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=[3], cols=[1], values=[1.0], n=8, domain="dim")
    assert engine.catalog.domain_size("dim") == 8
    ensure_dimension(engine.catalog, "dim", 8)  # idempotent


# ---------------------------------------------------------------------------
# CSR conversion (the Table IV substrate)
# ---------------------------------------------------------------------------


def test_coo_to_csr_matches_scipy():
    rng = np.random.default_rng(7)
    rows, cols, vals = random_sparse_coo(50, 300, rng)
    ours = coo_to_csr(rows, cols, vals, (50, 50))
    theirs = sp.coo_matrix((vals, (rows, cols)), shape=(50, 50)).tocsr()
    assert np.array_equal(ours.indptr, theirs.indptr)
    assert np.array_equal(ours.indices, theirs.indices)
    assert np.allclose(ours.data, theirs.data)


def test_coo_to_csr_sums_duplicates():
    csr = coo_to_csr([0, 0], [1, 1], [2.0, 3.0], (2, 2))
    assert csr.nnz == 1
    assert csr.data[0] == pytest.approx(5.0)


def test_coo_to_csr_out_of_bounds():
    with pytest.raises(SchemaError):
        coo_to_csr([5], [0], [1.0], (2, 2))


def test_csr_matvec_matches_scipy():
    rng = np.random.default_rng(8)
    rows, cols, vals = random_sparse_coo(40, 200, rng)
    x = rng.normal(size=40)
    ours = csr_matvec(coo_to_csr(rows, cols, vals, (40, 40)), x)
    theirs = sp.coo_matrix((vals, (rows, cols)), shape=(40, 40)).tocsr() @ x
    assert np.allclose(ours, theirs)


def test_csr_matmul_matches_scipy():
    rng = np.random.default_rng(9)
    rows, cols, vals = random_sparse_coo(30, 150, rng)
    csr = coo_to_csr(rows, cols, vals, (30, 30))
    ours = csr_to_dense(csr_matmul(csr, csr))
    theirs = (
        sp.coo_matrix((vals, (rows, cols)), shape=(30, 30)).tocsr() ** 2
    ).toarray()
    assert np.allclose(ours, theirs)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(0, 9), st.floats(-5, 5, allow_nan=False)
        ),
        max_size=40,
    )
)
def test_property_csr_roundtrip(entries):
    rows = np.array([e[0] for e in entries], dtype=np.int64)
    cols = np.array([e[1] for e in entries], dtype=np.int64)
    vals = np.array([e[2] for e in entries])
    csr = coo_to_csr(rows, cols, vals, (10, 10))
    dense = np.zeros((10, 10))
    np.add.at(dense, (rows, cols), vals)
    assert np.allclose(csr_to_dense(csr), dense)


# ---------------------------------------------------------------------------
# BLAS substrate
# ---------------------------------------------------------------------------


def test_blas_gemm_gemv_dot():
    rng = np.random.default_rng(10)
    a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
    x = rng.normal(size=4)
    assert np.allclose(blas.gemm(a, b), a @ b)
    assert np.allclose(blas.gemv(a, x), a @ x)
    assert blas.dot(x, x) == pytest.approx(float(x @ x))


def test_blas_shape_errors():
    with pytest.raises(ExecutionError):
        blas.gemm(np.zeros((2, 3)), np.zeros((2, 3)))
    with pytest.raises(ExecutionError):
        blas.gemv(np.zeros((2, 3)), np.zeros(2))
    with pytest.raises(ExecutionError):
        blas.dot(np.zeros(2), np.zeros(3))


def test_blas_contract_dispatch():
    rng = np.random.default_rng(11)
    a, b = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
    x = rng.normal(size=3)
    assert np.allclose(blas.contract("ab,bc->ac", [a, b]), a @ b)
    assert np.allclose(blas.contract("ab,b->a", [a, x]), a @ x)
    assert np.allclose(blas.contract("a,a->", [x, x]), x @ x)
    # generic einsum fallback
    assert np.allclose(blas.contract("ab,cb->ac", [a, b]), a @ b.T)


def test_blas_contract_operand_count_mismatch():
    with pytest.raises(ExecutionError):
        blas.contract("ab,bc->ac", [np.zeros((2, 2))])


# ---------------------------------------------------------------------------
# kernels end to end
# ---------------------------------------------------------------------------


def _sparse_engine(n=12, nnz=60, seed=3):
    rng = np.random.default_rng(seed)
    rows, cols, vals = random_sparse_coo(n, nnz, rng)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    x = rng.normal(size=n)
    engine.register_vector("x", x, domain="dim")
    dense = np.zeros((n, n))
    dense[rows, cols] = vals
    return engine, dense, x, n


def test_smv_kernel():
    engine, dense, x, n = _sparse_engine()
    result = run_matvec(engine)
    assert np.allclose(result.to_vector(n), dense @ x)


def test_smm_kernel():
    engine, dense, _x, n = _sparse_engine()
    result = run_matmul(engine)
    assert np.allclose(result.to_dense(n), dense @ dense)


def test_dmv_dmm_kernels_use_blas():
    n = 8
    rng = np.random.default_rng(4)
    dense = rng.normal(size=(n, n))
    x = rng.normal(size=n)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", dense, domain="dim")
    engine.register_vector("x", x, domain="dim")
    assert engine.compile(matmul_sql("m")).mode == "blas"
    assert engine.compile(matvec_sql("m", "x")).mode == "blas"
    assert np.allclose(run_matmul(engine).to_dense(n), dense @ dense)
    assert np.allclose(run_matvec(engine).to_vector(n), dense @ x)


def test_frobenius_and_dot_sql():
    engine, dense, x, n = _sparse_engine()
    engine.register_vector("y", x * 2.0, domain="dim")
    norm2 = engine.query(frobenius_norm_sql("m")).single_value()
    assert norm2 == pytest.approx(float((dense ** 2).sum()))
    dot = engine.query(vector_dot_sql("x", "y")).single_value()
    assert dot == pytest.approx(float(x @ (2 * x)))


def test_smm_agrees_with_csr_substrate():
    engine, dense, _x, n = _sparse_engine(n=10, nnz=40, seed=5)
    table = engine.table("m")
    csr = coo_to_csr(table.column("i"), table.column("j"), table.column("v"), (n, n))
    via_engine = run_matmul(engine).to_dense(n)
    via_csr = csr_to_dense(csr_matmul(csr, csr))
    assert np.allclose(via_engine, via_csr)
