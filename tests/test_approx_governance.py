"""Degrade-to-approximate: governor, observability, wire, topologies.

Pins the PR-10 governance contract:

* an overloaded query whose policy is ``"allow"`` and which a sample
  covers is answered approximately (``mode="degraded"``) instead of
  raising :class:`RetryableAdmissionError` -- and the degrade is *not*
  double-booked as a rejection in the metrics;
* ``"never"`` keeps the pre-approx behavior exactly (typed
  ``queue_full`` rejection), as does ``"allow"`` without any sample;
* the whole episode correlates under one ``query_id`` across the
  flight recorder, the JSONL query log, and the result -- and every
  flight/log event (rejections and kills included) carries the
  ``annotations`` block uniformly;
* the tcp surface ships ``approx`` on query frames and metadata on the
  ``done`` frame; the shard surface rejects ``approx`` with
  :class:`UnsupportedOnTopology`.
"""

import io
import json

import pytest

import repro
from repro import LevelHeadedEngine
from repro.client import ReproClient
from repro.core.governor import Governor
from repro.errors import ReproError, RetryableAdmissionError, UnsupportedOnTopology
from repro.server import ReproServer

from .conftest import make_mini_tpch

SQL = (
    "SELECT l_suppkey, SUM(l_extendedprice) AS revenue, COUNT(*) AS lines "
    "FROM lineitem GROUP BY l_suppkey"
)


def _overloaded_engine(**connect_kwargs):
    """An engine whose single admission slot is already held."""
    governor = Governor(max_concurrency=1, max_queue=0)
    engine = repro.connect(
        catalog=make_mini_tpch(), governor=governor, **connect_kwargs
    )
    held = governor.admit(cached=True, token=None)
    return engine, governor, held


# ---------------------------------------------------------------------------
# the degrade rung
# ---------------------------------------------------------------------------


def test_overloaded_allow_query_degrades_with_error_bars():
    engine, governor, held = _overloaded_engine(approx="allow")
    engine.create_sample("lineitem", 0.5, seed=1)
    sink = io.StringIO()
    engine.enable_query_log(sink)
    try:
        result = engine.query(SQL)
    finally:
        governor.release(held)
    assert result.approx is not None
    assert result.approx["mode"] == "degraded"
    assert result.approx["fraction"] == 0.5
    errors = {
        name: info["error"]
        for name, info in result.approx["columns"].items()
        if info["scalable"]
    }
    assert errors and all(err is not None for err in errors.values())
    # one query_id ties result, flight entry, and JSONL event together
    entry = engine.flight.snapshot(n=1)[0]
    assert entry["query_id"] == result.query_id
    assert entry["outcome"] == "ok"
    assert entry["annotations"]["approx"]["mode"] == "degraded"
    assert entry["annotations"]["approx"]["errors"] == {
        name: info["error"] for name, info in result.approx["columns"].items()
    }
    event = json.loads(sink.getvalue().strip().splitlines()[-1])
    assert event["query_id"] == result.query_id
    assert event["annotations"]["approx"]["mode"] == "degraded"
    # a degrade is not a rejection: it has its own counter
    assert engine.metrics.counter("degraded_to_approx") == 1
    assert engine.metrics.counter("admission_rejected") == 0
    prom = engine.metrics.to_prometheus()
    assert "repro_degraded_to_approx_total 1" in prom
    assert "repro_approx_queries_total 1" in prom


def test_never_policy_still_rejects_queue_full():
    engine, governor, held = _overloaded_engine()  # default approx="never"
    engine.create_sample("lineitem", 0.5, seed=1)
    try:
        with pytest.raises(RetryableAdmissionError) as info:
            engine.query(SQL)
    finally:
        governor.release(held)
    assert info.value.cause == "queue_full"
    assert engine.metrics.counter("admission_rejected") == 1
    assert engine.metrics.counter("degraded_to_approx") == 0
    # the rejection leaves a correlated flight entry too
    entry = engine.flight.snapshot(outcome="rejected")[0]
    assert entry["query_id"] == getattr(info.value, "query_id", None)


def test_allow_without_sample_coverage_still_rejects():
    engine, governor, held = _overloaded_engine(approx="allow")
    try:
        with pytest.raises(RetryableAdmissionError) as info:
            engine.query(SQL)
    finally:
        governor.release(held)
    assert info.value.cause == "queue_full"
    # counted as a rejection exactly once, never as a degrade
    assert engine.metrics.counter("admission_rejected") == 1
    assert engine.metrics.counter("degraded_to_approx") == 0


def test_uncontended_allow_runs_exact():
    engine = repro.connect(
        catalog=make_mini_tpch(), max_concurrency=4, approx="allow"
    )
    engine.create_sample("lineitem", 0.5, seed=1)
    result = engine.query(SQL)
    assert result.approx is None  # no overload, no degrade


# ---------------------------------------------------------------------------
# uniform annotations on non-ok outcomes
# ---------------------------------------------------------------------------


def test_rejected_and_killed_events_carry_annotations_uniformly():
    engine, governor, held = _overloaded_engine()
    try:
        with pytest.raises(RetryableAdmissionError):
            engine.query(SQL)
    finally:
        governor.release(held)
    rejected = engine.flight.snapshot(outcome="rejected")[0]
    assert rejected["annotations"] == {
        "strategy": [],
        "feedback": {"q_error_max": None, "drifted": False},
    }
    # a killed_query log event carries the block too, empty when unused
    from repro.obs.export import QueryLog

    sink = io.StringIO()
    QueryLog(sink).record(
        sql="q", mode="join", cache_outcome="hit", compile_seconds=None,
        execute_seconds=0.5, rows=0, outcome="timeout", plan_text="p",
    )
    killed = json.loads(sink.getvalue())
    assert killed["event"] == "killed_query"
    assert killed["annotations"] == {}  # present even when empty
    # and a real engine-level kill records an approx-free flight block
    with pytest.raises(repro.QueryTimeoutError):
        engine.query(
            "SELECT count(*) AS n FROM lineitem l1, lineitem l2, lineitem l3 "
            "WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey",
            timeout_ms=0.0001,
        )
    timeout_entry = engine.flight.snapshot(outcome="timeout")[0]
    assert "approx" not in timeout_entry["annotations"]
    assert "feedback" in timeout_entry["annotations"]


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


@pytest.fixture()
def served_engine():
    engine = repro.connect(catalog=make_mini_tpch(), max_concurrency=4)
    engine.create_sample("lineitem", 1.0, seed=0)
    server = ReproServer(engine, port=0, http_port=0)
    server.start()
    yield engine, server
    server.stop()


def test_wire_query_carries_approx_metadata(served_engine):
    engine, server = served_engine
    with ReproClient(server.host, server.port) as client:
        exact = client.query(SQL)
        assert exact.approx is None
        approx = client.query(SQL, approx=True)
        assert approx.approx is not None
        assert approx.approx["mode"] == "forced"
        assert approx.approx["fraction"] == 1.0
        # fraction=1.0: the wire answer matches exact bit-for-bit
        assert approx.sorted_rows() == exact.sorted_rows()


def test_wire_session_default_approx(served_engine):
    engine, server = served_engine
    with ReproClient(server.host, server.port) as client:
        client.default_approx = "force"
        r = client.query(SQL)
        assert r.approx is not None and r.approx["mode"] == "forced"
        assert client.query(SQL, approx=False).approx is None  # per-call wins


def test_wire_prepared_execute_approx(served_engine):
    engine, server = served_engine
    with ReproClient(server.host, server.port) as client:
        stmt = client.prepare(SQL)
        assert stmt.execute().approx is None
        r = stmt.execute(approx=True)
        assert r.approx is not None and r.approx["fraction"] == 1.0


# ---------------------------------------------------------------------------
# topologies
# ---------------------------------------------------------------------------


def test_shard_surface_rejects_approx():
    with pytest.raises(UnsupportedOnTopology) as info:
        repro.connect("shard://local", catalog=make_mini_tpch(), approx="allow")
    assert info.value.option == "approx" and info.value.topology == "shard"
    # the DSN spelling is rejected at parse time
    with pytest.raises(ReproError):
        repro.connect("shard://local?approx=force", catalog=make_mini_tpch())
