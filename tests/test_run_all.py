"""Tests for the standalone experiment runner (micro scales)."""

import pytest

from repro.bench.run_all import main, run_application, run_bi, run_la


def test_run_bi_renders_all_queries():
    text = run_bi(scale_factor=0.0005, repeats=1, timeout=60, budget=1 << 29)
    for query in ("Q1", "Q3", "Q5", "Q6", "Q8", "Q9", "Q10"):
        assert query in text
    assert "levelheaded" in text and "baseline" in text


def test_run_la_renders_all_kernels():
    text = run_la(matrix_scale=0.1, dense_scale=0.3, repeats=1, timeout=60, budget=1 << 29)
    for kernel in ("SMV", "SMM", "DMV", "DMM"):
        assert kernel in text
    assert "mkl*" in text


def test_run_application_renders_pipelines():
    text = run_application(n_voters=1500, iterations=2)
    for engine in ("levelheaded", "monetdb-sklearn", "pandas-sklearn", "spark"):
        assert engine in text
    assert "accuracy" in text


@pytest.mark.parametrize("flag", [["--quick", "--sf", "0.0005", "--matrix-scale",
                                   "0.1", "--voters", "1500"]])
def test_main_quick(flag, capsys):
    assert main(flag) == 0
    out = capsys.readouterr().out
    assert "BI: TPC-H" in out and "LA: kernels" in out and "voter" in out
