"""Tests for hypergraphs, the AGM bound, GHDs, and SQL->AJAR translation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedQueryError
from repro.query import (
    GHD,
    GHDNode,
    Hyperedge,
    Hypergraph,
    MAX_MIN,
    MAX_PRODUCT,
    MIN_PLUS,
    SUM_PRODUCT,
    agm_bound,
    check_semiring_axioms,
    choose_ghd,
    enumerate_ghds,
    fractional_cover_number,
    single_node_ghd,
    translate,
)
from repro.sql import bind, parse

# ---------------------------------------------------------------------------
# hypergraph
# ---------------------------------------------------------------------------


def _triangle():
    edges = [
        Hyperedge("r", "r", ("a", "b"), 100),
        Hyperedge("s", "s", ("b", "c"), 100),
        Hyperedge("t", "t", ("a", "c"), 100),
    ]
    return Hypergraph(["a", "b", "c"], edges)


def test_hypergraph_edges_with():
    h = _triangle()
    assert {e.alias for e in h.edges_with("a")} == {"r", "t"}


def test_hypergraph_rejects_undeclared_vertex():
    with pytest.raises(ValueError):
        Hypergraph(["a"], [Hyperedge("r", "r", ("a", "b"))])


def test_hypergraph_components():
    h = Hypergraph(
        ["a", "b", "c", "d"],
        [
            Hyperedge("r", "r", ("a", "b")),
            Hyperedge("s", "s", ("b",)),
            Hyperedge("t", "t", ("c", "d")),
        ],
    )
    comps = h.connected_components()
    sizes = sorted(len(c) for c in comps)
    assert sizes == [1, 2]


def test_hypergraph_induced():
    h = _triangle()
    sub = h.induced({"a", "b"})
    assert [e.alias for e in sub.edges] == ["r"]


# ---------------------------------------------------------------------------
# AGM / fractional covers
# ---------------------------------------------------------------------------


def test_triangle_fractional_cover_is_1_5():
    h = _triangle()
    assert fractional_cover_number(h.vertices, h.edges) == pytest.approx(1.5)


def test_triangle_agm_bound_is_n_to_1_5():
    h = _triangle()
    assert agm_bound(h) == pytest.approx(100 ** 1.5, rel=1e-6)


def test_path_cover_is_2():
    h = Hypergraph(
        ["a", "b", "c"],
        [Hyperedge("r", "r", ("a", "b"), 10), Hyperedge("s", "s", ("b", "c"), 10)],
    )
    assert fractional_cover_number(h.vertices, h.edges) == pytest.approx(2.0)


def test_agm_respects_cardinality_override():
    h = _triangle()
    bound = agm_bound(h, {"r": 4, "s": 9, "t": 16})
    assert bound == pytest.approx(math.sqrt(4 * 9 * 16), rel=1e-6)


# ---------------------------------------------------------------------------
# GHD structure and enumeration
# ---------------------------------------------------------------------------


def test_single_node_ghd_valid_and_width():
    h = _triangle()
    g = single_node_ghd(h)
    assert g.is_valid()
    assert g.num_nodes == 1
    assert g.depth == 0
    assert g.fhw() == pytest.approx(1.5)


def test_ghd_invalid_when_edge_uncovered():
    h = _triangle()
    root = GHDNode(bag=frozenset({"a", "b"}), edges=[h.edges[0]])
    g = GHD(root=root, hypergraph=h)
    assert not g.is_valid()


def test_ghd_running_intersection_violation_detected():
    h = Hypergraph(
        ["a", "b", "c"],
        [
            Hyperedge("r", "r", ("a", "b")),
            Hyperedge("s", "s", ("b", "c")),
            Hyperedge("t", "t", ("a",)),
        ],
    )
    # a appears in root and grandchild but not the middle node: invalid
    grandchild = GHDNode(bag=frozenset({"a"}), edges=[h.edges[2]])
    child = GHDNode(bag=frozenset({"b", "c"}), edges=[h.edges[1]], children=[grandchild])
    root = GHDNode(bag=frozenset({"a", "b"}), edges=[h.edges[0]], children=[child])
    g = GHD(root=root, hypergraph=h)
    assert not g.is_valid()


def test_enumerate_ghds_path_query_finds_two_node_plan():
    h = Hypergraph(
        ["a", "b", "c"],
        [Hyperedge("r", "r", ("a", "b"), 10), Hyperedge("s", "s", ("b", "c"), 10)],
    )
    ghds = enumerate_ghds(h)
    assert all(g.is_valid() for g in ghds)
    assert any(g.num_nodes == 2 for g in ghds)
    assert any(g.num_nodes == 1 for g in ghds)
    # acyclic: FHW-1 plans exist and get compressed by choose_ghd
    chosen = choose_ghd(h)
    assert chosen.num_nodes == 1
    assert chosen.fhw() == pytest.approx(1.0)


def test_choose_ghd_triangle_single_node():
    h = _triangle()
    chosen = choose_ghd(h)
    assert chosen.num_nodes == 1
    assert chosen.fhw() == pytest.approx(1.5)


def _q5_like_hypergraph():
    """TPC-H Q5's join structure (Figure 4)."""
    return Hypergraph(
        ["orderkey", "custkey", "suppkey", "nationkey", "regionkey"],
        [
            Hyperedge("customer", "customer", ("custkey", "nationkey"), 1_500_000),
            Hyperedge("orders", "orders", ("orderkey", "custkey"), 15_000_000),
            Hyperedge("lineitem", "lineitem", ("orderkey", "suppkey"), 60_000_000),
            Hyperedge("supplier", "supplier", ("suppkey", "nationkey"), 100_000),
            Hyperedge("nation", "nation", ("nationkey", "regionkey"), 25),
            Hyperedge(
                "region", "region", ("regionkey",), 5, has_equality_selection=True
            ),
        ],
    )


def test_q5_two_node_ghd_selected():
    h = _q5_like_hypergraph()
    required_root = {"orderkey", "custkey", "suppkey", "nationkey"}
    chosen = choose_ghd(h, required_root=required_root)
    assert chosen.is_valid()
    assert chosen.num_nodes == 2
    assert chosen.root.bag == frozenset({"orderkey", "custkey", "suppkey", "nationkey"})
    child = chosen.root.children[0]
    assert child.bag == frozenset({"nationkey", "regionkey"})
    # the equality-selected region edge sits in the deeper node
    assert any(e.alias == "region" for e in child.edges)
    assert chosen.fhw() == pytest.approx(2.0)


def test_q5_without_root_requirement_still_valid():
    h = _q5_like_hypergraph()
    chosen = choose_ghd(h)
    assert chosen.is_valid()
    assert chosen.fhw() <= 2.0 + 1e-9


def test_ghd_describe_smoke():
    h = _q5_like_hypergraph()
    text = choose_ghd(h, required_root={"orderkey"}).describe()
    assert "orderkey" in text


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=3, unique=True),
        min_size=1,
        max_size=5,
    )
)
def test_property_enumerated_ghds_are_valid(edge_vertex_lists):
    """Every enumerated decomposition of a random hypergraph is valid,
    and the chosen one never exceeds the trivial single-node width."""
    vertices = sorted({v for vs in edge_vertex_lists for v in vs})
    edges = [
        Hyperedge(f"e{i}", f"e{i}", tuple(vs), 10 + i)
        for i, vs in enumerate(edge_vertex_lists)
    ]
    h = Hypergraph(vertices, edges)
    ghds = enumerate_ghds(h)
    assert ghds, "enumeration must always produce at least the fallback"
    for ghd in ghds:
        assert ghd.is_valid()
    chosen = choose_ghd(h)
    assert chosen.is_valid()
    assert chosen.fhw() <= single_node_ghd(h).fhw() + 1e-9


# ---------------------------------------------------------------------------
# semirings
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", [SUM_PRODUCT, MIN_PLUS, MAX_PRODUCT, MAX_MIN])
def test_semiring_axioms_on_fixed_samples(semiring):
    assert check_semiring_axioms(semiring, [0.0, 1.0, 2.5, 7.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=4))
def test_semiring_axioms_property(samples):
    for semiring in (SUM_PRODUCT, MIN_PLUS, MAX_PRODUCT, MAX_MIN):
        assert check_semiring_axioms(semiring, samples)


# ---------------------------------------------------------------------------
# SQL -> AJAR translation (Rules 1-4)
# ---------------------------------------------------------------------------

Q5_SQL = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1995-01-01'
GROUP BY n_name
"""


def test_translate_q5_rule1_vertices(mini_tpch):
    compiled = translate(bind(parse(Q5_SQL), mini_tpch))
    vertex_names = set(compiled.hypergraph.vertices)
    assert vertex_names == {"custkey", "orderkey", "suppkey", "nationkey", "regionkey"}
    lineitem = compiled.hypergraph.edge_for_alias("lineitem")
    assert lineitem.vertices == ("orderkey", "suppkey")


def test_translate_q5_rule2_aggregation_order(mini_tpch):
    compiled = translate(bind(parse(Q5_SQL), mini_tpch))
    # no key vertex is output: everything is aggregated away
    assert compiled.output_vertices == []
    assert set(compiled.aggregation_order) == set(compiled.hypergraph.vertices)


def test_translate_q5_rule3_annotations(mini_tpch):
    compiled = translate(bind(parse(Q5_SQL), mini_tpch))
    # one sum aggregate with one term: a single lineitem slot
    assert len(compiled.aggregates) == 1
    agg = compiled.aggregates[0]
    assert agg.func == "sum"
    assert len(agg.terms) == 1
    term = agg.terms[0]
    assert set(term.factors) == {"lineitem"}
    slot = next(s for s in compiled.slots if s.id == term.factors["lineitem"])
    assert slot.combine == "sum"
    assert "l_extendedprice" in str(slot.expr)


def test_translate_q5_rule4_metadata(mini_tpch):
    compiled = translate(bind(parse(Q5_SQL), mini_tpch))
    assert len(compiled.group_annotations) == 1
    group = compiled.group_annotations[0]
    assert group.alias == "nation"
    assert "n_name" in str(group.expr)
    # n_name is determined by nationkey alone: only nationkey required at root
    assert "nationkey" in compiled.required_root
    assert "regionkey" not in compiled.required_root


def test_translate_q5_dup_alias_is_lineitem(mini_tpch):
    compiled = translate(bind(parse(Q5_SQL), mini_tpch))
    assert compiled.dup_aliases == {"lineitem"}


def test_translate_matmul(matrix_catalog):
    sql = (
        "SELECT m1.i, m2.j, sum(m1.v * m2.v) FROM matrix m1, matrix m2 "
        "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
    )
    compiled = translate(bind(parse(sql), matrix_catalog))
    assert len(compiled.hypergraph.vertices) == 3
    assert len(compiled.output_vertices) == 2
    assert len(compiled.aggregation_order) == 1
    agg = compiled.aggregates[0]
    assert len(agg.terms) == 1
    assert set(agg.terms[0].factors) == {"m1", "m2"}
    assert len(compiled.slots) == 2


def test_translate_scan_query(mini_tpch):
    sql = "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE l_quantity < 10"
    compiled = translate(bind(parse(sql), mini_tpch))
    assert compiled.is_scan
    assert compiled.scan_alias == "lineitem"
    assert compiled.hypergraph.vertices == []


def test_translate_avg_rewrites_to_sum_over_count(mini_tpch):
    sql = "SELECT avg(l_quantity) FROM lineitem"
    compiled = translate(bind(parse(sql), mini_tpch))
    funcs = sorted(a.func for a in compiled.aggregates)
    assert funcs == ["count", "sum"]
    name, expr = compiled.output_columns[0]
    assert "/" in str(expr) or "agg" in str(expr)


def test_translate_count_star(mini_tpch):
    sql = "SELECT count(*) FROM lineitem"
    compiled = translate(bind(parse(sql), mini_tpch))
    assert compiled.aggregates[0].func == "count"
    assert compiled.aggregates[0].terms[0].factors == {}


def test_translate_multi_relation_sum_decomposition(mini_tpch):
    # Q9-shaped: l_e*(1-l_d) - s_acctbal*l_quantity spans supplier+lineitem
    sql = """
    SELECT n_name, sum(l_extendedprice * (1 - l_discount) - s_acctbal * l_quantity)
    FROM lineitem, supplier, nation
    WHERE l_suppkey = s_suppkey AND s_nationkey = n_nationkey
    GROUP BY n_name
    """
    compiled = translate(bind(parse(sql), mini_tpch))
    agg = compiled.aggregates[0]
    assert agg.func == "sum"
    assert len(agg.terms) == 2
    first, second = agg.terms
    assert set(first.factors) == {"lineitem"}
    assert set(second.factors) == {"supplier", "lineitem"}
    assert second.coefficient == pytest.approx(-1.0)


def test_translate_min_max_single_relation(mini_tpch):
    sql = "SELECT min(l_quantity), max(l_extendedprice) FROM lineitem"
    compiled = translate(bind(parse(sql), mini_tpch))
    funcs = sorted(a.func for a in compiled.aggregates)
    assert funcs == ["max", "min"]
    assert all(a.slot is not None for a in compiled.aggregates)


def test_translate_minmax_multi_relation_rejected(mini_tpch):
    sql = """
    SELECT min(l_quantity * s_acctbal) FROM lineitem, supplier
    WHERE l_suppkey = s_suppkey
    """
    with pytest.raises(UnsupportedQueryError):
        translate(bind(parse(sql), mini_tpch))


def test_translate_aggregate_over_key_rejected(mini_tpch):
    sql = "SELECT sum(o_orderkey) FROM orders"
    with pytest.raises(UnsupportedQueryError):
        translate(bind(parse(sql), mini_tpch))


def test_translate_plain_select_gets_multiplicity(mini_tpch):
    sql = "SELECT c_custkey, c_name FROM customer, orders WHERE c_custkey = o_custkey"
    compiled = translate(bind(parse(sql), mini_tpch))
    assert compiled.row_multiplicity_aggregate is not None
    assert compiled.output_vertices == ["custkey"]
    assert len(compiled.group_annotations) == 1


def test_translate_underdetermined_group_annotation_rejected(mini_tpch):
    # o_totalprice is not determined by orders' only in-query key (custkey)
    sql = "SELECT c_name, o_totalprice FROM customer, orders WHERE c_custkey = o_custkey"
    with pytest.raises(UnsupportedQueryError):
        translate(bind(parse(sql), mini_tpch))


def test_translate_slot_dedup(mini_tpch):
    sql = (
        "SELECT sum(l_quantity), sum(l_quantity) AS again, sum(2 * l_quantity) FROM lineitem"
    )
    compiled = translate(bind(parse(sql), mini_tpch))
    # sum(l_quantity) appearing twice dedupes to one aggregate and one
    # slot; sum(2*l_quantity) is a distinct single-relation slot
    sums = [a for a in compiled.aggregates if a.func == "sum"]
    assert len(sums) == 2
    assert len(compiled.slots) == 2
    assert len({a.id for a in compiled.aggregates}) == 2


def test_translate_cross_product_rejected(mini_tpch):
    sql = "SELECT sum(c_acctbal * o_totalprice) FROM customer, orders"
    with pytest.raises(UnsupportedQueryError):
        translate(bind(parse(sql), mini_tpch))


def test_translate_division_by_relation_rejected(mini_tpch):
    sql = """
    SELECT sum(l_quantity / s_acctbal) FROM lineitem, supplier
    WHERE l_suppkey = s_suppkey
    """
    with pytest.raises(UnsupportedQueryError):
        translate(bind(parse(sql), mini_tpch))


def test_translate_group_by_computed_expression(mini_tpch):
    sql = """
    SELECT extract(year from o_orderdate) AS o_year, sum(o_totalprice)
    FROM orders GROUP BY extract(year from o_orderdate)
    """
    compiled = translate(bind(parse(sql), mini_tpch))
    assert len(compiled.group_annotations) == 1
    assert compiled.group_annotations[0].alias == "orders"
