"""Unit tests for execution internals: aggregator, parfor, plans."""

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.errors import OutOfMemoryBudgetError, PlanningError
from repro.xcution import GroupAggregator, chunk_slices
from repro.xcution.parfor import parfor_chunks
from tests.conftest import make_matrix_catalog, make_mini_tpch
from tests.test_engine import MATMUL_SQL, Q5_SQL

# ---------------------------------------------------------------------------
# GroupAggregator
# ---------------------------------------------------------------------------


def test_aggregator_sum_accumulates():
    agg = GroupAggregator(["sum", "count"], group_width=1)
    agg.add(("a",), np.array([1.0, 1.0]))
    agg.add(("a",), np.array([2.0, 1.0]))
    agg.add(("b",), np.array([5.0, 1.0]))
    keys, matrix = agg.result_arrays()
    got = {k: tuple(v) for k, v in zip(keys[0], matrix)}
    assert got["a"] == (3.0, 2.0)
    assert got["b"] == (5.0, 1.0)


def test_aggregator_min_max_combine():
    agg = GroupAggregator(["min", "max", "sum"], group_width=0)
    agg.add((), np.array([5.0, 5.0, 5.0]))
    agg.add((), np.array([3.0, 7.0, 1.0]))
    _keys, matrix = agg.result_arrays()
    assert list(matrix[0]) == [3.0, 7.0, 6.0]


def test_aggregator_batch_unique_and_dict_mix():
    agg = GroupAggregator(["sum"], group_width=2)
    agg.add((1, 10), np.array([1.0]))
    agg.add_batch_unique((2,), np.array([20, 21]), np.array([[2.0], [3.0]]))
    assert len(agg) == 3
    keys, matrix = agg.result_arrays()
    rows = sorted(zip(keys[0].tolist(), keys[1].tolist(), matrix[:, 0].tolist()))
    assert rows == [(1, 10, 1.0), (2, 20, 2.0), (2, 21, 3.0)]


def test_aggregator_empty_batch_ignored():
    agg = GroupAggregator(["sum"], group_width=1)
    agg.add_batch_unique((), np.empty(0, dtype=np.int64), np.zeros((0, 1)))
    assert len(agg) == 0
    keys, matrix = agg.result_arrays()
    assert matrix.shape == (0, 1)


def test_aggregator_merge():
    a = GroupAggregator(["sum"], group_width=1)
    b = GroupAggregator(["sum"], group_width=1)
    a.add((1,), np.array([1.0]))
    b.add((1,), np.array([2.0]))
    b.add_batch_unique((), np.array([9]), np.array([[4.0]]))
    a.merge(b)
    keys, matrix = a.result_arrays()
    rows = dict(zip(keys[0].tolist(), matrix[:, 0].tolist()))
    assert rows == {1: 3.0, 9: 4.0}


def test_aggregator_budget_enforced():
    import repro.xcution.aggregator as agg_mod

    agg = GroupAggregator(["sum"], memory_budget_bytes=1000, group_width=1)
    old = agg_mod._BUDGET_CHECK_EVERY
    agg_mod._BUDGET_CHECK_EVERY = 4
    agg._since_check = 0
    try:
        with pytest.raises(OutOfMemoryBudgetError):
            for i in range(1000):
                agg.add((i,), np.array([1.0]))
    finally:
        agg_mod._BUDGET_CHECK_EVERY = old


# ---------------------------------------------------------------------------
# parfor
# ---------------------------------------------------------------------------


def test_chunk_slices_cover_range():
    slices = chunk_slices(10, 3)
    covered = []
    for sl in slices:
        covered.extend(range(sl.start, sl.stop))
    assert covered == list(range(10))
    assert len(slices) == 3


def test_chunk_slices_more_chunks_than_items():
    assert len(chunk_slices(2, 8)) == 2
    assert chunk_slices(0, 4) == []


def test_parfor_chunks_results_in_order():
    out = list(parfor_chunks(lambda sl: (sl.start, sl.stop), 100, 4))
    assert out[0][0] == 0
    assert out[-1][1] == 100
    assert len(out) == 4


# ---------------------------------------------------------------------------
# physical plans
# ---------------------------------------------------------------------------


def test_plan_explain_contains_structure(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    text = engine.compile(Q5_SQL).explain()
    assert "mode: join" in text
    assert "relaxed" in text
    assert "GHD" in text


def test_forced_root_order_is_respected(matrix_catalog):
    engine = LevelHeadedEngine(matrix_catalog)
    probe = engine.compile(MATMUL_SQL)
    materialized = list(probe.root.materialized)
    aggregated = [v for v in probe.root.attrs if v not in materialized]
    order = (materialized[0], materialized[1], aggregated[0])
    forced = LevelHeadedEngine(
        matrix_catalog, config=EngineConfig(forced_root_order=order, enable_blas=False)
    )
    plan = forced.compile(MATMUL_SQL)
    assert plan.root.attrs == order
    assert not plan.root.relaxed
    # forced and free plans must agree on results
    assert forced.query(MATMUL_SQL).sorted_rows() == pytest.approx(
        LevelHeadedEngine(matrix_catalog).query(MATMUL_SQL).sorted_rows()
    )


def test_forced_root_order_relaxed_shape(matrix_catalog):
    engine = LevelHeadedEngine(matrix_catalog)
    probe = engine.compile(MATMUL_SQL)
    materialized = list(probe.root.materialized)
    aggregated = [v for v in probe.root.attrs if v not in materialized]
    order = (materialized[0], aggregated[0], materialized[1])
    plan = LevelHeadedEngine(
        matrix_catalog, config=EngineConfig(forced_root_order=order, enable_blas=False)
    ).compile(MATMUL_SQL)
    assert plan.root.relaxed


def test_forced_root_order_validation(matrix_catalog):
    with pytest.raises(PlanningError):
        LevelHeadedEngine(
            matrix_catalog, config=EngineConfig(forced_root_order=("x", "y", "z"))
        ).compile(MATMUL_SQL)


def test_forced_root_order_materialized_first_violation(matrix_catalog):
    engine = LevelHeadedEngine(matrix_catalog)
    probe = engine.compile(MATMUL_SQL)
    materialized = list(probe.root.materialized)
    aggregated = [v for v in probe.root.attrs if v not in materialized]
    bad = (aggregated[0], materialized[0], materialized[1])
    with pytest.raises(PlanningError):
        LevelHeadedEngine(
            matrix_catalog,
            config=EngineConfig(forced_root_order=bad, enable_blas=False),
        ).compile(MATMUL_SQL)


def test_deferred_fetchers_used_for_output_determined_annotations(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    sql = (
        "SELECT c_custkey, c_name, sum(o_totalprice) AS t "
        "FROM customer, orders WHERE c_custkey = o_custkey "
        "GROUP BY c_custkey, c_name"
    )
    plan = engine.compile(sql)
    assert len(plan.root.deferred_fetchers) == 1
    assert not plan.root.group_fetchers
    result = engine.query(sql)
    # values still decode correctly through the deferred path
    names = {int(k): n for k, n, _t in result.to_rows()}
    table = mini_tpch.table("customer")
    for key_value, name in names.items():
        idx = list(table.column("c_custkey")).index(key_value)
        assert table.column("c_name")[idx] == name


def test_walk_fetchers_used_when_keys_aggregated(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    # n_name is determined by nationkey, which is aggregated away
    plan = engine.compile(Q5_SQL)
    assert len(plan.root.group_fetchers) == 1
    assert not plan.root.deferred_fetchers


def test_trie_batch_lookup_matches_scalar(mini_tpch):
    table = mini_tpch.table("lineitem")
    trie = table.get_trie(("l_orderkey", "l_suppkey"))
    tuples = trie.tuples()
    nodes = trie.lookup_nodes_batch([tuples[:, 0], tuples[:, 1]])
    expected = [trie.lookup_node(row) for row in tuples]
    assert nodes.tolist() == expected
