"""Tests for the benchmark-regression gate (``repro.bench.regress``)."""

import json

import pytest

from repro.bench.regress import (
    STRATEGY_MODES,
    STRATEGY_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    build_workloads,
    compare_runs,
    latest_bench,
    next_bench_path,
    run_regression,
    run_strategy_compare,
)


# ---------------------------------------------------------------------------
# comparison semantics (pure, no timing)
# ---------------------------------------------------------------------------

HOST = {"platform": "x", "machine": "m", "cpu_count": 4, "python": "3"}


def _doc(best, rows=5, work=None, host=HOST, quick=True):
    return {
        "host": host,
        "quick": quick,
        "queries": {
            "q": {
                "best_seconds": best,
                "rows": rows,
                "work": work or {"kernels": 10},
            }
        },
    }


def test_compare_flags_regressions_over_threshold():
    regressions, warnings = compare_runs(_doc(0.010), _doc(0.020), 1.3, 1.0)
    assert len(regressions) == 1
    assert "2.00x" in regressions[0]
    assert not warnings


def test_compare_tolerates_noise_under_threshold():
    regressions, _ = compare_runs(_doc(0.010), _doc(0.012), 1.3, 1.0)
    assert not regressions


def test_compare_min_delta_gates_trivial_queries():
    # 3x slower but only +0.2ms: below the absolute floor, not actionable
    regressions, _ = compare_runs(_doc(0.0001), _doc(0.0003), 1.3, 1.0)
    assert not regressions


def test_compare_cross_host_downgrades_to_warning():
    other = dict(HOST, machine="other")
    regressions, warnings = compare_runs(
        _doc(0.010), _doc(0.050, host=other), 1.3, 1.0
    )
    assert not regressions
    assert any("different host" in w for w in warnings)
    assert any("5.00x" in w for w in warnings)


def test_compare_quick_mismatch_downgrades_to_warning():
    regressions, warnings = compare_runs(
        _doc(0.010, quick=True), _doc(0.050, quick=False), 1.3, 1.0
    )
    assert not regressions
    assert any("--quick" in w for w in warnings)


def test_compare_warns_on_logical_changes():
    _, warnings = compare_runs(
        _doc(0.010), _doc(0.010, rows=6, work={"kernels": 11}), 1.3, 1.0
    )
    assert any("rows changed" in w for w in warnings)
    assert any("work counters changed" in w for w in warnings)


def test_compare_new_workload_is_a_warning():
    baseline = {"host": HOST, "quick": True, "queries": {}}
    _, warnings = compare_runs(baseline, _doc(0.010), 1.3, 1.0)
    assert any("no baseline entry" in w for w in warnings)


# ---------------------------------------------------------------------------
# BENCH file numbering
# ---------------------------------------------------------------------------


def test_bench_numbering_starts_at_3(tmp_path):
    assert latest_bench(tmp_path) is None
    assert next_bench_path(tmp_path).name == "BENCH_0003.json"
    (tmp_path / "BENCH_0007.json").write_text("{}")
    assert latest_bench(tmp_path).name == "BENCH_0007.json"
    assert next_bench_path(tmp_path).name == "BENCH_0008.json"


# ---------------------------------------------------------------------------
# end to end on one real workload
# ---------------------------------------------------------------------------


def test_regress_end_to_end(tmp_path):
    logs = []
    # threshold well below the 3x injected slowdown but wide enough that
    # scheduler noise on a loaded CI machine cannot trip the clean runs.
    common = dict(
        quick=True,
        out_dir=tmp_path,
        workloads=("tpch_q1",),
        log=logs.append,
        threshold=2.0,
        min_delta_ms=4.0,
    )

    # first run: no baseline, writes BENCH_0003.json, exits 0
    assert run_regression(**common) == 0
    bench3 = tmp_path / "BENCH_0003.json"
    assert bench3.exists()
    doc = json.loads(bench3.read_text())
    assert doc["bench_id"] == "BENCH_0003"
    assert doc["schema_version"] == 1
    assert doc["quick"] is True
    assert set(doc["host"]) == {"platform", "machine", "cpu_count", "python"}
    entry = doc["queries"]["tpch_q1"]
    assert entry["best_seconds"] > 0
    assert entry["best_seconds"] == min(entry["times"])
    assert entry["rows"] > 0
    assert "kernel_counts" in entry["work"]

    # injected slowdown: caught, exits nonzero, writes nothing
    status = run_regression(
        inject_slowdown="tpch_q1", inject_factor=3.0, **common
    )
    assert status == 1
    assert not (tmp_path / "BENCH_0004.json").exists()
    assert any("REGRESSION: tpch_q1" in line for line in logs)

    # clean check-only: exits 0 and writes nothing
    assert run_regression(check_only=True, **common) == 0
    assert not (tmp_path / "BENCH_0004.json").exists()


def test_unknown_workload_rejected(tmp_path):
    with pytest.raises(SystemExit):
        run_regression(out_dir=tmp_path, workloads=("nope",), log=lambda s: None)


def test_inject_target_must_be_selected(tmp_path):
    with pytest.raises(SystemExit):
        run_regression(
            out_dir=tmp_path, workloads=("gemv",),
            inject_slowdown="triangle", log=lambda s: None,
        )


def test_all_workload_names_build_quick():
    # every pinned workload constructs and verifies (rows recorded)
    workloads = build_workloads(WORKLOAD_NAMES, quick=True)
    assert [w.name for w in workloads] == list(WORKLOAD_NAMES)
    for w in workloads:
        assert w.rows >= 1, w.name
        assert "kernel_counts" in w.work


# ---------------------------------------------------------------------------
# the join-strategy comparison section
# ---------------------------------------------------------------------------


def test_strategy_compare_section_shape():
    section, regressions = run_strategy_compare(
        ("tpch_q3", "triangle"), quick=True, best_of=1,
        threshold=1.3, min_delta_ms=1.0, log=lambda s: None,
    )
    assert section["modes"] == list(STRATEGY_MODES)
    assert set(section["workloads"]) == {"tpch_q3", "triangle"}
    for name, entry in section["workloads"].items():
        assert set(entry["best_seconds"]) == set(STRATEGY_MODES)
        assert all(t > 0 for t in entry["best_seconds"].values()), name
        assert entry["rows"] >= 1
        assert entry["auto_vs_wcoj_ratio"] > 0
    # all three executors agreed on rows: no correctness regressions
    assert not any("disagree" in r for r in regressions)


def test_strategy_compare_rides_along_on_full_runs(tmp_path):
    # subset runs skip the section unless forced on
    logs = []
    assert run_regression(
        quick=True, out_dir=tmp_path, workloads=("tpch_q1",),
        strategy=True, strategy_workloads=("tpch_q1",),
        log=logs.append, threshold=10.0, min_delta_ms=50.0,
    ) == 0
    doc = json.loads((tmp_path / "BENCH_0003.json").read_text())
    assert "strategy_compare" in doc
    entry = doc["strategy_compare"]["workloads"]["tpch_q1"]
    assert set(entry["best_seconds"]) == set(STRATEGY_MODES)
    assert any("strategy tpch_q1" in line for line in logs)


def test_strategy_compare_skipped_for_subset_runs(tmp_path):
    assert run_regression(
        quick=True, out_dir=tmp_path, workloads=("tpch_q1",),
        log=lambda s: None,
    ) == 0
    doc = json.loads((tmp_path / "BENCH_0003.json").read_text())
    assert "strategy_compare" not in doc


def test_strategy_workloads_are_known():
    assert set(STRATEGY_WORKLOAD_NAMES) <= set(WORKLOAD_NAMES)
