"""Flight recorder, in-flight registry, and query-id correlation.

Pins the always-on observability contract: ``next_query_id`` is unique
and process-tagged, the :class:`~repro.obs.FlightRecorder` ring never
exceeds its capacity no matter how many concurrent sessions record
into it, every finished/failed query leaves a correlated flight entry,
and ``engine.debug_snapshot`` serves the four live views atomically.
"""

import os
import threading

import pytest

import repro
from repro import LevelHeadedEngine
from repro.errors import ReproError
from repro.obs import FlightRecorder, InflightRegistry, next_query_id, sql_hash

from .conftest import make_mini_tpch
from .test_engine import Q5_SQL


# ---------------------------------------------------------------------------
# query ids and hashes
# ---------------------------------------------------------------------------


def test_next_query_id_unique_and_pid_tagged():
    ids = [next_query_id() for _ in range(1000)]
    assert len(set(ids)) == 1000
    assert all(i.startswith(f"q{os.getpid()}-") for i in ids)


def test_sql_hash_stable_and_none_for_empty():
    assert sql_hash("SELECT 1") == sql_hash("SELECT 1")
    assert sql_hash("SELECT 1") != sql_hash("SELECT 2")
    assert len(sql_hash("SELECT 1")) == 12
    assert sql_hash(None) is None and sql_hash("") is None


# ---------------------------------------------------------------------------
# the ring itself
# ---------------------------------------------------------------------------


def test_ring_never_exceeds_capacity_under_1k_concurrent_queries():
    recorder = FlightRecorder(capacity=64)
    sizes = []

    def session(name, queries=100):
        for _ in range(queries):
            recorder.record(
                {"query_id": next_query_id(), "session": name, "outcome": "ok"}
            )
            sizes.append(len(recorder))

    threads = [
        threading.Thread(target=session, args=(f"s{i}",)) for i in range(10)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert recorder.recorded == 1000
    assert len(recorder) == 64
    assert max(sizes) <= 64  # never exceeded capacity at any point
    snap = recorder.snapshot()
    assert len(snap) == 64
    ids = [e["query_id"] for e in snap]
    assert len(set(ids)) == 64  # distinct queries survived, none duplicated


def test_ring_snapshot_newest_first_with_filters():
    recorder = FlightRecorder(capacity=8)
    for i in range(10):
        recorder.record(
            {"query_id": f"q-{i}", "outcome": "ok" if i % 2 else "error"}
        )
    snap = recorder.snapshot()
    assert [e["query_id"] for e in snap] == [f"q-{i}" for i in range(9, 1, -1)]
    assert [e["query_id"] for e in recorder.snapshot(n=2)] == ["q-9", "q-8"]
    errors = recorder.snapshot(outcome="error")
    assert all(e["outcome"] == "error" for e in errors)
    assert [e["query_id"] for e in recorder.snapshot(n=1, outcome="error")] == ["q-8"]
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_inflight_registry_register_and_finish():
    reg = InflightRegistry()
    entry = reg.register("q-1", "SELECT 1", session="s1")
    assert len(reg) == 1
    assert entry.phase == "admission"
    snap = reg.snapshot()[0]
    assert snap["query_id"] == "q-1"
    assert snap["session"] == "s1"
    assert snap["sql"] == "SELECT 1"
    assert snap["elapsed_ms"] >= 0
    reg.finish("q-1")
    assert len(reg) == 0 and reg.snapshot() == []
    reg.finish("q-1")  # idempotent


# ---------------------------------------------------------------------------
# engine integration: every query leaves a correlated entry
# ---------------------------------------------------------------------------


@pytest.fixture()
def engine():
    return LevelHeadedEngine(make_mini_tpch())


def test_flight_entry_contents_for_ok_query(engine):
    result = engine.query(Q5_SQL)
    assert result.query_id
    entries = engine.flight.snapshot()
    assert len(entries) == 1
    e = entries[0]
    assert e["query_id"] == result.query_id
    assert e["outcome"] == "ok"
    assert e["sql"] == Q5_SQL and e["sql_hash"] == sql_hash(Q5_SQL)
    assert e["cache_outcome"] == "miss"
    assert e["mode"] == "join"
    assert e["compile_ms"] > 0 and e["execute_ms"] > 0
    assert e["rows"] == result.num_rows and e["bytes_out"] > 0
    assert e["queued"] is False and e["admission_wait_ms"] == 0
    # per-node planner decisions: chosen attribute order + strategy
    assert e["nodes"]
    for node in e["nodes"]:
        assert node["order"] and node["strategy"] in ("wcoj", "binary")
    # second run hits the cache, with its own id and no compile time
    result2 = engine.query(Q5_SQL)
    assert result2.query_id != result.query_id
    newest = engine.flight.snapshot(n=1)[0]
    assert newest["query_id"] == result2.query_id
    assert newest["cache_outcome"] == "hit" and newest["compile_ms"] is None


def test_failed_query_records_error_outcome_with_query_id(engine):
    with pytest.raises(repro.BindError) as info:
        engine.query("SELECT count(*) AS n FROM no_such_table t")
    assert getattr(info.value, "query_id", None)
    entries = engine.flight.snapshot(outcome="error")
    assert [e["query_id"] for e in entries] == [info.value.query_id]
    assert entries[0]["error"]
    assert entries[0]["execute_ms"] is not None


def test_timed_out_query_records_timeout_outcome():
    engine = LevelHeadedEngine(make_mini_tpch())
    with pytest.raises(repro.QueryTimeoutError) as info:
        engine.query(
            "SELECT count(*) AS n FROM lineitem l1, lineitem l2, lineitem l3 "
            "WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey",
            timeout_ms=0.0001,
        )
    entries = engine.flight.snapshot(outcome="timeout")
    assert [e["query_id"] for e in entries] == [info.value.query_id]


def test_flight_capacity_is_configurable():
    engine = LevelHeadedEngine(make_mini_tpch(), flight_capacity=2)
    for _ in range(4):
        engine.query(Q5_SQL)
    assert engine.flight.capacity == 2
    assert len(engine.flight) == 2
    assert engine.flight.recorded == 4


def test_stats_and_result_carry_query_id(engine):
    result = engine.query(Q5_SQL, collect_stats=True)
    assert result.stats.query_id == result.query_id
    # the id is correlation metadata, not a counter: numeric dict views
    # (as_dict drives the parallel-differential equality checks) skip it
    assert "query_id" not in result.stats.as_dict()


def test_traced_query_stamps_query_id_on_root_span(engine):
    result = engine.query(Q5_SQL, trace=True)
    assert result.trace.payload["query_id"] == result.query_id


# ---------------------------------------------------------------------------
# debug_snapshot: the four live views
# ---------------------------------------------------------------------------


def test_debug_snapshot_views(engine):
    engine.query(Q5_SQL)
    queries = engine.debug_snapshot("queries")
    assert queries == {"count": 0, "queries": []}  # nothing in flight now
    flight = engine.debug_snapshot("flight")
    assert flight["capacity"] == 256
    assert flight["recorded"] == 1 and len(flight["entries"]) == 1
    plans = engine.debug_snapshot("plans")
    assert plans["size"] == len(plans["entries"]) == 1
    assert plans["entries"][0]["mode"] == "join"
    assert plans["entries"][0]["hits"] == 0
    assert plans["stats"]["misses"] == 1
    assert engine.debug_snapshot("governor") == {"governor": None}
    with pytest.raises(ReproError, match="unknown debug view"):
        engine.debug_snapshot("bogus")


def test_debug_queries_sees_inflight_query():
    engine = LevelHeadedEngine(make_mini_tpch())
    seen = {}
    barrier = threading.Event()

    original = engine._run_plan

    def spying_run_plan(*args, **kwargs):
        seen["queries"] = engine.debug_snapshot("queries")
        barrier.set()
        return original(*args, **kwargs)

    engine._run_plan = spying_run_plan
    result = engine.query(Q5_SQL)
    assert barrier.is_set()
    live = seen["queries"]
    assert live["count"] == 1
    assert live["queries"][0]["query_id"] == result.query_id
    assert live["queries"][0]["phase"] in ("admission", "compile", "execute")
