"""Tests for the SQL lexer, parser, and expression evaluation."""

import numpy as np
import pytest

from repro.errors import ParseError, UnsupportedQueryError
from repro.sql import (
    AggCall,
    Between,
    BinOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    Like,
    Literal,
    SelectStmt,
    evaluate,
    extract_date_part,
    like_mask,
    parse,
    tokenize,
)
from repro.storage import parse_date

# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


def test_tokenize_basic():
    tokens = tokenize("SELECT a, b FROM t WHERE a >= 1.5")
    kinds = [t.kind for t in tokens]
    assert kinds == [
        "KEYWORD", "IDENT", "OP", "IDENT", "KEYWORD", "IDENT",
        "KEYWORD", "IDENT", "OP", "NUMBER", "EOF",
    ]


def test_tokenize_string_with_escaped_quote():
    tokens = tokenize("select 'it''s'")
    assert tokens[1].kind == "STRING"
    assert tokens[1].value == "it's"


def test_tokenize_comments_skipped():
    tokens = tokenize("select a -- trailing comment\nfrom t")
    assert [t.value for t in tokens[:4]] == ["select", "a", "from", "t"]


def test_tokenize_unknown_character():
    with pytest.raises(ParseError):
        tokenize("select @")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def test_parse_simple_select():
    stmt = parse("SELECT a, b AS bee FROM t")
    assert isinstance(stmt, SelectStmt)
    assert [i.output_name for i in stmt.items] == ["a", "bee"]
    assert stmt.tables[0].table == "t"
    assert stmt.tables[0].alias == "t"


def test_parse_table_aliases_and_self_join():
    stmt = parse("SELECT m1.i FROM matrix AS m1, matrix m2 WHERE m1.j = m2.i")
    assert [(t.table, t.alias) for t in stmt.tables] == [
        ("matrix", "m1"), ("matrix", "m2"),
    ]
    cond = stmt.where[0]
    assert isinstance(cond, Comparison) and cond.op == "="
    assert cond.left == ColumnRef("m1", "j")
    assert cond.right == ColumnRef("m2", "i")


def test_parse_join_on_folds_into_where():
    stmt = parse("SELECT a.x FROM a JOIN b ON a.x = b.y WHERE b.z > 3")
    assert len(stmt.where) == 2
    assert isinstance(stmt.where[0], Comparison)


def test_parse_where_conjunction_split():
    stmt = parse("SELECT x FROM t WHERE a = 1 AND b = 2 AND c < 3")
    assert len(stmt.where) == 3


def test_parse_group_by():
    stmt = parse("SELECT a, sum(v) FROM t GROUP BY a")
    assert len(stmt.group_by) == 1
    assert stmt.group_by[0] == ColumnRef(None, "a")


def test_parse_aggregates():
    stmt = parse("SELECT sum(a), count(*), avg(b), min(c), max(d) FROM t")
    funcs = [item.expr.func for item in stmt.items]
    assert funcs == ["sum", "count", "avg", "min", "max"]
    assert stmt.items[1].expr.arg is None


def test_parse_arithmetic_precedence():
    stmt = parse("SELECT a + b * c FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, BinOp) and expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "*"


def test_parse_parenthesized_expression():
    stmt = parse("SELECT (a + b) * c FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_parse_date_literal():
    stmt = parse("SELECT x FROM t WHERE d >= date '1994-01-01'")
    cond = stmt.where[0]
    assert cond.right == Literal(parse_date("1994-01-01"), "date")


def test_parse_interval_literal():
    stmt = parse("SELECT x FROM t WHERE d <= date '1998-12-01' - interval '90' day")
    cond = stmt.where[0]
    assert isinstance(cond.right, BinOp)
    assert cond.right.right == Literal(90, "interval")


def test_parse_between():
    stmt = parse("SELECT x FROM t WHERE d BETWEEN 1 AND 5")
    assert isinstance(stmt.where[0], Between)


def test_parse_in_list():
    stmt = parse("SELECT x FROM t WHERE c IN ('a', 'b')")
    cond = stmt.where[0]
    assert isinstance(cond, InList)
    assert [v.value for v in cond.values] == ["a", "b"]


def test_parse_like_and_not_like():
    stmt = parse("SELECT x FROM t WHERE n LIKE '%green%' AND m NOT LIKE 'a_'")
    like, notlike = stmt.where
    assert isinstance(like, Like) and not like.negated
    assert isinstance(notlike, Like) and notlike.negated


def test_parse_case_when():
    stmt = parse(
        "SELECT sum(CASE WHEN n = 'BRAZIL' THEN v ELSE 0 END) FROM t"
    )
    agg = stmt.items[0].expr
    assert isinstance(agg, AggCall)
    assert isinstance(agg.arg, CaseExpr)
    assert agg.arg.else_ == Literal(0, "number")


def test_parse_extract_year():
    stmt = parse("SELECT extract(year from o_orderdate) AS o_year FROM orders")
    expr = stmt.items[0].expr
    assert expr == FuncCall("extract_year", (ColumnRef(None, "o_orderdate"),))
    assert stmt.items[0].alias == "o_year"


def test_parse_bare_alias_without_as():
    stmt = parse("SELECT sum(v) rev FROM t")
    assert stmt.items[0].alias == "rev"


def test_parse_order_by_and_limit():
    stmt = parse("SELECT a, b FROM t ORDER BY a DESC, b LIMIT 5")
    assert len(stmt.order_by) == 2
    assert stmt.order_by[0].descending
    assert not stmt.order_by[1].descending
    assert stmt.limit == 5


def test_parse_having():
    stmt = parse("SELECT a, sum(v) AS s FROM t GROUP BY a HAVING sum(v) > 10")
    assert stmt.having is not None
    assert "sum(v)" in str(stmt.having)


def test_parse_limit_requires_integer():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t LIMIT 1.5")


def test_parse_rejects_distinct():
    with pytest.raises(UnsupportedQueryError):
        parse("SELECT DISTINCT a FROM t")


def test_parse_trailing_garbage():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t )")


def test_parse_unary_minus():
    stmt = parse("SELECT -a FROM t")
    assert stmt.items[0].expr.op == "-"


def test_parse_tpch_q5_shape():
    sql = """
    SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
    FROM customer, orders, lineitem, supplier, nation, region
    WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
      AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
      AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
      AND r_name = 'ASIA'
      AND o_orderdate >= date '1994-01-01'
      AND o_orderdate < date '1995-01-01'
    GROUP BY n_name
    """
    stmt = parse(sql)
    assert len(stmt.tables) == 6
    assert len(stmt.where) == 9
    assert len(stmt.group_by) == 1


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


def _resolver(env):
    def resolve(ref):
        return env[str(ref) if ref.qualifier else ref.name]

    return resolve


def test_evaluate_arithmetic_vectorized():
    stmt = parse("SELECT l_e * (1 - l_d) FROM t")
    env = {"l_e": np.array([10.0, 20.0]), "l_d": np.array([0.1, 0.5])}
    out = evaluate(stmt.items[0].expr, _resolver(env))
    assert np.allclose(out, [9.0, 10.0])


def test_evaluate_comparison_and_boolops():
    stmt = parse("SELECT x FROM t WHERE a > 1 AND (b = 2 OR b = 3)")
    env = {"a": np.array([0, 2, 5]), "b": np.array([2, 9, 3])}
    mask = evaluate(stmt.where[0], _resolver(env)) & evaluate(
        stmt.where[1], _resolver(env)
    )
    assert list(mask) == [False, False, True]


def test_evaluate_between_inclusive():
    stmt = parse("SELECT x FROM t WHERE d BETWEEN 2 AND 4")
    env = {"d": np.array([1, 2, 3, 4, 5])}
    assert list(evaluate(stmt.where[0], _resolver(env))) == [
        False, True, True, True, False,
    ]


def test_evaluate_in_list_strings():
    stmt = parse("SELECT x FROM t WHERE c IN ('a', 'c')")
    env = {"c": np.array(["a", "b", "c"])}
    assert list(evaluate(stmt.where[0], _resolver(env))) == [True, False, True]


def test_evaluate_not():
    stmt = parse("SELECT x FROM t WHERE NOT a = 1")
    env = {"a": np.array([1, 2])}
    assert list(evaluate(stmt.where[0], _resolver(env))) == [False, True]


def test_evaluate_case_when_vectorized():
    stmt = parse("SELECT CASE WHEN n = 'BR' THEN v ELSE 0 END FROM t")
    env = {"n": np.array(["BR", "US", "BR"]), "v": np.array([1.0, 2.0, 3.0])}
    out = evaluate(stmt.items[0].expr, _resolver(env))
    assert np.allclose(out, [1.0, 0.0, 3.0])


def test_evaluate_case_scalar():
    stmt = parse("SELECT CASE WHEN 1 = 1 THEN 5 END FROM t")
    assert evaluate(stmt.items[0].expr, _resolver({})) == 5


def test_evaluate_division_is_float():
    stmt = parse("SELECT a / b FROM t")
    env = {"a": np.array([1]), "b": np.array([2])}
    assert np.allclose(evaluate(stmt.items[0].expr, _resolver(env)), [0.5])


def test_extract_date_parts():
    ordinals = np.array([parse_date("1994-03-15"), parse_date("1998-12-01")])
    assert list(extract_date_part(ordinals, "year")) == [1994, 1998]
    assert list(extract_date_part(ordinals, "month")) == [3, 12]
    assert list(extract_date_part(ordinals, "day")) == [15, 1]
    assert extract_date_part(parse_date("2000-02-29"), "day") == 29


def test_like_mask_shapes():
    values = np.array(["forest green", "green", "greenish", "red"])
    assert list(like_mask(values, "%green%")) == [True, True, True, False]
    assert list(like_mask(values, "green%")) == [False, True, True, False]
    assert list(like_mask(values, "%green")) == [True, True, False, False]
    assert list(like_mask(values, "green")) == [False, True, False, False]
    assert list(like_mask(values, "gree_")) == [False, True, False, False]
    assert like_mask("green", "gr%") is True
