"""Plan-shape tests: the TPC-H queries compile the way the paper says."""

import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.datasets import TPCH_QUERIES, generate_tpch


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale_factor=0.002, seed=11)


def _plan(tpch, name, **config):
    engine = LevelHeadedEngine(tpch, config=EngineConfig(**config) if config else None)
    return engine.compile(TPCH_QUERIES[name])


def test_q1_is_scan(tpch):
    plan = _plan(tpch, "Q1")
    assert plan.mode == "scan"
    # 8 output aggregates collapse to 6 physical ones (AVG reuses sums
    # and COUNT) over 4 distinct lineitem slots
    assert len(plan.scan.aggregates) == 6
    assert len(plan.scan.group_exprs) == 2


def test_q6_is_scan_single_aggregate(tpch):
    plan = _plan(tpch, "Q6")
    assert plan.mode == "scan"
    assert len(plan.scan.aggregates) == 1
    assert len(plan.scan.filters) == 4


def test_q3_single_node_with_deferred_annotations(tpch):
    plan = _plan(tpch, "Q3")
    assert plan.mode == "join"
    assert not plan.root.children  # acyclic -> compressed to one node
    # o_orderdate and o_shippriority are determined by the output
    # vertex orderkey -> decoded vectorized after the walk
    assert len(plan.root.deferred_fetchers) == 2
    assert not plan.root.group_fetchers


def test_q5_two_node_region_subplan(tpch):
    plan = _plan(tpch, "Q5")
    assert plan.mode == "join"
    assert len(plan.root.children) == 1
    child = plan.root.children[0]
    child_aliases = {b.alias for b in child.bindings}
    assert child_aliases == {"nation", "region"}
    assert child.materialized == ("nationkey",)
    # n_name is fetched during the walk (nationkey is aggregated away)
    assert [f.ref_id for f in plan.root.group_fetchers] == ["g0"]
    # lineitem carries the revenue slot and its multiplicity
    lineitem = next(b for b in plan.root.bindings if b.alias == "lineitem")
    assert any(s.startswith("__mult_") for s in lineitem.slot_ids)
    assert any(s.startswith("s") for s in lineitem.slot_ids)


def test_q8_two_nation_aliases_have_distinct_vertices(tpch):
    plan = _plan(tpch, "Q8")
    assert plan.mode == "join"
    vertices = set(plan.compiled.hypergraph.vertices)
    nationkey_vertices = {v for v in vertices if v.startswith("nationkey")}
    assert len(nationkey_vertices) == 2  # c-n1 and s-n2 never merge
    # the CASE factor is a slot on n2, the volume on lineitem
    slot_aliases = {s.alias for s in plan.compiled.slots}
    assert "n2" in slot_aliases and "lineitem" in slot_aliases


def test_q9_term_decomposition(tpch):
    plan = _plan(tpch, "Q9")
    agg = plan.compiled.aggregates[0]
    assert agg.func == "sum"
    assert len(agg.terms) == 2
    factor_sets = [set(t.factors) for t in agg.terms]
    assert {"lineitem"} in factor_sets
    assert {"partsupp", "lineitem"} in factor_sets


def test_q10_customer_annotations_deferred(tpch):
    plan = _plan(tpch, "Q10")
    assert plan.mode == "join"
    # c_name/c_acctbal/c_address/c_phone/c_comment (custkey-determined)
    # and n_name (via the promoted nationkey vertex) all defer
    assert len(plan.root.deferred_fetchers) >= 5
    assert plan.compiled.output_vertices == ["custkey"]


def test_relaxation_never_fires_on_tpch(tpch):
    # every benchmark BI query materializes its group-by keys first
    for name in TPCH_QUERIES:
        plan = _plan(tpch, name)
        if plan.mode == "join":
            assert plan.root.attrs  # non-empty order chosen


def test_worst_order_costs_dominate_best(tpch):
    for name in ("Q3", "Q5", "Q8", "Q9", "Q10"):
        best = _plan(tpch, name)
        worst = _plan(
            tpch, name, enable_attribute_ordering=False, enable_relaxation=False
        )
        assert worst.root.decision.cost >= best.root.decision.cost, name
