"""The q-error feedback loop, end to end, plus the counters it reads.

The loop under test (``repro.optimizer.feedback``):

1. every execution pairs each plan node's ``est_rows`` with the rows
   the node actually emitted (``ExecutionStats.node_rows``) and scores
   the q-error ``max(est/act, act/est)``;
2. a cached plan whose q-error exceeds the threshold for K consecutive
   runs drifts; its next lookup recompiles with the observed
   cardinalities overriding the static estimates (``reoptimized``);
3. on the Zipf-skewed workload the corrected recompile genuinely
   re-ranks the plan (different root attribute order and strategy)
   with strictly lower measured q-error and identical results.

Also covered here: the counters the loop depends on being truthful --
the governor's one-rejection-one-count rule, the plan cache's
shed-vs-evict split, and the post-filter child cardinality estimate.
"""

import threading

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.core.governor import Governor
from repro.core.plan_cache import HIT, MISS, REOPTIMIZED, PlanCache
from repro.datasets import SKEWED_QUERIES, generate_skewed
from repro.datasets.tpch.queries import Q5
from repro.errors import RetryableAdmissionError
from repro.optimizer.feedback import (
    DRIFT_CONSECUTIVE_RUNS,
    Q_ERROR_DRIFT_THRESHOLD,
    NodeFeedback,
    PlanFeedback,
    QueryFeedback,
    measure,
    q_error,
)
from tests.conftest import make_mini_tpch

SKEWED_SQL = SKEWED_QUERIES["hot_regions"]

TRIANGLE_SQL = (
    "SELECT count(*) AS triangles FROM edges e1, edges e2, edges e3 "
    "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
)

Q3_MINI = """
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15'
GROUP BY l_orderkey, o_orderdate
"""


@pytest.fixture(scope="module")
def skewed_catalog():
    return generate_skewed()


def _columns(result):
    return {name: result.column(name).tolist() for name in result.names}


# ---------------------------------------------------------------------------
# q-error arithmetic and the drift record
# ---------------------------------------------------------------------------


def test_q_error_is_symmetric_and_floored():
    assert q_error(10, 100) == pytest.approx(10.0)
    assert q_error(100, 10) == pytest.approx(10.0)
    assert q_error(5, 5) == 1.0
    # both sides floor at one row: 0-vs-0 is a perfect prediction
    assert q_error(0, 0) == 1.0
    assert q_error(0.2, 1) == 1.0


def test_measure_pairs_estimates_with_actuals(skewed_catalog):
    engine = LevelHeadedEngine(skewed_catalog)
    result = engine.query(SKEWED_SQL, collect_stats=True)
    measured = measure(engine.plan_cache.lookup(
        engine._plan_key(SKEWED_SQL, engine.config), engine.catalog
    )[0], result.stats.node_rows)
    assert isinstance(measured, QueryFeedback)
    keys = {nf.node_key for nf in measured.nodes}
    assert keys == set(result.stats.node_rows)
    assert measured.q_error_max == max(nf.q_error for nf in measured.nodes)
    root = measured.node("n0")
    assert isinstance(root, NodeFeedback)
    assert measured.q_error_root == root.q_error


def test_plan_feedback_drifts_after_consecutive_bad_runs():
    fb = PlanFeedback(threshold=4.0, drift_runs=3)
    bad = QueryFeedback(
        nodes=(NodeFeedback("n0", 10.0, 100, 10.0),), q_error_max=10.0,
        q_error_root=10.0,
    )
    good = QueryFeedback(
        nodes=(NodeFeedback("n0", 90.0, 100, 1.1),), q_error_max=1.1,
        q_error_root=1.1,
    )
    assert fb.record(bad) is False
    assert fb.record(good) is False  # streak resets: one bad run is noise
    assert fb.record(bad) is False
    assert fb.record(bad) is False
    assert fb.record(bad) is True  # third consecutive: newly drifted
    assert fb.drifted
    assert fb.record(bad) is False  # sticky, not re-reported
    # observations carry to the successor; drift state does not
    succ = fb.successor()
    assert succ.corrections() == {"n0": 100}
    assert not succ.drifted and succ.bad_streak == 0
    assert succ.reoptimized == 1


# ---------------------------------------------------------------------------
# the loop on the skewed workload (default thresholds)
# ---------------------------------------------------------------------------


def test_skew_breaks_the_static_estimate(skewed_catalog):
    engine = LevelHeadedEngine(skewed_catalog)
    result = engine.query(SKEWED_SQL, collect_stats=True)
    assert result.stats.q_error_max > Q_ERROR_DRIFT_THRESHOLD


def test_drift_reoptimizes_and_lowers_q_error(skewed_catalog):
    engine = LevelHeadedEngine(skewed_catalog)
    runs = [
        engine.query(SKEWED_SQL, collect_stats=True)
        for _ in range(DRIFT_CONSECUTIVE_RUNS + 2)
    ]
    # run pattern: miss, hit, hit (3 bad runs => drift), reoptimized, hit
    assert runs[0].stats.plan_cache_misses == 1
    reopt = runs[DRIFT_CONSECUTIVE_RUNS]
    assert reopt.stats.plan_reoptimizations == 1
    assert runs[-1].stats.plan_cache_hits == 1
    assert engine.plan_cache.stats.reoptimizations == 1
    # the corrected plan measures strictly lower q-error
    before = runs[0].stats.q_error_max
    after = reopt.stats.q_error_max
    assert after < before
    assert runs[-1].stats.q_error_max == after
    # and identical results, run over run
    want = _columns(runs[0])
    for run in runs[1:]:
        assert _columns(run) == want
    # the whole loop is visible in /metrics
    prom = engine.metrics.to_prometheus()
    assert "repro_plans_drifted_total 1" in prom
    assert "repro_plan_reoptimizations_total 1" in prom
    assert "repro_plan_cache_reoptimized_total 1" in prom
    assert 'repro_q_error_max{quantile="0.5"}' in prom
    assert 'repro_q_error_max{quantile="0.95"}' in prom


def test_corrections_rerank_the_attribute_order(skewed_catalog):
    """The observed child cardinality changes the chosen root order."""
    from repro.query.translate import translate
    from repro.sql.binder import bind
    from repro.sql.parser import parse
    from repro.xcution.plan import build_plan

    engine = LevelHeadedEngine(skewed_catalog)
    observed = engine.query(SKEWED_SQL, collect_stats=True).stats.node_rows
    compiled = translate(bind(parse(SKEWED_SQL), skewed_catalog))
    base = build_plan(compiled, engine.config)
    corrected = build_plan(compiled, engine.config, feedback=observed)
    base_orders = [tuple(n["attrs"]) for n in base.node_summaries()]
    corr_orders = [tuple(n["attrs"]) for n in corrected.node_summaries()]
    assert base_orders != corr_orders
    # the corrected node advertises itself
    corr_root = corrected.node_summaries()[0]["strategy"]
    assert corr_root["corrected"] is True
    assert base.node_summaries()[0]["strategy"]["corrected"] is False


def test_explain_analyze_reports_per_node_q_error(skewed_catalog):
    engine = LevelHeadedEngine(skewed_catalog)
    text = engine.explain(SKEWED_SQL, analyze=True)
    assert "q-error: max=" in text
    assert "est_rows=" in text and "actual_rows=" in text
    doc = engine.explain(SKEWED_SQL, analyze=True, format="json")
    assert doc["feedback"]["q_error_max"] > Q_ERROR_DRIFT_THRESHOLD
    by_key = {n["node_key"]: n for n in doc["plan_nodes"]}
    for nf in doc["feedback"]["nodes"]:
        node = by_key[nf["node_key"]]
        assert node["actual_rows"] == nf["actual_rows"]
        assert node["q_error"] == nf["q_error"]
    assert doc["stats"]["q_error_max"] == doc["feedback"]["q_error_max"]


def test_reoptimized_explain_marks_corrected_nodes(skewed_catalog):
    engine = LevelHeadedEngine(skewed_catalog)
    for _ in range(DRIFT_CONSECUTIVE_RUNS + 1):
        engine.query(SKEWED_SQL)
    assert "[feedback-corrected]" in engine.explain(SKEWED_SQL)


def test_feedback_meta_command(skewed_catalog):
    from repro.cli import _handle_line

    engine = LevelHeadedEngine(skewed_catalog)
    empty = _handle_line(engine, "\\feedback")
    assert "no cached plans" in empty
    for _ in range(DRIFT_CONSECUTIVE_RUNS + 1):
        engine.query(SKEWED_SQL)
    text = _handle_line(engine, "\\feedback")
    assert "threshold=4" in text and "drift_runs=3" in text
    assert "reoptimizations=1" in text
    assert "reoptimized=1" in text  # the live entry is the successor


def test_server_hello_advertises_feedback_policy(skewed_catalog):
    from repro.client import connect
    from repro.server import ReproServer

    engine = LevelHeadedEngine(skewed_catalog)
    server = ReproServer(engine, port=0)
    server.start()
    try:
        with connect("127.0.0.1", server.port) as client:
            assert client.feedback == {
                "q_error_threshold": Q_ERROR_DRIFT_THRESHOLD,
                "drift_runs": DRIFT_CONSECUTIVE_RUNS,
            }
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# forced drift: re-optimized plans stay correct on standard workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sql_name", ["Q3", "Q5", "triangle"])
def test_reoptimized_plan_results_identical(sql_name):
    if sql_name == "triangle":
        from repro.bench.regress import _graph_catalog

        catalog, sql = _graph_catalog(60, 400, seed=3), TRIANGLE_SQL
    else:
        catalog = make_mini_tpch()
        sql = {"Q3": Q3_MINI, "Q5": Q5}[sql_name]
    engine = LevelHeadedEngine(catalog)
    # every run counts as bad: q-error >= 1 > 0.5 drifts after one run
    engine.plan_cache = PlanCache(64, q_error_threshold=0.5, drift_runs=1)
    first = engine.query(sql, collect_stats=True)
    assert first.stats.plan_cache_misses == 1
    second = engine.query(sql, collect_stats=True)
    assert second.stats.plan_reoptimizations == 1
    assert engine.plan_cache.stats.reoptimizations == 1
    assert _columns(second) == _columns(first)


def test_drifted_entry_not_cached_for_admission(skewed_catalog):
    """peek() treats a drifted entry as non-cached: it will recompile."""
    engine = LevelHeadedEngine(skewed_catalog)
    engine.plan_cache = PlanCache(64, q_error_threshold=0.5, drift_runs=1)
    key = engine._plan_key(SKEWED_SQL, engine.config)
    engine.query(SKEWED_SQL)
    assert engine.plan_cache.peek(key, engine.catalog) is False
    plan, outcome = engine.plan_cache.lookup(key, engine.catalog)
    assert plan is None and outcome == REOPTIMIZED


# ---------------------------------------------------------------------------
# differential: the q-error counters are parallel-invariant
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_q_error_counters_parallel_invariant(skewed_catalog, threads):
    serial = LevelHeadedEngine(
        skewed_catalog, config=EngineConfig(parallel=False)
    ).query(SKEWED_SQL, collect_stats=True)
    parallel = LevelHeadedEngine(
        skewed_catalog,
        config=EngineConfig(parallel=True, num_threads=threads),
    ).query(SKEWED_SQL, collect_stats=True)
    assert parallel.stats.node_rows == serial.stats.node_rows
    assert parallel.stats.q_error_max == serial.stats.q_error_max
    assert parallel.stats.q_error_root == serial.stats.q_error_root
    assert _columns(parallel) == _columns(serial)


@pytest.mark.parametrize("threads", [2, 4])
def test_q5_node_rows_parallel_invariant(threads):
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog, config=EngineConfig(parallel=False)).query(
        Q5, collect_stats=True
    )
    parallel = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=True, num_threads=threads)
    ).query(Q5, collect_stats=True)
    assert parallel.stats.node_rows == serial.stats.node_rows
    assert parallel.stats.q_error_max == serial.stats.q_error_max


# ---------------------------------------------------------------------------
# satellite: the governor counts each rejection exactly once
# ---------------------------------------------------------------------------


def test_queue_full_rejection_counted_once():
    governor = Governor(max_concurrency=1, max_queue=0)
    held = governor.admit(cached=True)
    try:
        # a non-cached query at a full queue used to book BOTH
        # rejected_queue_full and rejected_shedding for one rejection
        with pytest.raises(RetryableAdmissionError) as excinfo:
            governor.admit(cached=False)
    finally:
        governor.release(held)
    assert excinfo.value.cause == "queue_full"
    assert governor.counters["rejected_queue_full"] == 1
    assert governor.counters["rejected_shedding"] == 0
    assert governor.counters["queue_full_uncached"] == 1
    rejected = sum(
        count for name, count in governor.counters.items()
        if name.startswith("rejected_")
    )
    assert rejected == 1


def test_cached_queue_full_rejection_not_marked_uncached():
    governor = Governor(max_concurrency=1, max_queue=0)
    held = governor.admit(cached=True)
    try:
        with pytest.raises(RetryableAdmissionError):
            governor.admit(cached=True)
    finally:
        governor.release(held)
    assert governor.counters["rejected_queue_full"] == 1
    assert governor.counters["queue_full_uncached"] == 0


def test_shedding_rejection_carries_cause(skewed_catalog):
    engine = LevelHeadedEngine(
        skewed_catalog, governor=Governor(max_concurrency=4)
    )
    engine.governor.set_load_shedding(True)
    try:
        with pytest.raises(RetryableAdmissionError) as excinfo:
            engine.query(SKEWED_SQL)
    finally:
        engine.governor.set_load_shedding(False)
    assert excinfo.value.cause == "shedding"
    assert engine.governor.counters["rejected_shedding"] == 1
    assert engine.governor.counters["rejected_queue_full"] == 0
    prom = engine.metrics.to_prometheus()
    assert "repro_admission_rejected_total 1" in prom
    assert "repro_admission_rejected_shedding_total 1" in prom


# ---------------------------------------------------------------------------
# satellite: shed entries are shed, not evicted
# ---------------------------------------------------------------------------


def _store_n(cache, n):
    class _Plan:
        def is_current(self, catalog):
            return True

    for i in range(n):
        cache.store((f"q{i}", (), ()), _Plan())


def test_shed_lru_books_shed_not_evictions():
    cache = PlanCache(capacity=8)
    _store_n(cache, 6)
    dropped = cache.shed_lru(fraction=0.5)
    assert dropped == 3
    assert cache.stats.shed == 3
    assert cache.stats.evictions == 0


def test_capacity_eviction_books_evictions_not_shed():
    cache = PlanCache(capacity=4)
    _store_n(cache, 6)
    assert cache.stats.evictions == 2
    assert cache.stats.shed == 0
    assert cache.stats.as_dict()["shed"] == 0


def test_memory_pressure_metric_still_counts_shed_entries(skewed_catalog):
    governor = Governor(max_concurrency=2)
    engine = LevelHeadedEngine(skewed_catalog, governor=governor)
    engine.query(SKEWED_SQL)
    engine.query("SELECT count(*) AS n FROM fact")
    governor.note_memory_pressure()
    assert engine.metrics.counter("plan_cache_shed_entries") >= 1
    assert engine.plan_cache.stats.shed >= 1
    assert engine.plan_cache.stats.evictions == 0


# ---------------------------------------------------------------------------
# satellite: child cardinality estimates are post-filter
# ---------------------------------------------------------------------------


def test_child_estimate_uses_post_filter_rows(skewed_catalog):
    """The supp/region child is bounded by the *filtered* region rows."""
    engine = LevelHeadedEngine(skewed_catalog)
    doc = engine.explain(SKEWED_SQL, format="json")
    root = doc["plan_nodes"][0]
    n_base = sum(
        skewed_catalog.table(t).num_rows for t in ("fact", "link", "deal")
    )
    # pseudo-edge cardinality = post-filter region rows (2 hot regions),
    # not the raw 40-row region table or the 400-row supp table
    assert root["strategy"]["input_rows"] == float(n_base + 2)


def test_selective_filter_flips_the_root_decision(skewed_catalog):
    """Dropping the selective predicate changes the root's plan.

    With ``r_hot = 1`` the child collapses to 2 estimated rows and the
    root sees a cheap selective fragment; without it the child estimate
    is the 40-row region table and the root re-ranks.  Raw (pre-filter)
    estimates would make both queries plan identically.
    """
    engine = LevelHeadedEngine(skewed_catalog)
    filtered = engine.explain(SKEWED_SQL, format="json")["plan_nodes"][0]
    unfiltered_sql = SKEWED_SQL.replace("AND r_hot = 1", "")
    unfiltered = engine.explain(unfiltered_sql, format="json")["plan_nodes"][0]
    assert filtered["strategy"]["input_rows"] != unfiltered["strategy"]["input_rows"]
    assert (
        filtered["strategy"]["choice"],
        filtered["strategy"]["reason"],
    ) != (
        unfiltered["strategy"]["choice"],
        unfiltered["strategy"]["reason"],
    )
