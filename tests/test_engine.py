"""End-to-end engine tests: results checked against brute-force joins."""

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine, Schema, annotation, key
from repro.storage import AttrType, parse_date
from tests.conftest import make_matrix_catalog, make_mini_tpch

# ---------------------------------------------------------------------------
# brute-force reference
# ---------------------------------------------------------------------------


def _rows(table):
    names = table.schema.names
    return [
        {n: table.columns[n][i] for n in names} for i in range(table.num_rows)
    ]


def brute_force_join(catalog, table_aliases, join_conds, row_filter=None):
    """Nested-loop join; join_conds are (alias_a, col_a, alias_b, col_b)."""
    tables = {alias: _rows(catalog.table(name)) for alias, name in table_aliases}
    results = [{}]
    for alias, _name in table_aliases:
        expanded = []
        for partial in results:
            for row in tables[alias]:
                candidate = dict(partial)
                candidate.update({f"{alias}.{k}": v for k, v in row.items()})
                ok = True
                for a, ca, b, cb in join_conds:
                    left, right = f"{a}.{ca}", f"{b}.{cb}"
                    if left in candidate and right in candidate:
                        if candidate[left] != candidate[right]:
                            ok = False
                            break
                if ok:
                    expanded.append(candidate)
        results = expanded
    if row_filter is not None:
        results = [r for r in results if row_filter(r)]
    return results


def group_sum(rows, key_fn, value_fn):
    out = {}
    for row in rows:
        k = key_fn(row)
        out[k] = out.get(k, 0.0) + value_fn(row)
    return out


# ---------------------------------------------------------------------------
# linear algebra queries
# ---------------------------------------------------------------------------

MATMUL_SQL = (
    "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v FROM matrix m1, matrix m2 "
    "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
)
MATVEC_SQL = (
    "SELECT m.i, sum(m.v * x.v) AS v FROM matrix m, vector x "
    "WHERE m.j = x.i GROUP BY m.i"
)


def _dense_from(entries, n):
    dense = np.zeros((n, n))
    for i, j, v in entries:
        dense[i, j] = v
    return dense


def test_sparse_matmul_matches_numpy():
    entries = [(0, 0, 2.0), (0, 2, 4.0), (1, 0, 1.0), (3, 1, 3.0), (2, 3, 5.0)]
    catalog = make_matrix_catalog(entries, n=4)
    engine = LevelHeadedEngine(catalog)
    result = engine.query(MATMUL_SQL)
    expected = _dense_from(entries, 4) @ _dense_from(entries, 4)
    got = np.zeros((4, 4))
    for i, j, v in result.to_rows():
        got[int(i), int(j)] = v
    # sparse result: only nonzero (structurally present) entries appear
    assert np.allclose(got, expected)
    assert result.num_rows == int(np.count_nonzero(expected))


def test_sparse_matmul_uses_relaxed_order():
    catalog = make_matrix_catalog()
    engine = LevelHeadedEngine(catalog)
    plan = engine.compile(MATMUL_SQL)
    assert plan.mode == "join"
    assert plan.root.relaxed
    # MKL's loop order: the shared vertex sits between i and j
    assert plan.root.attrs[1] not in plan.root.materialized


def test_sparse_matvec():
    entries = [(0, 0, 2.0), (0, 2, 4.0), (1, 0, 1.0), (3, 1, 3.0)]
    catalog = make_matrix_catalog(entries, n=4)
    vec = Schema("vector", [key("i", domain="dim"), annotation("v")])
    from repro.storage import Table

    catalog.register(
        Table.from_columns(vec, i=[0, 1, 2, 3], v=[1.0, 2.0, 3.0, 4.0])
    )
    engine = LevelHeadedEngine(catalog)
    result = engine.query(MATVEC_SQL)
    expected = _dense_from(entries, 4) @ np.array([1.0, 2.0, 3.0, 4.0])
    for i, v in result.to_rows():
        assert v == pytest.approx(expected[int(i)])


def test_dense_matmul_routes_to_blas():
    n = 6
    rng = np.random.default_rng(0)
    dense = rng.normal(size=(n, n))
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    engine = LevelHeadedEngine()
    engine.create_table(
        Schema(
            "matrix",
            [key("i", domain="dim"), key("j", domain="dim"), annotation("v")],
        ),
        i=i.ravel(),
        j=j.ravel(),
        v=dense.ravel(),
    )
    plan = engine.compile(MATMUL_SQL)
    assert plan.mode == "blas"
    result = engine.execute(plan)
    expected = dense @ dense
    got = np.zeros((n, n))
    for a, b, v in result.to_rows():
        got[int(a), int(b)] = v
    assert np.allclose(got, expected)


def test_dense_matmul_without_blas_matches():
    n = 5
    rng = np.random.default_rng(1)
    dense = rng.normal(size=(n, n))
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    engine = LevelHeadedEngine(config=EngineConfig(enable_blas=False))
    engine.create_table(
        Schema(
            "matrix",
            [key("i", domain="dim"), key("j", domain="dim"), annotation("v")],
        ),
        i=i.ravel(),
        j=j.ravel(),
        v=dense.ravel(),
    )
    plan = engine.compile(MATMUL_SQL)
    assert plan.mode == "join"
    result = engine.execute(plan)
    got = np.zeros((n, n))
    for a, b, v in result.to_rows():
        got[int(a), int(b)] = v
    assert np.allclose(got, dense @ dense)


# ---------------------------------------------------------------------------
# BI-style joins on the mini TPC-H
# ---------------------------------------------------------------------------


def test_two_table_join_aggregate(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT c_name, sum(o_totalprice) AS total FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name"
    )
    rows = brute_force_join(
        mini_tpch,
        [("customer", "customer"), ("orders", "orders")],
        [("customer", "c_custkey", "orders", "o_custkey")],
    )
    expected = group_sum(
        rows, lambda r: r["customer.c_name"], lambda r: r["orders.o_totalprice"]
    )
    got = dict(result.to_rows())
    assert got.keys() == expected.keys()
    for name in expected:
        assert got[name] == pytest.approx(expected[name])


def test_three_table_join_with_duplicates(mini_tpch):
    """lineitem is keyed (orderkey) here -> duplicate multiplicities matter."""
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT c_name, sum(l_extendedprice * (1 - l_discount)) AS rev "
        "FROM customer, orders, lineitem "
        "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "GROUP BY c_name"
    )
    rows = brute_force_join(
        mini_tpch,
        [("customer", "customer"), ("orders", "orders"), ("lineitem", "lineitem")],
        [
            ("customer", "c_custkey", "orders", "o_custkey"),
            ("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ],
    )
    expected = group_sum(
        rows,
        lambda r: r["customer.c_name"],
        lambda r: r["lineitem.l_extendedprice"] * (1 - r["lineitem.l_discount"]),
    )
    got = dict(result.to_rows())
    for name in expected:
        assert got[name] == pytest.approx(expected[name])


Q5_SQL = """
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= date '1994-01-01'
  AND o_orderdate < date '1995-01-01'
GROUP BY n_name
"""


def _q5_expected(mini_tpch):
    lo, hi = parse_date("1994-01-01"), parse_date("1995-01-01")
    rows = brute_force_join(
        mini_tpch,
        [
            ("customer", "customer"),
            ("orders", "orders"),
            ("lineitem", "lineitem"),
            ("supplier", "supplier"),
            ("nation", "nation"),
            ("region", "region"),
        ],
        [
            ("customer", "c_custkey", "orders", "o_custkey"),
            ("lineitem", "l_orderkey", "orders", "o_orderkey"),
            ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            ("customer", "c_nationkey", "supplier", "s_nationkey"),
            ("supplier", "s_nationkey", "nation", "n_nationkey"),
            ("nation", "n_regionkey", "region", "r_regionkey"),
        ],
        row_filter=lambda r: (
            r["region.r_name"] == "ASIA" and lo <= r["orders.o_orderdate"] < hi
        ),
    )
    return group_sum(
        rows,
        lambda r: r["nation.n_name"],
        lambda r: r["lineitem.l_extendedprice"] * (1 - r["lineitem.l_discount"]),
    )


def test_q5_matches_brute_force(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(Q5_SQL)
    expected = _q5_expected(mini_tpch)
    assert expected, "fixture must produce a non-empty Q5 result"
    got = dict(result.to_rows())
    assert got.keys() == expected.keys()
    for name in expected:
        assert got[name] == pytest.approx(expected[name])


def test_q5_two_node_ghd(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    plan = engine.compile(Q5_SQL)
    assert plan.mode == "join"
    assert len(plan.root.children) == 1


@pytest.mark.parametrize(
    "config",
    [
        EngineConfig(enable_attribute_ordering=False),
        EngineConfig(enable_attribute_elimination=False, enable_blas=False),
        EngineConfig(enable_relaxation=False),
        EngineConfig(force_single_node_ghd=True),
        EngineConfig(parallel=True, num_threads=3),
    ],
    ids=["worst-order", "no-elimination", "no-relaxation", "single-node", "parallel"],
)
def test_q5_ablations_preserve_results(mini_tpch, config):
    engine = LevelHeadedEngine(mini_tpch, config=config)
    result = engine.query(Q5_SQL)
    expected = _q5_expected(mini_tpch)
    got = dict(result.to_rows())
    assert got.keys() == expected.keys()
    for name in expected:
        assert got[name] == pytest.approx(expected[name])


def test_group_by_key_and_annotations(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT l_orderkey, o_orderdate, sum(l_extendedprice) AS s "
        "FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "GROUP BY l_orderkey, o_orderdate"
    )
    rows = brute_force_join(
        mini_tpch,
        [("orders", "orders"), ("lineitem", "lineitem")],
        [("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )
    expected = group_sum(
        rows,
        lambda r: (r["orders.o_orderkey"], r["orders.o_orderdate"]),
        lambda r: r["lineitem.l_extendedprice"],
    )
    got = {(int(k), int(d)): v for k, d, v in result.to_rows()}
    assert got.keys() == expected.keys()
    for k in expected:
        assert got[k] == pytest.approx(expected[k])


def test_count_avg_min_max(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT count(*) AS n, avg(l_quantity) AS aq, min(l_quantity) AS mn, "
        "max(l_quantity) AS mx FROM lineitem"
    )
    quantities = mini_tpch.table("lineitem").column("l_quantity")
    n, aq, mn, mx = result.to_rows()[0]
    assert n == len(quantities)
    assert aq == pytest.approx(float(np.mean(quantities)))
    assert mn == pytest.approx(float(np.min(quantities)))
    assert mx == pytest.approx(float(np.max(quantities)))


def test_count_star_over_join_counts_multiplicities(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT count(*) AS n FROM orders, lineitem WHERE o_orderkey = l_orderkey"
    )
    rows = brute_force_join(
        mini_tpch,
        [("orders", "orders"), ("lineitem", "lineitem")],
        [("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )
    assert result.single_value() == len(rows)


def test_scan_query_group_by_annotation(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT l_suppkey, sum(l_quantity) AS q FROM lineitem GROUP BY l_suppkey"
    )
    table = mini_tpch.table("lineitem")
    expected = {}
    for sk, q in zip(table.column("l_suppkey"), table.column("l_quantity")):
        expected[int(sk)] = expected.get(int(sk), 0.0) + float(q)
    got = {int(k): v for k, v in result.to_rows()}
    assert got == pytest.approx(expected)


def test_scan_with_filter(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT sum(l_extendedprice * l_discount) AS rev FROM lineitem "
        "WHERE l_quantity < 8"
    )
    table = mini_tpch.table("lineitem")
    mask = table.column("l_quantity") < 8
    expected = float(
        np.sum(table.column("l_extendedprice")[mask] * table.column("l_discount")[mask])
    )
    assert result.single_value() == pytest.approx(expected)


def test_empty_result_global_aggregate(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT sum(l_quantity) AS q FROM lineitem WHERE l_quantity > 99999"
    )
    assert result.single_value() == 0.0


def test_empty_result_grouped(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT c_name, sum(o_totalprice) AS t FROM customer, orders "
        "WHERE c_custkey = o_custkey AND o_totalprice > 99999 GROUP BY c_name"
    )
    assert result.num_rows == 0


def test_plain_select_bag_semantics(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT c_custkey, c_name FROM customer, orders WHERE c_custkey = o_custkey"
    )
    rows = brute_force_join(
        mini_tpch,
        [("customer", "customer"), ("orders", "orders")],
        [("customer", "c_custkey", "orders", "o_custkey")],
    )
    expected = sorted(
        (int(r["customer.c_custkey"]), str(r["customer.c_name"])) for r in rows
    )
    got = sorted((int(k), str(n)) for k, n in result.to_rows())
    assert got == expected


def test_computed_group_by_year(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT extract(year from o_orderdate) AS o_year, sum(o_totalprice) AS t "
        "FROM orders GROUP BY extract(year from o_orderdate)"
    )
    table = mini_tpch.table("orders")
    import datetime

    expected = {}
    for d, p in zip(table.column("o_orderdate"), table.column("o_totalprice")):
        year = datetime.date.fromordinal(int(d)).year
        expected[year] = expected.get(year, 0.0) + float(p)
    got = {int(y): t for y, t in result.to_rows()}
    assert got == pytest.approx(expected)


def test_output_expression_over_aggregates(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    result = engine.query(
        "SELECT sum(l_extendedprice) / count(*) AS mean_price FROM lineitem"
    )
    table = mini_tpch.table("lineitem")
    assert result.single_value() == pytest.approx(
        float(np.mean(table.column("l_extendedprice")))
    )


def test_explain_smoke(mini_tpch):
    engine = LevelHeadedEngine(mini_tpch)
    text = engine.explain(Q5_SQL)
    assert "mode: join" in text
    assert "lineitem" in text


def test_engine_ingestion_roundtrip(tmp_path):
    engine = LevelHeadedEngine()
    schema = Schema("t", [key("k"), annotation("v")])
    path = tmp_path / "t.tbl"
    path.write_text("1|10.0|\n2|20.0|\n")
    engine.load_csv(str(path), schema)
    assert engine.query("SELECT sum(v) AS s FROM t").single_value() == pytest.approx(30.0)


def test_engine_from_dataframe():
    engine = LevelHeadedEngine()
    engine.from_dataframe({"k": np.array([1, 2]), "v": np.array([3.0, 4.0])}, name="df")
    assert engine.query("SELECT sum(v) AS s FROM df").single_value() == pytest.approx(7.0)
