"""Governance tests: deadlines, cancellation, admission, degradation.

Pins the PR-4 contract end to end:

* a deadline kills an adversarial triangle count within 1.5x the
  requested ``timeout_ms``, carrying partial stats and a span tree, and
  the engine serves the next query normally;
* ``QueryHandle.cancel()`` fires cross-thread cooperative cancellation;
* eight concurrent sessions behind one two-slot governor all complete
  (or surface :class:`RetryableAdmissionError`) -- never an unhandled
  :class:`OutOfMemoryBudgetError`;
* the degraded (sorted-sparse) aggregator returns rows identical to the
  dense dict-backed path;
* ``cancel_checks`` is a parallel-invariant counter (serial == 2 == 4
  threads);
* the removed free-function LA surface stays removed: registration
  goes through the engine's handle-first API.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro import (
    EngineConfig,
    LevelHeadedEngine,
    OutOfMemoryBudgetError,
    QueryCancelledError,
    QueryTimeoutError,
    RetryableAdmissionError,
    retry_admission,
)
from repro.core.governor import Governor
from repro.storage import Catalog, Schema, Table, key

TRIANGLE_SQL = (
    "SELECT count(*) AS triangles FROM edges e1, edges e2, edges e3 "
    "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
)

DEGREE_SQL = "SELECT src, count(*) AS degree FROM edges GROUP BY src"


def graph_catalog(n_nodes: int, n_edges: int, seed: int = 7) -> Catalog:
    rng = np.random.default_rng(seed)
    pairs = sorted(
        {(int(a), int(b)) for a, b in rng.integers(0, n_nodes, size=(n_edges, 2))}
    )
    catalog = Catalog()
    catalog.register(
        Table.from_columns(Schema("__v", [key("v", domain="node")]), v=np.arange(n_nodes))
    )
    catalog.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
            src=np.array([p[0] for p in pairs]),
            dst=np.array([p[1] for p in pairs]),
        )
    )
    return catalog


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


def test_timeout_kills_adversarial_triangle_within_budget():
    # ~2s of serial work; the 150ms deadline must kill it within 1.5x.
    engine = LevelHeadedEngine(
        graph_catalog(500, 20_000), config=EngineConfig(parallel=False)
    )
    start = time.perf_counter()
    with pytest.raises(QueryTimeoutError) as excinfo:
        engine.query(TRIANGLE_SQL, timeout_ms=150)
    elapsed_ms = (time.perf_counter() - start) * 1000
    assert elapsed_ms <= 1.5 * 150, f"kill took {elapsed_ms:.1f}ms"

    exc = excinfo.value
    assert exc.partial_stats is not None
    assert exc.partial_stats.cancel_checks > 0
    assert exc.trace_root is not None  # span tree for the slow-query log
    spans = exc.trace_root.render()
    assert "query" in spans

    # the engine is healthy afterwards: same session, next query runs.
    assert engine.query("SELECT count(*) AS n FROM edges").single_value() > 0
    assert engine.metrics.counter("query_timeouts") >= 1


def test_connect_default_timeout_applies_to_every_query():
    engine = repro.connect(catalog=graph_catalog(500, 20_000), timeout_ms=100)
    with pytest.raises(QueryTimeoutError):
        engine.query(TRIANGLE_SQL)
    # per-call override beats the session default.
    assert engine.query(DEGREE_SQL, timeout_ms=60_000).num_rows > 0


def test_timeout_error_reaches_prepared_statements():
    engine = LevelHeadedEngine(graph_catalog(500, 20_000))
    stmt = engine.prepare(TRIANGLE_SQL)
    with pytest.raises(QueryTimeoutError) as excinfo:
        stmt.execute(timeout_ms=100)
    assert excinfo.value.partial_stats is not None


# ---------------------------------------------------------------------------
# cooperative cancellation
# ---------------------------------------------------------------------------


def test_cross_thread_cancel_via_query_handle():
    engine = LevelHeadedEngine(graph_catalog(500, 20_000))
    handle = engine.submit(TRIANGLE_SQL)
    time.sleep(0.05)  # let the worker get into the join loops
    assert handle.cancel("operator hit the red button")
    with pytest.raises(QueryCancelledError) as excinfo:
        handle.result(timeout=30)
    assert "red button" in str(excinfo.value)
    assert excinfo.value.partial_stats is not None
    assert handle.done
    assert engine.metrics.counter("query_cancellations") >= 1


def test_cancel_token_shared_across_threads():
    engine = LevelHeadedEngine(graph_catalog(500, 20_000))
    token = repro.CancelToken()
    errors = []

    def run():
        try:
            engine.query(TRIANGLE_SQL, cancel_token=token)
        except QueryCancelledError as exc:
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    time.sleep(0.05)
    token.cancel("shutdown")
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert len(errors) == 1 and "shutdown" in str(errors[0])


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


def test_eight_concurrent_sessions_complete_or_shed():
    catalog = graph_catalog(150, 3_000)
    governor = Governor(
        max_concurrency=2, global_memory_budget_bytes=64 * 1024 * 1024
    )
    expected = LevelHeadedEngine(catalog).query(DEGREE_SQL).sorted_rows()

    results, failures = [], []

    def session(i: int) -> None:
        engine = LevelHeadedEngine(catalog, governor=governor)
        try:
            rows = retry_admission(
                lambda: engine.query(DEGREE_SQL).sorted_rows(), attempts=8
            )
            results.append(rows)
        except RetryableAdmissionError as exc:
            failures.append(exc)  # an acceptable, typed shed
        except OutOfMemoryBudgetError as exc:  # pragma: no cover
            pytest.fail(f"unhandled OOM escaped admission control: {exc}")

    threads = [threading.Thread(target=session, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert all(not t.is_alive() for t in threads)
    assert len(results) + len(failures) == 8
    assert results, "admission starved every session"
    for rows in results:
        assert rows == expected
    assert governor.counters["admitted"] >= len(results)


def test_queue_full_rejects_with_retryable_error():
    governor = Governor(max_concurrency=1, max_queue=0)
    engine = LevelHeadedEngine(
        graph_catalog(40, 300), governor=governor
    )
    held = governor.admit(cached=True, token=None)
    try:
        with pytest.raises(RetryableAdmissionError) as excinfo:
            engine.query(DEGREE_SQL)
        assert excinfo.value.retry_after_ms > 0
    finally:
        governor.release(held)
    # slot freed: the same query is admitted and runs.
    assert engine.query(DEGREE_SQL).num_rows > 0
    prom = engine.metrics.to_prometheus()
    assert "admission_rejected" in prom
    assert "admission_admitted" in prom


def test_load_shedding_rejects_non_cached_plans_first():
    catalog = graph_catalog(40, 300)
    engine = LevelHeadedEngine(catalog, governor=Governor(max_concurrency=4))
    engine.query(DEGREE_SQL)  # warm the plan cache
    engine.governor.set_load_shedding(True)
    try:
        # cached plan: cheap, still admitted.
        assert engine.query(DEGREE_SQL).num_rows > 0
        # non-cached plan: shed.
        with pytest.raises(RetryableAdmissionError):
            engine.query("SELECT count(*) AS n FROM edges")
    finally:
        engine.governor.set_load_shedding(False)
    assert engine.governor.counters["rejected_shedding"] >= 1


def test_memory_share_oom_converts_to_retryable():
    # The governor's per-slot share (not the plan's own budget) is the
    # binding constraint, so the kill surfaces as a typed, retryable
    # admission error rather than an unhandled OOM.
    engine = LevelHeadedEngine(
        graph_catalog(200, 6_000),
        config=EngineConfig(parallel=False, allow_degraded_aggregation=False),
        governor=Governor(max_concurrency=2, global_memory_budget_bytes=2_000),
    )
    with pytest.raises(RetryableAdmissionError) as excinfo:
        engine.query(DEGREE_SQL)
    assert "memory share" in str(excinfo.value)
    # without a governor the same query raises nothing (no budget at all).
    free = LevelHeadedEngine(
        graph_catalog(200, 6_000),
        config=EngineConfig(parallel=False, allow_degraded_aggregation=False),
    )
    assert free.query(DEGREE_SQL).num_rows > 0


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------


def _degradation_budget(catalog) -> int:
    # between the sorted-sparse footprint (8 + 8*(w+a) bytes/group) and
    # the dict footprint (64 + 8*(w+a) bytes/group) for DEGREE_SQL's
    # (src, count) groups: forces a spill that then fits.
    groups = len(set(catalog.table("edges").column("src").tolist()))
    return 48 * groups


def test_degraded_aggregator_matches_dense_results():
    catalog = graph_catalog(400, 12_000)
    dense = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=False)
    ).query(DEGREE_SQL, collect_stats=True)
    assert dense.stats.aggregator_spills == 0

    budget = _degradation_budget(catalog)
    degraded = LevelHeadedEngine(
        catalog,
        config=EngineConfig(parallel=False, memory_budget_bytes=budget),
    ).query(DEGREE_SQL, collect_stats=True)
    assert degraded.stats.aggregator_spills > 0
    assert degraded.sorted_rows() == dense.sorted_rows()


def test_degradation_disabled_raises_oom():
    catalog = graph_catalog(400, 12_000)
    engine = LevelHeadedEngine(
        catalog,
        config=EngineConfig(
            parallel=False,
            memory_budget_bytes=_degradation_budget(catalog),
            allow_degraded_aggregation=False,
        ),
    )
    with pytest.raises(OutOfMemoryBudgetError):
        engine.query(DEGREE_SQL)


def test_memory_pressure_sheds_plan_cache():
    governor = Governor(max_concurrency=2)
    engine = LevelHeadedEngine(graph_catalog(40, 300), governor=governor)
    for sql in (DEGREE_SQL, "SELECT count(*) AS n FROM edges"):
        engine.query(sql)
    assert len(engine.plan_cache) == 2
    governor.note_memory_pressure()
    assert len(engine.plan_cache) < 2
    assert engine.metrics.counter("memory_pressure_events") >= 1
    assert engine.metrics.counter("plan_cache_shed_entries") >= 1


def test_plan_cache_peek_does_not_count_or_touch():
    engine = LevelHeadedEngine(graph_catalog(40, 300))
    engine.query(DEGREE_SQL)
    hits = engine.plan_cache.stats.hits
    key = engine._plan_key(DEGREE_SQL, engine.config)
    assert engine.plan_cache.peek(key, engine.catalog) is True
    assert engine.plan_cache.stats.hits == hits  # peek is not a hit
    assert engine.plan_cache.peek(("nope", (), ()), engine.catalog) is False


# ---------------------------------------------------------------------------
# parallel invariance
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("threads", [2, 4])
def test_cancel_checks_counter_is_parallel_invariant(threads):
    catalog = graph_catalog(120, 1_500)
    serial = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=False)
    ).query(TRIANGLE_SQL, collect_stats=True, timeout_ms=600_000)
    parallel = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=True, num_threads=threads)
    ).query(TRIANGLE_SQL, collect_stats=True, timeout_ms=600_000)
    assert serial.single_value() == parallel.single_value()
    assert serial.stats.cancel_checks > 0
    assert serial.stats.cancel_checks == parallel.stats.cancel_checks


# ---------------------------------------------------------------------------
# the handle-first LA surface and its deprecation shims
# ---------------------------------------------------------------------------


def test_register_matrix_handles_round_trip():
    engine = LevelHeadedEngine()
    rng = np.random.default_rng(3)
    dense = rng.normal(size=(6, 6))
    m = engine.register_matrix("m", dense, domain="dim")
    assert m.n == 6 and m.nnz == 36
    assert np.allclose(m.to_dense(), dense)

    vec = rng.normal(size=6)
    v = engine.register_vector("x", vec, domain="dim")
    assert np.allclose(v.to_vector(), vec)
    assert np.allclose(v.to_dense(), vec)  # alias

    from repro.la import matvec_sql

    result = engine.query(matvec_sql("m", "x"))
    assert np.allclose(result.to_vector(6), dense @ vec)


def test_register_matrix_coo_form():
    engine = LevelHeadedEngine()
    m = engine.register_matrix(
        "m",
        rows=np.array([0, 1]),
        cols=np.array([1, 2]),
        values=np.array([2.0, 3.0]),
        n=4,
    )
    assert m.nnz == 2
    expected = np.zeros((4, 4))
    expected[[0, 1], [1, 2]] = [2.0, 3.0]
    assert np.allclose(m.to_dense(), expected)


def test_la_free_function_shims_are_gone():
    # the PR-4 free-function LA surface was removed with the
    # strategy-aware API redesign: register through the engine, densify
    # through ResultTable.to_dense / .to_vector
    import repro.la as la

    for name in (
        "register_coo",
        "register_dense",
        "register_vector",
        "result_to_dense",
        "result_to_vector",
    ):
        assert not hasattr(la, name), name


# ---------------------------------------------------------------------------
# QueryHandle slot hygiene (the PR-5 leak fix)
# ---------------------------------------------------------------------------


def test_abandoned_handle_releases_its_governor_slot():
    import gc

    governor = Governor(max_concurrency=1)
    engine = LevelHeadedEngine(
        graph_catalog(500, 20_000),
        config=EngineConfig(parallel=False),
        governor=governor,
    )
    handle = engine.submit(TRIANGLE_SQL)
    deadline = time.time() + 10
    while governor.snapshot()["active"] == 0 and time.time() < deadline:
        time.sleep(0.005)  # wait for the slot grant
    assert governor.snapshot()["active"] == 1
    # drop the only reference without result()/cancel()/close(): the
    # finalizer must fire the token and the slot must come back
    del handle
    gc.collect()
    deadline = time.time() + 20
    while governor.snapshot()["active"] and time.time() < deadline:
        time.sleep(0.01)
    assert governor.snapshot()["active"] == 0
    # the freed slot admits the next query normally
    assert engine.query(DEGREE_SQL).num_rows > 0


def test_handle_close_cancels_and_reclaims_slot():
    governor = Governor(max_concurrency=1)
    engine = LevelHeadedEngine(
        graph_catalog(500, 20_000),
        config=EngineConfig(parallel=False),
        governor=governor,
    )
    with engine.submit(TRIANGLE_SQL) as handle:
        pass  # __exit__ closes: cancel + wait for the slot
    assert handle.done
    assert isinstance(handle.exception(), QueryCancelledError)
    assert "query handle closed" in str(handle.exception())
    assert governor.snapshot()["active"] == 0
    handle.close()  # idempotent
    assert engine.query(DEGREE_SQL).num_rows > 0


def test_handle_close_after_result_keeps_result_readable():
    engine = LevelHeadedEngine(graph_catalog(40, 300), governor=Governor(max_concurrency=2))
    handle = engine.submit(DEGREE_SQL)
    rows = handle.result(timeout=60).num_rows
    handle.close()
    assert handle.result().num_rows == rows  # still readable after close
    assert engine.governor.snapshot()["active"] == 0
