"""Differential testing: LevelHeaded vs the pairwise engine vs brute force.

Property-based: random small databases and a family of query shapes;
every engine (and every optimizer configuration) must agree with a
nested-loop reference evaluation.  This is the strongest correctness
net in the suite -- any disagreement pinpoints a planner or executor
bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, LevelHeadedEngine
from repro.baselines import PairwiseEngine
from repro.storage import Catalog, Schema, Table, annotation, key

# ---------------------------------------------------------------------------
# random database
# ---------------------------------------------------------------------------


@st.composite
def small_database(draw):
    """Three tables joined in a chain r(a) -- s(a, b) -- t(b)."""
    n_keys = draw(st.integers(min_value=1, max_value=6))

    def rows(max_rows):
        return draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_keys - 1),
                    st.integers(0, n_keys - 1),
                    st.floats(min_value=-4, max_value=4, allow_nan=False),
                ),
                min_size=1,
                max_size=max_rows,
            )
        )

    return n_keys, rows(8), rows(14), rows(8)


def build_catalog(n_keys, r_rows, s_rows, t_rows) -> Catalog:
    catalog = Catalog()
    # anchor both domains so every engine encodes identically
    catalog.register(
        Table.from_columns(Schema("__a", [key("a", domain="ka")]), a=range(n_keys))
    )
    catalog.register(
        Table.from_columns(Schema("__b", [key("b", domain="kb")]), b=range(n_keys))
    )
    catalog.register(
        Table.from_columns(
            Schema("r", [key("r_a", domain="ka"), annotation("r_v")]),
            r_a=[x[0] for x in r_rows],
            r_v=[x[2] for x in r_rows],
        )
    )
    catalog.register(
        Table.from_columns(
            Schema(
                "s",
                [key("s_a", domain="ka"), key("s_b", domain="kb"), annotation("s_v")],
            ),
            s_a=[x[0] for x in s_rows],
            s_b=[x[1] for x in s_rows],
            s_v=[x[2] for x in s_rows],
        )
    )
    catalog.register(
        Table.from_columns(
            Schema("t", [key("t_b", domain="kb"), annotation("t_v")]),
            t_b=[x[0] for x in t_rows],
            t_v=[x[2] for x in t_rows],
        )
    )
    return catalog


def brute_force(r_rows, s_rows, t_rows):
    """Reference evaluation of the fixed chain query below."""
    groups = {}
    for ra, _rb, rv in r_rows:
        for sa, sb, sv in s_rows:
            if sa != ra:
                continue
            for tb, _tb2, tv in t_rows:
                if tb != sb:
                    continue
                entry = groups.setdefault(ra, [0.0, 0])
                entry[0] += rv * sv + tv
                entry[1] += 1
    return groups


CHAIN_SQL = """
SELECT r_a, sum(r_v * s_v + t_v) AS total, count(*) AS n
FROM r, s, t
WHERE r_a = s_a AND s_b = t_b
GROUP BY r_a
"""

CONFIGS = [
    EngineConfig(),
    EngineConfig(enable_attribute_ordering=False, enable_relaxation=False),
    EngineConfig(force_single_node_ghd=True),
    EngineConfig(enable_attribute_elimination=False, enable_blas=False),
]


@settings(max_examples=40, deadline=None)
@given(small_database())
def test_property_chain_query_all_engines_agree(db):
    n_keys, r_rows, s_rows, t_rows = db
    catalog = build_catalog(n_keys, r_rows, s_rows, t_rows)
    expected = brute_force(r_rows, s_rows, t_rows)

    results = []
    for config in CONFIGS:
        engine = LevelHeadedEngine(catalog, config=config)
        results.append(("lh", engine.query(CHAIN_SQL)))
    for planner in ("selinger", "fifo"):
        results.append(
            ("pw", PairwiseEngine(catalog, planner=planner).query(CHAIN_SQL))
        )

    for _name, result in results:
        got = {int(a): (total, int(n)) for a, total, n in result.to_rows()}
        assert got.keys() == expected.keys()
        for a, (total, n) in expected.items():
            assert got[a][0] == pytest.approx(total, abs=1e-7)
            assert got[a][1] == n


@settings(max_examples=25, deadline=None)
@given(small_database())
def test_property_plain_select_bag_semantics(db):
    n_keys, r_rows, s_rows, t_rows = db
    # plain selects require selected annotations to be determined by the
    # relation's keys (a documented engine restriction): dedupe r on r_a
    r_rows = list({row[0]: row for row in r_rows}.values())
    catalog = build_catalog(n_keys, r_rows, s_rows, t_rows)
    sql = "SELECT r_a, r_v FROM r, s WHERE r_a = s_a"
    lh = LevelHeadedEngine(catalog).query(sql).sorted_rows()
    pw = PairwiseEngine(catalog).query(sql).sorted_rows()
    assert len(lh) == len(pw)
    for a, b in zip(lh, pw):
        assert a == pytest.approx(b)


@settings(max_examples=25, deadline=None)
@given(small_database())
def test_property_min_max_agree(db):
    n_keys, r_rows, s_rows, t_rows = db
    catalog = build_catalog(n_keys, r_rows, s_rows, t_rows)
    sql = (
        "SELECT s_a, min(s_v) AS lo, max(s_v) AS hi FROM s, t "
        "WHERE s_b = t_b GROUP BY s_a"
    )
    lh = LevelHeadedEngine(catalog).query(sql).sorted_rows()
    pw = PairwiseEngine(catalog).query(sql).sorted_rows()
    assert len(lh) == len(pw)
    for a, b in zip(lh, pw):
        assert a == pytest.approx(b)


# ---------------------------------------------------------------------------
# cyclic (graph) queries: the WCOJ home turf
# ---------------------------------------------------------------------------


def _edges_catalog(edges, n):
    catalog = Catalog()
    catalog.register(
        Table.from_columns(Schema("__v", [key("v", domain="node")]), v=range(n))
    )
    catalog.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
            src=[e[0] for e in edges],
            dst=[e[1] for e in edges],
        )
    )
    return catalog


TRIANGLE_SQL = """
SELECT count(*) AS triangles
FROM edges e1, edges e2, edges e3
WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src
"""


def triangle_count_reference(edges):
    adj = set(edges)
    count = 0
    nodes = {x for e in edges for x in e}
    for a, b in adj:
        for c in nodes:
            if (b, c) in adj and (c, a) in adj:
                count += 1
    return count


def test_triangle_query_agrees_with_reference():
    rng = np.random.default_rng(3)
    n = 30
    edges = list({(int(a), int(b)) for a, b in rng.integers(0, n, size=(150, 2))})
    catalog = _edges_catalog(edges, n)
    expected = triangle_count_reference(edges)
    assert expected > 0
    lh = LevelHeadedEngine(catalog).query(TRIANGLE_SQL).single_value()
    pw = PairwiseEngine(catalog).query(TRIANGLE_SQL).single_value()
    assert lh == expected
    assert pw == expected


def test_triangle_query_plan_is_cyclic_single_node():
    catalog = _edges_catalog([(0, 1), (1, 2), (2, 0)], 3)
    engine = LevelHeadedEngine(catalog)
    plan = engine.compile(TRIANGLE_SQL)
    assert plan.mode == "join"
    assert len(plan.root.children) == 0  # FHW 1.5: one bag, pure WCOJ
    assert engine.query(TRIANGLE_SQL).single_value() == 3  # one per rotation


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=1,
        max_size=60,
        unique=True,
    )
)
def test_property_triangle_counting(edges):
    catalog = _edges_catalog(edges, 13)
    expected = triangle_count_reference(edges)
    got = LevelHeadedEngine(catalog).query(TRIANGLE_SQL).single_value()
    assert got == expected
