"""Unit and property tests for dictionary encoding and trie construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.sets import Layout
from repro.trie import AnnotationSpec, Dictionary, build_trie

# ---------------------------------------------------------------------------
# Dictionary
# ---------------------------------------------------------------------------


def test_dictionary_int_roundtrip():
    d = Dictionary.build(np.array([30, 10, 20, 10]))
    codes = d.encode(np.array([10, 20, 30]))
    assert list(codes) == [0, 1, 2]
    assert list(d.decode(codes)) == [10, 20, 30]


def test_dictionary_identity_fast_path():
    d = Dictionary.build(np.arange(100))
    assert d._is_identity
    codes = d.encode(np.array([5, 99]))
    assert list(codes) == [5, 99]
    with pytest.raises(SchemaError):
        d.encode(np.array([100]))


def test_dictionary_strings_order_preserving():
    d = Dictionary.build(np.array(["pear", "apple", "fig"]))
    codes = d.encode(np.array(["apple", "fig", "pear"]))
    assert list(codes) == [0, 1, 2]


def test_dictionary_unknown_value_raises():
    d = Dictionary.build(np.array([1, 2, 3]))
    with pytest.raises(SchemaError):
        d.encode(np.array([4]))


def test_dictionary_try_encode_scalar():
    d = Dictionary.build(np.array(["ASIA", "EUROPE"]))
    assert d.try_encode_scalar("ASIA") == 0
    assert d.try_encode_scalar("MARS") is None


def test_dictionary_encode_bound_range_semantics():
    d = Dictionary.build(np.array([10, 20, 30, 40]))
    # raw predicate 15 <= v < 35  ==  code in [1, 3)
    assert d.encode_bound(15, "lower") == 1
    assert d.encode_bound(35, "upper") == 3
    # inclusive endpoints
    assert d.encode_bound(20, "lower") == 1
    assert d.encode_bound(30, "upper") == 3
    with pytest.raises(ValueError):
        d.encode_bound(1, "middle")


def test_dictionary_extend_recodes():
    d = Dictionary.build(np.array([10, 30]))
    d2 = d.extend(np.array([20]))
    assert list(d2.encode(np.array([10, 20, 30]))) == [0, 1, 2]


def test_dictionary_empty():
    d = Dictionary.build(np.array([], dtype=np.int64))
    assert len(d) == 0
    assert d.try_encode_scalar(5) is None


# ---------------------------------------------------------------------------
# trie construction
# ---------------------------------------------------------------------------


def _matrix_trie():
    # The matrix from Figure 3: (0,0)=0.2 (0,2)=0.4 (1,0)=0.1 (3,1)=0.3
    i = np.array([0, 0, 1, 3], dtype=np.uint32)
    j = np.array([0, 2, 0, 1], dtype=np.uint32)
    v = np.array([0.2, 0.4, 0.1, 0.3])
    return build_trie(
        [i, j], ["i", "j"], [AnnotationSpec("v", v, level=1, combine="sum")]
    )


def test_trie_structure_matches_figure3():
    t = _matrix_trie()
    assert t.arity == 2
    assert t.num_tuples == 4
    assert list(t.root_set().to_array()) == [0, 1, 3]
    # children of i=0 are {0, 2}; of i=1 {0}; of i=3 {1}
    assert list(t.level(1).values_for(0)) == [0, 2]
    assert list(t.level(1).values_for(1)) == [0]
    assert list(t.level(1).values_for(2)) == [1]


def test_trie_lookup_node_and_annotation():
    t = _matrix_trie()
    node = t.lookup_node([0, 2])
    assert node is not None
    assert t.annotation("v").values[node] == pytest.approx(0.4)
    assert t.lookup_node([2, 0]) is None
    assert t.lookup_node([0, 1]) is None


def test_trie_tuples_roundtrip():
    t = _matrix_trie()
    tuples = t.tuples()
    expect = np.array([[0, 0], [0, 2], [1, 0], [3, 1]], dtype=np.uint32)
    assert np.array_equal(tuples, expect)


def test_trie_duplicate_keys_presum():
    # duplicate (i=1, j=1) rows collapse; 'sum' combines annotations
    i = np.array([1, 1, 1], dtype=np.uint32)
    j = np.array([1, 1, 2], dtype=np.uint32)
    v = np.array([1.0, 2.0, 5.0])
    t = build_trie([i, j], ["i", "j"], [AnnotationSpec("v", v, 1, "sum")])
    assert t.num_tuples == 2
    node = t.lookup_node([1, 1])
    assert t.annotation("v").values[node] == pytest.approx(3.0)


@pytest.mark.parametrize(
    "combine,expected",
    [("sum", 3.0), ("first", 1.0), ("min", 1.0), ("max", 2.0)],
)
def test_trie_combine_modes(combine, expected):
    i = np.array([7, 7], dtype=np.uint32)
    v = np.array([1.0, 2.0])
    t = build_trie([i], ["i"], [AnnotationSpec("v", v, 0, combine)])
    assert t.annotation("v").values[0] == pytest.approx(expected)


def test_trie_count_combine():
    i = np.array([7, 7, 9], dtype=np.uint32)
    t = build_trie([i], ["i"], [AnnotationSpec("cnt", None, 0, "count")])
    assert list(t.annotation("cnt").values) == [2, 1]


def test_trie_annotation_at_outer_level():
    # annotation functionally determined by the first key only
    ok = np.array([1, 1, 2], dtype=np.uint32)
    sk = np.array([4, 5, 4], dtype=np.uint32)
    date = np.array([100, 100, 200], dtype=np.int64)
    t = build_trie(
        [ok, sk], ["ok", "sk"], [AnnotationSpec("date", date, 0, "first")]
    )
    assert list(t.annotation("date").values) == [100, 200]
    assert t.annotation("date").level == 0


def test_trie_unsorted_input_rows():
    i = np.array([3, 0, 1, 0], dtype=np.uint32)
    j = np.array([1, 2, 0, 0], dtype=np.uint32)
    v = np.array([0.3, 0.4, 0.1, 0.2])
    t = build_trie([i, j], ["i", "j"], [AnnotationSpec("v", v, 1, "sum")])
    assert t.annotation("v").values[t.lookup_node([0, 0])] == pytest.approx(0.2)
    assert t.annotation("v").values[t.lookup_node([3, 1])] == pytest.approx(0.3)


def test_trie_dense_level_detection():
    # complete 4x4 grid with domain sizes given -> both levels dense
    n = 4
    i, j = np.meshgrid(np.arange(n, dtype=np.uint32), np.arange(n, dtype=np.uint32))
    t = build_trie(
        [i.ravel(), j.ravel()], ["i", "j"], domain_sizes=[n, n]
    )
    assert t.dense_levels == (True, True)
    assert t.is_fully_dense


def test_trie_sparse_level_not_dense():
    i = np.array([0, 2], dtype=np.uint32)
    t = build_trie([i], ["i"], domain_sizes=[4])
    assert t.dense_levels == (False,)


def test_trie_layout_choice_per_set():
    # a dense run of 64 values -> bitset; 3 scattered values -> uint
    dense_parent = np.zeros(64, dtype=np.uint32)
    dense_child = np.arange(64, dtype=np.uint32)
    sparse_parent = np.ones(3, dtype=np.uint32)
    sparse_child = np.array([0, 1000, 2000], dtype=np.uint32)
    t = build_trie(
        [
            np.concatenate([dense_parent, sparse_parent]),
            np.concatenate([dense_child, sparse_child]),
        ],
        ["a", "b"],
    )
    assert t.level(1).layout_for(0) is Layout.BITSET
    assert t.level(1).layout_for(1) is Layout.UINT


def test_trie_force_layout():
    i = np.array([0, 1000], dtype=np.uint32)
    t = build_trie([i], ["i"], force_layout=Layout.BITSET)
    assert t.level(0).layout_for(0) is Layout.BITSET


def test_trie_empty_input():
    t = build_trie(
        [np.empty(0, dtype=np.uint32)], ["i"], [AnnotationSpec("v", np.empty(0), 0, "sum")]
    )
    assert t.num_tuples == 0
    assert len(t.root_set()) == 0


def test_trie_validation_errors():
    i = np.array([1], dtype=np.uint32)
    j = np.array([1, 2], dtype=np.uint32)
    with pytest.raises(SchemaError):
        build_trie([i, j], ["i", "j"])
    with pytest.raises(SchemaError):
        build_trie([], [])
    with pytest.raises(SchemaError):
        build_trie([i], ["i"], [AnnotationSpec("v", np.array([1.0, 2.0]), 0, "sum")])
    with pytest.raises(SchemaError):
        build_trie([i], ["i"], [AnnotationSpec("v", np.array([1.0]), 5, "sum")])
    with pytest.raises(SchemaError):
        AnnotationSpec("v", np.array([1.0]), 0, "median")
    with pytest.raises(SchemaError):
        AnnotationSpec("v", None, 0, "sum")


def test_trie_child_base_consistency():
    t = _matrix_trie()
    level1 = t.level(1)
    # node ids at level 1 are positional: child_base(parent) + rank
    assert level1.child_base(0) == 0
    assert level1.child_base(1) == 2
    assert level1.child_base(2) == 3


# ---------------------------------------------------------------------------
# property-based: trie agrees with a dict-of-dicts model
# ---------------------------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    max_size=120,
)


@settings(max_examples=50, deadline=None)
@given(rows_strategy)
def test_property_trie_matches_model(rows):
    model = {}
    for a, b, v in rows:
        model[(a, b)] = model.get((a, b), 0.0) + v
    if rows:
        i = np.array([r[0] for r in rows], dtype=np.uint32)
        j = np.array([r[1] for r in rows], dtype=np.uint32)
        v = np.array([r[2] for r in rows])
    else:
        i = j = np.empty(0, dtype=np.uint32)
        v = np.empty(0)
    t = build_trie([i, j], ["i", "j"], [AnnotationSpec("v", v, 1, "sum")])
    assert t.num_tuples == len(model)
    ann = t.annotation("v").values
    for (a, b), expect in model.items():
        node = t.lookup_node([a, b])
        assert node is not None
        assert ann[node] == pytest.approx(expect, abs=1e-9)
    # absent tuples stay absent
    assert t.lookup_node([41, 0]) is None
