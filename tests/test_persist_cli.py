"""Tests for catalog persistence, the CLI shell, and the extra queries."""

import numpy as np
import pytest

from repro import LevelHeadedEngine, SchemaError
from repro.baselines import PairwiseEngine
from repro.cli import _handle_line, main, run_statement
from repro.datasets import generate_tpch
from repro.datasets.tpch import EXTRA_QUERIES
from repro.storage import load_catalog, load_schemas, save_catalog
from tests.conftest import make_mini_tpch

# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def test_save_load_catalog_roundtrip(tmp_path):
    catalog = make_mini_tpch()
    directory = str(tmp_path / "db")
    save_catalog(catalog, directory)
    loaded = load_catalog(directory)
    assert set(loaded.names()) == set(catalog.names())
    for name in catalog.names():
        original, restored = catalog.table(name), loaded.table(name)
        assert restored.num_rows == original.num_rows
        for attr in original.schema.attributes:
            a, b = original.column(attr.name), restored.column(attr.name)
            if np.issubdtype(a.dtype, np.floating):
                assert np.allclose(a, b)
            else:
                assert list(a) == list(b)
        # key/annotation classification and domains survive
        assert restored.schema.key_names == original.schema.key_names
        for attr in original.schema.attributes:
            assert (
                restored.schema.attribute(attr.name).domain_name == attr.domain_name
            )


def test_saved_catalog_queries_identically(tmp_path):
    catalog = make_mini_tpch()
    directory = str(tmp_path / "db")
    save_catalog(catalog, directory)
    loaded = load_catalog(directory)
    sql = (
        "SELECT c_name, sum(o_totalprice) AS t FROM customer, orders "
        "WHERE c_custkey = o_custkey GROUP BY c_name"
    )
    before = LevelHeadedEngine(catalog).query(sql).sorted_rows()
    after = LevelHeadedEngine(loaded).query(sql).sorted_rows()
    assert before == pytest.approx(after)


def test_load_schemas_only(tmp_path):
    catalog = make_mini_tpch()
    directory = str(tmp_path / "db")
    save_catalog(catalog, directory)
    schemas = load_schemas(directory)
    assert "lineitem" in schemas
    assert schemas["lineitem"].key_names == ("l_orderkey", "l_suppkey")


def test_load_catalog_missing_manifest(tmp_path):
    with pytest.raises(SchemaError):
        load_catalog(str(tmp_path))
    with pytest.raises(SchemaError):
        load_schemas(str(tmp_path))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def saved_db(tmp_path):
    directory = str(tmp_path / "db")
    save_catalog(make_mini_tpch(), directory)
    return directory


def test_cli_execute_statement(saved_db, capsys):
    status = main([saved_db, "-e", "SELECT sum(o_totalprice) AS t FROM orders"])
    out = capsys.readouterr().out
    assert status == 0
    assert "t" in out and "rows in" in out


def test_cli_explain(saved_db, capsys):
    status = main([saved_db, "--explain", "-e", "SELECT sum(o_totalprice) AS t FROM orders"])
    out = capsys.readouterr().out
    assert status == 0
    assert "mode: scan" in out


def test_cli_bad_sql_sets_status(saved_db, capsys):
    status = main([saved_db, "-e", "SELEKT nope"])
    assert status == 1
    assert "error" in capsys.readouterr().err


def test_cli_missing_directory(tmp_path, capsys):
    status = main([str(tmp_path / "nope")])
    assert status == 2


def test_cli_shell_commands(saved_db):
    engine = LevelHeadedEngine(load_catalog(saved_db))
    assert "orders" in _handle_line(engine, "\\d")
    schema_text = _handle_line(engine, "\\d lineitem")
    assert "l_orderkey" in schema_text and "[key]" in schema_text
    assert _handle_line(engine, "") == ""
    assert _handle_line(engine, "\\q") is None
    assert "error" in _handle_line(engine, "SELECT nope FROM orders")
    explained = _handle_line(engine, "\\explain SELECT sum(o_totalprice) AS t FROM orders")
    assert "mode: scan" in explained


def test_cli_run_statement_output_shape(saved_db):
    engine = LevelHeadedEngine(load_catalog(saved_db))
    text = run_statement(engine, "SELECT count(*) AS n FROM lineitem")
    assert "n" in text and "1 rows" in text


def test_cli_top_and_last(saved_db):
    engine = LevelHeadedEngine(load_catalog(saved_db))
    top = _handle_line(engine, "\\top")
    assert "in-flight queries: 0" in top and "governor: none" in top
    empty = _handle_line(engine, "\\last")
    assert "(no completed queries)" in empty
    _handle_line(engine, "SELECT count(*) AS n FROM lineitem")
    _handle_line(engine, "SELECT count(*) AS n FROM orders")
    last = _handle_line(engine, "\\last")
    assert "ok" in last and "FROM orders" in last and "FROM lineitem" in last
    assert last.index("FROM orders") < last.index("FROM lineitem")  # newest first
    only_one = _handle_line(engine, "\\last 1")
    assert "FROM orders" in only_one and "FROM lineitem" not in only_one
    assert "error" in _handle_line(engine, "\\last zero")


# ---------------------------------------------------------------------------
# extra TPC-H queries (beyond the paper's seven)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch():
    # large enough that every nation has suppliers (Q11's GERMANY filter)
    return generate_tpch(scale_factor=0.005, seed=23)


@pytest.mark.parametrize("name", list(EXTRA_QUERIES))
def test_extra_queries_agree_across_engines(tpch, name):
    sql = EXTRA_QUERIES[name]
    lh = LevelHeadedEngine(tpch).query(sql).sorted_rows()
    pw = PairwiseEngine(tpch).query(sql).sorted_rows()
    assert len(lh) > 0
    assert len(lh) == len(pw)
    for a, b in zip(lh, pw):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-7)


def test_q14_promo_share_is_percentage(tpch):
    result = LevelHeadedEngine(tpch).query(EXTRA_QUERIES["Q14"])
    value = result.single_value()
    assert 0.0 <= value <= 100.0
