"""Tests for semiring matrix kernels (AJAR beyond sum-product)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.la import distances_to_target, semiring_matmul, semiring_matvec
from repro.la.matrix import matrix_schema
from repro.query import MAX_MIN, MAX_PRODUCT, MIN_PLUS, SUM_PRODUCT
from repro.storage import Table


def _matrix_table(entries, name="m"):
    return Table.from_columns(
        matrix_schema(name, "dim"),
        i=[e[0] for e in entries],
        j=[e[1] for e in entries],
        v=[e[2] for e in entries],
    )


def _dense(entries, n, fill):
    out = np.full((n, n), fill)
    for i, j, v in entries:
        out[i, j] = v
    return out


ENTRIES_A = [(0, 1, 2.0), (0, 2, 8.0), (1, 2, 3.0), (2, 0, 1.0), (3, 1, 4.0)]
ENTRIES_B = [(1, 3, 5.0), (2, 3, 1.0), (2, 1, 7.0), (0, 0, 2.0)]


def test_semiring_matmul_sum_product_matches_dense():
    a, b = _matrix_table(ENTRIES_A), _matrix_table(ENTRIES_B, "b")
    result = semiring_matmul(a, b, SUM_PRODUCT)
    dense = _dense(ENTRIES_A, 4, 0.0) @ _dense(ENTRIES_B, 4, 0.0)
    for (i, j), value in result.items():
        assert value == pytest.approx(dense[i, j])
    # every structurally-present output appears
    assert np.count_nonzero(dense) == len(
        {(i, j) for (i, j), v in result.items() if v != 0}
    )


def test_semiring_matmul_min_plus_is_distance_product():
    a, b = _matrix_table(ENTRIES_A), _matrix_table(ENTRIES_B, "b")
    result = semiring_matmul(a, b, MIN_PLUS)
    da = _dense(ENTRIES_A, 4, np.inf)
    db = _dense(ENTRIES_B, 4, np.inf)
    expected = np.min(da[:, :, None] + db[None, :, :], axis=1)
    for (i, j), value in result.items():
        assert value == pytest.approx(expected[i, j])


def test_semiring_matvec_max_min_widest_path_step():
    a = _matrix_table(ENTRIES_A)
    x = np.array([1.0, 10.0, 2.0, 5.0])
    result = semiring_matvec(a, x, MAX_MIN)
    dense = _dense(ENTRIES_A, 4, -np.inf)
    expected = np.max(np.minimum(dense, x[None, :]), axis=1)
    for i in range(4):
        if np.isinf(expected[i]):
            assert result[i] == MAX_MIN.zero
        else:
            assert result[i] == pytest.approx(expected[i])


def test_distances_to_target_bellman_ford():
    # 0 ->(1) 1 ->(2) 2 ->(1) 3, plus a shortcut 0 ->(10) 3
    edges = _matrix_table(
        [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 10.0)]
    )
    distances = distances_to_target(edges, target=3, n=4)
    assert distances[3] == 0.0
    assert distances[2] == pytest.approx(1.0)
    assert distances[1] == pytest.approx(3.0)
    assert distances[0] == pytest.approx(4.0)  # beats the 10.0 shortcut


def test_distances_to_target_unreachable_is_inf():
    # directed: only node 1 can reach target 0; node 2 cannot
    edges = _matrix_table([(1, 0, 1.0)])
    distances = distances_to_target(edges, target=0, n=3)
    assert distances[1] == pytest.approx(1.0)
    assert np.isinf(distances[2])


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6),
                  st.floats(min_value=0.1, max_value=9, allow_nan=False)),
        min_size=1,
        max_size=25,
    ),
    st.integers(0, 6),
)
def test_property_distances_match_floyd_warshall(entries, target):
    # last write wins per coordinate in the reference too
    unique = {(i, j): v for i, j, v in entries}
    entries = [(i, j, v) for (i, j), v in unique.items()]
    edges = _matrix_table(entries)
    n = 7
    dense = np.full((n, n), np.inf)
    for i, j, v in entries:
        dense[i, j] = min(dense[i, j], v)
    np.fill_diagonal(dense, np.minimum(np.diag(dense), 0.0))
    # Floyd-Warshall reference
    ref = dense.copy()
    np.fill_diagonal(ref, 0.0)
    for k in range(n):
        ref = np.minimum(ref, ref[:, k][:, None] + ref[k, :][None, :])
    got = distances_to_target(edges, target=target, n=n)
    assert np.allclose(got, ref[:, target], equal_nan=False)
