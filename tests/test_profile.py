"""Tests for the kernel profiler (``repro.obs.profile``): per-trie-level
time attribution, layout dispatch counters, and report rendering."""

import re

import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.obs import KernelProfiler, activate
from repro.obs import profile as profile_module
from tests.conftest import make_mini_tpch
from tests.test_engine import Q5_SQL


@pytest.fixture(scope="module")
def engine():
    return LevelHeadedEngine(make_mini_tpch())


def test_profile_off_by_default(engine):
    result = engine.query(Q5_SQL)
    assert result.profile is None
    assert profile_module.ACTIVE is None


def test_profile_attributes_execution_time():
    # serial execution: under parallel the level times are worker
    # thread time, which legitimately diverges from fan-out wall time
    engine = LevelHeadedEngine(
        make_mini_tpch(), config=EngineConfig(parallel=False)
    )
    result = engine.query(Q5_SQL, profile=True)
    prof = result.profile
    assert isinstance(prof, KernelProfiler)
    assert prof.execute_seconds > 0
    # the acceptance bar: per-level + category times account for the
    # execute span to within 20%
    attributed = prof.attributed_seconds()
    assert attributed == pytest.approx(prof.execute_seconds, rel=0.2)
    assert profile_module.ACTIVE is None  # deactivated after the query


def test_profile_counters_shape(engine):
    prof = engine.query(Q5_SQL, profile=True).profile
    counters = prof.counters()
    assert set(counters) == {
        "kernel_counts", "layout_mix", "bytes_intersected",
        "intersection_values", "trie_builds", "trie_bytes",
        "lazy_builds", "lazy_pruned_builds", "lazy_trie_bytes",
    }
    assert sum(counters["kernel_counts"].values()) > 0
    assert set(counters["layout_mix"]) == {"bitset", "uint", "dense"}
    assert counters["bytes_intersected"] > 0
    # every kernel invocation touches exactly two operands
    assert sum(counters["layout_mix"].values()) >= \
        2 * sum(counters["kernel_counts"].values()) - counters["layout_mix"]["dense"]


def test_profile_level_rows_cover_the_join(engine):
    prof = engine.query(Q5_SQL, profile=True).profile
    rows = prof.level_rows()
    assert rows, "expected per-level attribution rows"
    for row in rows:
        assert set(row) == {"node", "level", "attr", "seconds"}
        assert isinstance(row["node"], str)
        assert isinstance(row["level"], int) and row["level"] >= 0
        assert isinstance(row["attr"], str)
        assert row["seconds"] >= 0.0


def test_profile_collapsed_stack_format(engine):
    prof = engine.query(Q5_SQL, profile=True).profile
    lines = prof.collapsed_stacks()
    assert lines
    pattern = re.compile(r"^execute(;[^ ;]+)+ \d+$")
    for line in lines:
        assert pattern.match(line), line
    assert any(";level0:" in line for line in lines)


def test_profile_render_smoke(engine):
    text = engine.query(Q5_SQL, profile=True).profile.render()
    assert "kernel profile" in text
    assert "execute" in text
    assert "layout mix" in text
    assert "aggregator high-water" in text


def test_profile_via_execute_and_prepared(engine):
    plan = engine.compile(Q5_SQL)
    result = engine.execute(plan, profile=True)
    assert result.profile is not None and result.profile.execute_seconds > 0
    stmt = engine.prepare(Q5_SQL)
    result = stmt.execute(profile=True)
    assert result.profile is not None


def test_profile_records_trie_builds():
    # a fresh engine so the first query builds its tries while profiling
    engine = LevelHeadedEngine(make_mini_tpch())
    prof = engine.query(Q5_SQL, profile=True).profile
    counters = prof.counters()
    assert counters["trie_builds"] > 0
    assert counters["trie_bytes"] > 0
    assert all(b["tuples"] >= 0 for b in prof.trie_builds)


def test_activate_is_reentrant_and_restores():
    outer, inner = KernelProfiler(), KernelProfiler()
    assert profile_module.ACTIVE is None
    with activate(outer):
        assert profile_module.ACTIVE is outer
        with activate(inner):
            assert profile_module.ACTIVE is inner
        assert profile_module.ACTIVE is outer
    assert profile_module.ACTIVE is None


def test_parallel_profile_counters_match_serial():
    catalog = make_mini_tpch()
    serial = LevelHeadedEngine(catalog, config=EngineConfig(parallel=False))
    parallel = LevelHeadedEngine(
        catalog, config=EngineConfig(parallel=True, num_threads=4)
    )
    s = serial.query(Q5_SQL, profile=True).profile
    p = parallel.query(Q5_SQL, profile=True).profile
    assert s.counters() == p.counters()
