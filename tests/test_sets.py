"""Unit and property tests for the set layouts and intersection kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import (
    BitSet,
    Layout,
    UintSet,
    choose_layout,
    difference,
    from_unsorted,
    intersect,
    intersect_many,
    make_set,
    popcount64,
    union,
    union_many,
)

# ---------------------------------------------------------------------------
# layout selection
# ---------------------------------------------------------------------------


def test_choose_layout_small_sets_stay_uint():
    assert choose_layout(3, 0, 2) is Layout.UINT


def test_choose_layout_dense_range_is_bitset():
    assert choose_layout(100, 0, 99) is Layout.BITSET


def test_choose_layout_sparse_range_is_uint():
    assert choose_layout(100, 0, 1_000_000) is Layout.UINT


def test_make_set_respects_force_layout():
    values = np.array([5, 900000], dtype=np.uint32)
    assert make_set(values, force_layout=Layout.BITSET).layout is Layout.BITSET
    dense = np.arange(100, dtype=np.uint32)
    assert make_set(dense, force_layout=Layout.UINT).layout is Layout.UINT


# ---------------------------------------------------------------------------
# UintSet
# ---------------------------------------------------------------------------


def test_uintset_basic_protocol():
    s = UintSet(np.array([1, 5, 9], dtype=np.uint32))
    assert len(s) == 3
    assert s.cardinality == 3
    assert list(s) == [1, 5, 9]
    assert s.min_value == 1 and s.max_value == 9
    assert s.contains(5) and not s.contains(4)


def test_uintset_from_unsorted_dedupes_and_sorts():
    s = UintSet.from_unsorted(np.array([9, 1, 5, 1, 9]))
    assert np.array_equal(s.to_array(), np.array([1, 5, 9], dtype=np.uint32))


def test_uintset_empty():
    s = UintSet.empty()
    assert len(s) == 0 and not s
    with pytest.raises(ValueError):
        _ = s.min_value


def test_uintset_rank_and_rank_many():
    s = UintSet(np.array([2, 4, 8, 16], dtype=np.uint32))
    assert s.rank(2) == 0
    assert s.rank(16) == 3
    assert np.array_equal(s.rank_many(np.array([4, 8])), np.array([1, 2]))
    with pytest.raises(KeyError):
        s.rank(3)


def test_uintset_contains_many():
    s = UintSet(np.array([2, 4, 8], dtype=np.uint32))
    mask = s.contains_many(np.array([1, 2, 4, 9, 8]))
    assert list(mask) == [False, True, True, False, True]


def test_uintset_select():
    s = UintSet(np.array([2, 4, 8], dtype=np.uint32))
    picked = s.select(np.array([True, False, True]))
    assert list(picked.to_array()) == [2, 8]


# ---------------------------------------------------------------------------
# BitSet
# ---------------------------------------------------------------------------


def test_popcount64_known_values():
    words = np.array([0, 1, 0xFF, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
    assert list(popcount64(words)) == [0, 1, 8, 64]


def test_bitset_roundtrip():
    values = np.array([0, 1, 63, 64, 200], dtype=np.uint32)
    bs = BitSet.from_values(values)
    assert bs.cardinality == 5
    assert np.array_equal(bs.to_array(), values)


def test_bitset_base_is_aligned_and_offset():
    values = np.array([130, 140, 190], dtype=np.uint32)
    bs = BitSet.from_values(values)
    assert bs.base == 128
    assert np.array_equal(bs.to_array(), values)


def test_bitset_contains():
    bs = BitSet.from_values(np.array([10, 70, 200], dtype=np.uint32))
    assert bs.contains(70)
    assert not bs.contains(71)
    assert not bs.contains(5)  # below base
    assert not bs.contains(100000)  # above range


def test_bitset_contains_many():
    bs = BitSet.from_values(np.array([10, 70, 200], dtype=np.uint32))
    mask = bs.contains_many(np.array([9, 10, 70, 199, 200, 5000]))
    assert list(mask) == [False, True, True, False, True, False]


def test_bitset_rank():
    values = np.array([3, 64, 65, 300], dtype=np.uint32)
    bs = BitSet.from_values(values)
    for i, v in enumerate(values):
        assert bs.rank(int(v)) == i
    assert np.array_equal(bs.rank_many(values), np.arange(4))
    with pytest.raises(KeyError):
        bs.rank(4)


def test_bitset_full_range():
    bs = BitSet.full_range(5, 133)
    assert bs.cardinality == 128
    assert np.array_equal(bs.to_array(), np.arange(5, 133, dtype=np.uint32))


def test_bitset_full_range_empty():
    assert BitSet.full_range(7, 7).cardinality == 0


def test_bitset_requires_aligned_base():
    with pytest.raises(ValueError):
        BitSet(3, np.zeros(1, dtype=np.uint64))


def test_bitset_select():
    bs = BitSet.from_values(np.array([1, 2, 3], dtype=np.uint32))
    picked = bs.select(np.array([True, False, True]))
    assert list(picked.to_array()) == [1, 3]


def test_bitset_min_max_word_boundaries():
    # endpoints at word edges, mid-word, and across zero words
    for values in (
        [0],
        [63],
        [64],
        [0, 63],
        [63, 64],
        [5, 700],
        [130, 140, 190],
        [64, 128, 1000, 4097],
    ):
        bs = BitSet.from_values(np.array(values, dtype=np.uint32))
        assert bs.min_value == values[0]
        assert bs.max_value == values[-1]


def test_bitset_min_max_no_full_materialization():
    # the word-scan must not touch to_array()
    class NoMaterialize(BitSet):
        __slots__ = ()

        def to_array(self):
            raise AssertionError("min/max materialized the whole set")

    src = BitSet.from_values(np.array([70, 100000], dtype=np.uint32))
    bs = NoMaterialize(src.base, src.words)
    assert bs.min_value == 70
    assert bs.max_value == 100000


def test_bitset_min_max_empty_raises():
    bs = BitSet.empty()
    with pytest.raises(ValueError):
        _ = bs.min_value
    with pytest.raises(ValueError):
        _ = bs.max_value


@given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, unique=True))
@settings(max_examples=100, deadline=None)
def test_bitset_min_max_matches_members(values):
    bs = BitSet.from_values(np.array(sorted(values), dtype=np.uint32))
    assert bs.min_value == min(values)
    assert bs.max_value == max(values)


# ---------------------------------------------------------------------------
# intersections
# ---------------------------------------------------------------------------


def _as(layout, values):
    arr = np.array(sorted(set(values)), dtype=np.uint32)
    if layout == "bs":
        return BitSet.from_values(arr)
    return UintSet(arr)


@pytest.mark.parametrize("la", ["uint", "bs"])
@pytest.mark.parametrize("lb", ["uint", "bs"])
def test_intersect_all_layout_pairs(la, lb):
    a = _as(la, [1, 3, 64, 100, 257])
    b = _as(lb, [3, 4, 100, 256, 257])
    out = intersect(a, b)
    assert list(out.to_array()) == [3, 100, 257]


@pytest.mark.parametrize("la", ["uint", "bs"])
@pytest.mark.parametrize("lb", ["uint", "bs"])
def test_intersect_disjoint_is_empty(la, lb):
    a = _as(la, [1, 2, 3])
    b = _as(lb, [1000, 2000])
    assert len(intersect(a, b)) == 0


def test_intersect_result_layout_convention():
    bs = _as("bs", range(100))
    us = _as("uint", [5, 50, 500])
    assert intersect(bs, bs).layout is Layout.BITSET
    assert intersect(bs, us).layout is Layout.UINT
    assert intersect(us, us).layout is Layout.UINT


def test_intersect_many_three_sets():
    sets = [_as("bs", range(0, 100)), _as("uint", [5, 7, 98, 200]), _as("bs", range(5, 99))]
    out = intersect_many(sets)
    assert list(out.to_array()) == [5, 7, 98]


def test_intersect_many_requires_input():
    with pytest.raises(ValueError):
        intersect_many([])


def test_intersect_many_single_set_passthrough():
    s = _as("uint", [1, 2])
    assert intersect_many([s]) is s


# ---------------------------------------------------------------------------
# union / difference
# ---------------------------------------------------------------------------


def test_union_mixed_layouts():
    out = union(_as("bs", [1, 2]), _as("uint", [2, 9000]))
    assert list(out.to_array()) == [1, 2, 9000]


def test_union_many():
    out = union_many([_as("uint", [1]), _as("uint", [2]), UintSet.empty()])
    assert list(out.to_array()) == [1, 2]


def test_union_many_empty():
    assert len(union_many([])) == 0


def test_difference():
    out = difference(_as("uint", [1, 2, 3]), _as("bs", [2]))
    assert list(out.to_array()) == [1, 3]


# ---------------------------------------------------------------------------
# property-based tests: layouts must agree with Python sets
# ---------------------------------------------------------------------------

values_strategy = st.lists(st.integers(min_value=0, max_value=5000), max_size=300)


@settings(max_examples=60, deadline=None)
@given(values_strategy, values_strategy)
def test_property_intersection_matches_python_sets(xs, ys):
    for layout_a in (None, Layout.BITSET):
        for layout_b in (None, Layout.BITSET):
            a = from_unsorted(np.array(xs, dtype=np.int64), force_layout=layout_a)
            b = from_unsorted(np.array(ys, dtype=np.int64), force_layout=layout_b)
            got = set(int(v) for v in intersect(a, b).to_array())
            assert got == (set(xs) & set(ys))


@settings(max_examples=60, deadline=None)
@given(values_strategy, values_strategy)
def test_property_union_matches_python_sets(xs, ys):
    a = from_unsorted(np.array(xs, dtype=np.int64))
    b = from_unsorted(np.array(ys, dtype=np.int64))
    got = set(int(v) for v in union(a, b).to_array())
    assert got == (set(xs) | set(ys))


@settings(max_examples=60, deadline=None)
@given(values_strategy)
def test_property_bitset_roundtrip_and_ranks(xs):
    uniq = sorted(set(xs))
    arr = np.array(uniq, dtype=np.uint32)
    bs = BitSet.from_values(arr)
    assert np.array_equal(bs.to_array(), arr)
    if uniq:
        assert np.array_equal(bs.rank_many(arr), np.arange(len(uniq)))


@settings(max_examples=60, deadline=None)
@given(values_strategy)
def test_property_layouts_agree_on_membership(xs):
    arr = np.unique(np.array(xs, dtype=np.int64)) if xs else np.empty(0, np.int64)
    us = from_unsorted(arr, force_layout=Layout.UINT)
    probe = np.arange(0, 5001, 7)
    if arr.size:
        bs = from_unsorted(arr, force_layout=Layout.BITSET)
        assert np.array_equal(us.contains_many(probe), bs.contains_many(probe))
    assert us.cardinality == arr.size
