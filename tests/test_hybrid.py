"""Hybrid binary/WCOJ execution: differential equality, the strategy
cost model, the strategy-aware API surface, and the explain schema.

The load-bearing property is *strategy invariance*: for every query,
``join_strategy="auto"``, ``"wcoj"``, and ``"binary"`` must produce the
same rows (up to float summation order), serially and in parallel.
"""

import json

import numpy as np
import pytest

import repro
from repro import EngineConfig, LevelHeadedEngine
from repro.cli import _handle_line
from repro.datasets.tpch import TPCH_QUERIES, generate_tpch
from repro.la import matmul_sql
from repro.optimizer.strategy import (
    MIN_BINARY_INPUT_ROWS,
    STRATEGY_SCHEMA_VERSION,
    EdgeStats,
    decide_strategy,
    is_acyclic,
    pairwise_cost,
)
from repro.storage import Catalog, Schema, Table, key
from tests.conftest import make_mini_tpch

STRATEGIES = ("auto", "wcoj", "binary")
THREAD_COUNTS = (1, 2, 4)

TRIANGLE_SQL = (
    "SELECT count(*) AS triangles FROM edges e1, edges e2, edges e3 "
    "WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src"
)


def _config(strategy, threads=1):
    return EngineConfig(
        join_strategy=strategy,
        parallel=threads > 1,
        num_threads=threads,
    )


def assert_rows_close(got, want):
    """Row-set equality with float tolerance (summation order differs
    between the trie walk and the hash joins' reduceat)."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert len(g) == len(w)
        for x, y in zip(g, w):
            if isinstance(x, float) or isinstance(y, float):
                assert x == pytest.approx(y, rel=1e-9, abs=1e-9)
            else:
                assert x == y


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale_factor=0.005, seed=7)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(13)
    pairs = sorted(
        {(int(a), int(b)) for a, b in rng.integers(0, 150, size=(2500, 2))}
    )
    catalog = Catalog()
    catalog.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
            src=np.array([p[0] for p in pairs]),
            dst=np.array([p[1] for p in pairs]),
        )
    )
    return catalog


# ---------------------------------------------------------------------------
# differential equality: hybrid == pure WCOJ == pairwise
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["Q1", "Q3", "Q5"])
def test_tpch_strategy_invariance(tpch, name):
    sql = TPCH_QUERIES[name]
    want = LevelHeadedEngine(tpch, config=_config("wcoj")).query(sql).sorted_rows()
    for strategy in STRATEGIES:
        for threads in THREAD_COUNTS:
            engine = LevelHeadedEngine(tpch, config=_config(strategy, threads))
            assert_rows_close(engine.query(sql).sorted_rows(), want)


def test_triangle_strategy_invariance(graph):
    want = (
        LevelHeadedEngine(graph, config=_config("wcoj"))
        .query(TRIANGLE_SQL)
        .single_value()
    )
    assert want > 0
    for strategy in STRATEGIES:
        for threads in THREAD_COUNTS:
            engine = LevelHeadedEngine(graph, config=_config(strategy, threads))
            assert engine.query(TRIANGLE_SQL).single_value() == want


def test_smm_strategy_invariance():
    rng = np.random.default_rng(5)
    n, nnz = 120, 2500
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, n, nnz)
    flat = np.unique(rows * n + cols)
    rows, cols = flat // n, flat % n
    vals = rng.normal(size=rows.size)
    loader = LevelHeadedEngine()
    loader.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    sql = matmul_sql("m")
    want = (
        LevelHeadedEngine(loader.catalog, config=_config("wcoj"))
        .query(sql)
        .to_dense(n)
    )
    for strategy in STRATEGIES:
        for threads in THREAD_COUNTS:
            engine = LevelHeadedEngine(loader.catalog, config=_config(strategy, threads))
            got = engine.query(sql).to_dense(n)
            np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


def test_stats_count_binary_work(tpch):
    engine = LevelHeadedEngine(tpch, config=_config("binary"))
    result = engine.query(TPCH_QUERIES["Q3"], collect_stats=True)
    assert result.stats.binary_joins > 0
    assert result.stats.binary_rows > 0
    wcoj = LevelHeadedEngine(tpch, config=_config("wcoj"))
    pure = wcoj.query(TPCH_QUERIES["Q3"], collect_stats=True)
    assert pure.stats.binary_joins == 0


def test_binary_counters_parallel_invariant(tpch):
    sql = TPCH_QUERIES["Q3"]
    counters = []
    for threads in THREAD_COUNTS:
        engine = LevelHeadedEngine(tpch, config=_config("binary", threads))
        stats = engine.query(sql, collect_stats=True).stats
        counters.append((stats.binary_joins, stats.binary_rows))
    assert len(set(counters)) == 1


# ---------------------------------------------------------------------------
# the auto decision rule picks the right engine per fragment
# ---------------------------------------------------------------------------


def _node_choices(plan):
    return [s["strategy"]["choice"] for s in plan.node_summaries()]


def test_auto_routes_selective_tpch_to_binary(tpch):
    engine = LevelHeadedEngine(tpch, config=_config("auto"))
    choices = _node_choices(engine.compile(TPCH_QUERIES["Q3"]))
    assert "binary" in choices


def test_auto_keeps_triangle_on_wcoj(graph):
    engine = LevelHeadedEngine(graph, config=_config("auto"))
    choices = _node_choices(engine.compile(TRIANGLE_SQL))
    assert choices == ["wcoj"] * len(choices)


def test_tiny_inputs_stay_on_wcoj(mini_tpch):
    # the mini catalog is far below MIN_BINARY_INPUT_ROWS everywhere
    from tests.test_engine import Q5_SQL

    engine = LevelHeadedEngine(mini_tpch, config=_config("auto"))
    choices = _node_choices(engine.compile(Q5_SQL))
    assert set(choices) == {"wcoj"}


def test_pinned_strategies_override_the_cost_model(tpch):
    sql = TPCH_QUERIES["Q3"]
    wcoj = LevelHeadedEngine(tpch, config=_config("wcoj"))
    assert set(_node_choices(wcoj.compile(sql))) == {"wcoj"}
    binary = LevelHeadedEngine(tpch, config=_config("binary"))
    assert "binary" in _node_choices(binary.compile(sql))


# ---------------------------------------------------------------------------
# decide_strategy unit behavior
# ---------------------------------------------------------------------------


def _edges(card_a=10_000.0, card_b=10_000.0, selective=True):
    distinct = 10_000.0 if selective else 100.0
    return [
        EdgeStats("a", ("x", "y"), card_a, {"x": distinct, "y": distinct}),
        EdgeStats("b", ("y", "z"), card_b, {"y": distinct, "z": distinct}),
    ]


def test_decide_small_input_is_wcoj():
    edges = _edges(card_a=100.0, card_b=100.0)
    decision = decide_strategy("auto", edges, wcoj_cost=1.0)
    assert decision.choice == "wcoj"
    assert "small input" in decision.reason
    assert decision.input_rows < MIN_BINARY_INPUT_ROWS


def test_decide_selective_acyclic_is_binary():
    decision = decide_strategy("auto", _edges(selective=True), wcoj_cost=1.0)
    assert decision.choice == "binary"
    assert not decision.cyclic
    assert decision.binary_cost <= decision.input_rows


def test_decide_blowup_is_wcoj():
    decision = decide_strategy("auto", _edges(selective=False), wcoj_cost=1.0)
    assert decision.choice == "wcoj"
    assert decision.binary_cost > decision.input_rows


def test_decide_cyclic_blowup_is_wcoj():
    edges = [
        EdgeStats("a", ("x", "y"), 5_000.0, {"x": 70.0, "y": 70.0}),
        EdgeStats("b", ("y", "z"), 5_000.0, {"y": 70.0, "z": 70.0}),
        EdgeStats("c", ("z", "x"), 5_000.0, {"z": 70.0, "x": 70.0}),
    ]
    decision = decide_strategy("auto", edges, wcoj_cost=1.0)
    assert decision.cyclic
    assert decision.choice == "wcoj"


def test_decide_pinned_modes():
    edges = _edges()
    assert decide_strategy("wcoj", edges, 1.0).choice == "wcoj"
    assert decide_strategy("binary", edges, 1.0).choice == "binary"
    with pytest.raises(ValueError):
        decide_strategy("quantum", edges, 1.0)


def test_decide_ineligible_pins_wcoj():
    decision = decide_strategy(
        "binary", _edges(), 1.0, eligible=False, ineligible_reason="dense fragment"
    )
    assert decision.choice == "wcoj"
    assert decision.reason == "dense fragment"
    assert not decision.eligible


def test_pairwise_cost_edge_cases():
    assert pairwise_cost([]) == 0.0
    assert pairwise_cost([EdgeStats("a", ("x",), 50.0, {"x": 50.0})]) == 0.0
    disconnected = [
        EdgeStats("a", ("x",), 10.0, {"x": 10.0}),
        EdgeStats("b", ("y",), 10.0, {"y": 10.0}),
    ]
    assert pairwise_cost(disconnected) > 0  # cross product, not inf


def test_is_acyclic():
    assert is_acyclic([("x", "y"), ("y", "z")])
    assert not is_acyclic([("x", "y"), ("y", "z"), ("z", "x")])
    assert is_acyclic([("x", "y")])
    assert is_acyclic([])


# ---------------------------------------------------------------------------
# strategy-aware API surface
# ---------------------------------------------------------------------------


def test_engine_config_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        EngineConfig(join_strategy="quantum")


def test_env_var_sets_the_default_strategy(monkeypatch):
    monkeypatch.setenv("REPRO_JOIN_STRATEGY", "binary")
    assert EngineConfig().join_strategy == "binary"
    monkeypatch.setenv("REPRO_JOIN_STRATEGY", "")
    assert EngineConfig().join_strategy == "auto"
    monkeypatch.setenv("REPRO_JOIN_STRATEGY", "bogus")
    with pytest.raises(ValueError):
        EngineConfig()
    monkeypatch.delenv("REPRO_JOIN_STRATEGY")
    assert EngineConfig().join_strategy == "auto"


def test_connect_join_strategy_overrides_config():
    engine = repro.connect(join_strategy="binary")
    assert engine.config.join_strategy == "binary"
    engine = repro.connect(
        config=EngineConfig(join_strategy="wcoj"), join_strategy="auto"
    )
    assert engine.config.join_strategy == "auto"
    with pytest.raises(ValueError):
        repro.connect(join_strategy="quantum")


def test_query_config_override_switches_strategy(tpch):
    sql = TPCH_QUERIES["Q3"]
    engine = LevelHeadedEngine(tpch, config=_config("wcoj"))
    base = engine.query(sql, collect_stats=True)
    assert base.stats.binary_joins == 0
    overridden = engine.query(
        sql, config=_config("binary"), collect_stats=True
    )
    assert overridden.stats.binary_joins > 0
    assert_rows_close(overridden.sorted_rows(), base.sorted_rows())


def test_cli_strategy_meta_command(mini_tpch):
    # explicit config: the test must not inherit a REPRO_JOIN_STRATEGY
    # default from the surrounding environment (the CI strategy matrix
    # sets one for every job)
    engine = LevelHeadedEngine(mini_tpch, config=EngineConfig(join_strategy="auto"))
    assert "join strategy: auto" in _handle_line(engine, "\\strategy")
    assert "join strategy: binary" in _handle_line(engine, "\\strategy binary")
    assert engine.config.join_strategy == "binary"
    assert "error" in _handle_line(engine, "\\strategy quantum")
    assert engine.config.join_strategy == "binary"
    assert "join strategy: auto" in _handle_line(engine, "\\strategy auto")


# ---------------------------------------------------------------------------
# explain: per-node strategy annotations, text and versioned JSON
# ---------------------------------------------------------------------------

STRATEGY_SCHEMA_KEYS = {
    "version",
    "choice",
    "wcoj_cost",
    "binary_cost",
    "input_rows",
    "est_rows",
    "corrected",
    "cyclic",
    "eligible",
    "reason",
}


def test_explain_text_annotates_every_node(tpch):
    engine = LevelHeadedEngine(tpch, config=_config("auto"))
    text = engine.explain(TPCH_QUERIES["Q3"])
    assert "strategy=" in text
    assert "wcoj_cost=" in text and "binary_cost=" in text


def test_explain_json_strategy_schema_golden(tpch):
    """Pins the versioned per-node strategy block of explain JSON."""
    engine = LevelHeadedEngine(tpch, config=_config("auto"))
    doc = engine.explain(TPCH_QUERIES["Q3"], format="json")
    json.dumps(doc)  # everything must be JSON-serializable
    nodes = doc["plan_nodes"]
    assert nodes, "expected at least one plan node"
    for node in nodes:
        assert {"depth", "attrs", "strategy", "bindings"} <= set(node)
        strategy = node["strategy"]
        assert set(strategy) == STRATEGY_SCHEMA_KEYS
        assert strategy["version"] == STRATEGY_SCHEMA_VERSION
        assert strategy["choice"] in ("wcoj", "binary")
        assert isinstance(strategy["wcoj_cost"], float)
        assert isinstance(strategy["binary_cost"], float)
        assert isinstance(strategy["input_rows"], float)
        assert isinstance(strategy["cyclic"], bool)
        assert isinstance(strategy["eligible"], bool)
        assert isinstance(strategy["est_rows"], float)
        assert isinstance(strategy["corrected"], bool)
        assert isinstance(strategy["reason"], str) and strategy["reason"]


def test_explain_json_strategy_follows_the_config(tpch):
    sql = TPCH_QUERIES["Q3"]
    for strategy in ("wcoj", "binary"):
        engine = LevelHeadedEngine(tpch, config=_config(strategy))
        doc = engine.explain(sql, format="json")
        choices = {n["strategy"]["choice"] for n in doc["plan_nodes"]}
        if strategy == "wcoj":
            assert choices == {"wcoj"}
        else:
            assert "binary" in choices


def test_blas_mode_explain_has_no_join_nodes():
    rng = np.random.default_rng(2)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rng.normal(size=(6, 6)), domain="dim")
    doc = engine.explain(matmul_sql("m"), format="json")
    assert doc["mode"] == "blas"
    assert doc["plan_nodes"] == []
