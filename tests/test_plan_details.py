"""Targeted tests for planner details: BLAS routing conditions,
slot-edge pinning, result-clause primitives, and config interactions."""

import numpy as np
import pytest

from repro import EngineConfig, LevelHeadedEngine, Schema, annotation, key
from repro.la import matmul_sql, matvec_sql
from repro.sql.ast import ColumnRef
from repro.sql.result_clauses import _sort_codes, make_result_resolver, result_row_index
from repro.errors import ExecutionError
from tests.conftest import make_mini_tpch
from tests.test_engine import Q5_SQL

# ---------------------------------------------------------------------------
# BLAS routing conditions (each condition individually breaks the route)
# ---------------------------------------------------------------------------


def _dense_engine(n=6, **config):
    engine = LevelHeadedEngine(
        config=EngineConfig(**config) if config else None
    )
    rng = np.random.default_rng(0)
    engine.register_matrix("m", rng.normal(size=(n, n)), domain="dim")
    engine.register_vector("x", rng.normal(size=n), domain="dim")
    return engine


def test_blas_route_happy_path():
    assert _dense_engine().compile(matmul_sql("m")).mode == "blas"
    assert _dense_engine().compile(matvec_sql("m", "x")).mode == "blas"


def test_blas_route_rejected_with_filter():
    engine = _dense_engine()
    sql = (
        "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v FROM m m1, m m2 "
        "WHERE m1.j = m2.i AND m1.v > 0 GROUP BY m1.i, m2.j"
    )
    plan = engine.compile(sql)
    assert plan.mode == "join"  # the filter breaks full density


def test_blas_route_rejected_with_extra_aggregate():
    engine = _dense_engine()
    sql = (
        "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v, count(*) AS n "
        "FROM m m1, m m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
    )
    assert engine.compile(sql).mode == "join"


def test_blas_route_rejected_on_sparse():
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=[0, 1], cols=[1, 0], values=[1.0, 2.0], n=4, domain="dim")
    assert engine.compile(matmul_sql("m")).mode == "join"


def test_blas_route_results_match_join_mode():
    blas_engine = _dense_engine(n=5)
    join_engine = LevelHeadedEngine(
        blas_engine.catalog, config=EngineConfig(enable_blas=False)
    )
    sql = matmul_sql("m")
    assert blas_engine.compile(sql).mode == "blas"
    assert join_engine.compile(sql).mode == "join"
    blas_rows = blas_engine.query(sql).sorted_rows()
    join_rows = join_engine.query(sql).sorted_rows()
    assert len(blas_rows) == len(join_rows)
    for a, b in zip(blas_rows, join_rows):
        assert a == pytest.approx(b, abs=1e-9)


# ---------------------------------------------------------------------------
# slot-edge pinning (Q5's lineitem must execute at the root)
# ---------------------------------------------------------------------------


def test_slot_edges_assigned_to_root(mini_tpch):
    plan = LevelHeadedEngine(mini_tpch).compile(Q5_SQL)
    root_aliases = {b.alias for b in plan.root.bindings}
    assert "lineitem" in root_aliases
    for child in plan.root.children:
        child_aliases = {b.alias for b in child.bindings}
        assert "lineitem" not in child_aliases


def test_every_node_has_bindings(mini_tpch):
    plan = LevelHeadedEngine(mini_tpch).compile(Q5_SQL)

    def walk(node):
        assert node.bindings or node.children
        for child in node.children:
            walk(child)

    walk(plan.root)


# ---------------------------------------------------------------------------
# result-clause primitives
# ---------------------------------------------------------------------------


def test_sort_codes_numeric_and_string():
    nums = np.array([3.0, 1.0, 2.0])
    asc = _sort_codes(nums, descending=False)
    assert list(np.argsort(asc)) == [1, 2, 0]
    desc = _sort_codes(nums, descending=True)
    assert list(np.argsort(desc, kind="stable")) == [0, 2, 1]
    strs = np.array(["pear", "apple"])
    assert list(np.argsort(_sort_codes(strs, False))) == [1, 0]


def test_result_row_index_identity():
    assert result_row_index(lambda r: None, 5, None, [], None) is None


def test_result_row_index_limit_only():
    idx = result_row_index(lambda r: None, 5, None, [], 2)
    assert list(idx) == [0, 1]
    idx0 = result_row_index(lambda r: None, 5, None, [], 0)
    assert list(idx0) == []


def test_result_resolver_priority_and_error():
    env = {"agg0": np.array([1.0])}
    outputs = {"total": np.array([2.0])}
    resolve = make_result_resolver(env, outputs)
    assert resolve(ColumnRef(None, "agg0"))[0] == 1.0
    assert resolve(ColumnRef(None, "total"))[0] == 2.0
    with pytest.raises(ExecutionError):
        resolve(ColumnRef("t", "x"))


# ---------------------------------------------------------------------------
# catalog / config interactions
# ---------------------------------------------------------------------------


def test_domain_version_bumps_on_extension():
    from repro.storage import Catalog, Table

    cat = Catalog()
    cat.register(Table.from_columns(Schema("a", [key("x", domain="d")]), x=[5, 6]))
    v0 = cat.domain_version("d")
    cat.register(Table.from_columns(Schema("b", [key("y", domain="d")]), y=[1]))
    assert cat.domain_version("d") == v0 + 1
    # registering values already covered does not bump
    cat.register(Table.from_columns(Schema("c", [key("z", domain="d")]), z=[5]))
    assert cat.domain_version("d") == v0 + 1


def test_parallel_matches_serial_on_q5(mini_tpch):
    serial = LevelHeadedEngine(mini_tpch).query(Q5_SQL).sorted_rows()
    parallel = LevelHeadedEngine(
        mini_tpch, config=EngineConfig(parallel=True, num_threads=2)
    ).query(Q5_SQL).sorted_rows()
    assert serial == pytest.approx(parallel)


def test_memory_budget_allows_normal_queries(mini_tpch):
    engine = LevelHeadedEngine(
        mini_tpch, config=EngineConfig(memory_budget_bytes=100 * 1024 * 1024)
    )
    assert engine.query(Q5_SQL).num_rows == 1
