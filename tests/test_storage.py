"""Tests for schemas, tables, trie caching, the catalog, and CSV loading."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.sets import Layout
from repro.storage import (
    AnnotationRequest,
    AttrType,
    Catalog,
    Schema,
    Table,
    annotation,
    cardinality_score,
    collect_stats,
    format_date,
    key,
    load_dataframe,
    load_table,
    parse_date,
    write_table,
)

# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


def test_schema_key_and_annotation_partition():
    s = Schema("m", [key("i"), key("j"), annotation("v")])
    assert s.key_names == ("i", "j")
    assert s.annotation_names == ("v",)
    assert s.attribute("v").kind.value == "annotation"


def test_schema_rejects_non_integer_keys():
    with pytest.raises(SchemaError):
        key("bad", type=AttrType.STRING)


def test_schema_rejects_duplicate_attributes():
    with pytest.raises(SchemaError):
        Schema("m", [key("i"), annotation("i")])


def test_schema_unknown_attribute_raises():
    s = Schema("m", [key("i")])
    with pytest.raises(SchemaError):
        s.attribute("zzz")


def test_key_domain_defaults_to_name():
    assert key("c_custkey").domain_name == "c_custkey"
    assert key("c_custkey", domain="custkey").domain_name == "custkey"


def test_date_roundtrip():
    ordinal = parse_date("1994-01-01")
    assert format_date(ordinal) == "1994-01-01"
    assert parse_date("1994-01-02") == ordinal + 1


# ---------------------------------------------------------------------------
# table basics
# ---------------------------------------------------------------------------


def _matrix_table():
    schema = Schema("m", [key("i"), key("j"), annotation("v")])
    return Table.from_columns(
        schema, i=[0, 0, 1, 3], j=[0, 2, 0, 1], v=[0.2, 0.4, 0.1, 0.3]
    )


def test_table_from_columns_and_column_access():
    t = _matrix_table()
    assert t.num_rows == 4
    assert t.column("v").dtype == np.float64
    with pytest.raises(SchemaError):
        t.column("nope")


def test_table_missing_column_raises():
    schema = Schema("m", [key("i"), annotation("v")])
    with pytest.raises(SchemaError):
        Table.from_columns(schema, i=[1, 2])


def test_table_ragged_columns_raise():
    schema = Schema("m", [key("i"), annotation("v")])
    with pytest.raises(SchemaError):
        Table(schema, {"i": np.array([1, 2]), "v": np.array([1.0])})


def test_table_distinct_and_uniqueness():
    t = _matrix_table()
    assert t.distinct_count(("i",)) == 3
    assert t.distinct_count(("i", "j")) == 4
    assert t.keys_are_unique(("i", "j"))
    assert not t.keys_are_unique(("i",))


def test_cardinality_score_matches_paper_example():
    # TPC-H SF10-ish: lineitem 100, orders 26, customer 3 (Example 5.3)
    assert cardinality_score(59_986_052, 59_986_052) == 100
    assert cardinality_score(15_000_000, 59_986_052) == 26
    assert cardinality_score(1_500_000, 59_986_052) == 3
    assert cardinality_score(25, 59_986_052) == 1


def test_collect_stats():
    t = _matrix_table()
    stats = collect_stats(t, [("i",)])
    assert stats.num_rows == 4
    assert stats.key_distinct[("i",)] == 3


# ---------------------------------------------------------------------------
# tries from tables
# ---------------------------------------------------------------------------


def test_get_trie_basic_and_cache():
    t = _matrix_table()
    trie1 = t.get_trie(("i", "j"), [AnnotationRequest("v", "v", 1, "sum")])
    trie2 = t.get_trie(("i", "j"), [AnnotationRequest("v", "v", 1, "sum")])
    assert trie1 is trie2  # cached
    assert trie1.num_tuples == 4
    node = trie1.lookup_node([trie_code(t, "i", 0), trie_code(t, "j", 2)])
    assert trie1.annotation("v").values[node] == pytest.approx(0.4)


def trie_code(table, attr, raw_value):
    """Encode one raw key value the way get_trie does."""
    d = table._domain_dictionary(attr)
    code = d.try_encode_scalar(raw_value)
    assert code is not None
    return code


def test_get_trie_key_order_matters():
    t = _matrix_table()
    t_ij = t.get_trie(("i", "j"))
    t_ji = t.get_trie(("j", "i"))
    assert t_ij is not t_ji
    assert t_ij.key_attrs == ("i", "j")
    assert t_ji.key_attrs == ("j", "i")
    # same tuples, transposed
    assert t_ij.num_tuples == t_ji.num_tuples == 4


def test_get_trie_row_mask_not_cached():
    t = _matrix_table()
    mask = t.column("v") > 0.15
    filtered = t.get_trie(("i", "j"), row_mask=mask)
    assert filtered.num_tuples == 3
    again = t.get_trie(("i", "j"), row_mask=mask)
    assert filtered is not again


def test_get_trie_rejects_annotation_as_key():
    t = _matrix_table()
    with pytest.raises(SchemaError):
        t.get_trie(("v",))


def test_get_trie_string_annotation_dictionary():
    schema = Schema("n", [key("nk"), annotation("name", AttrType.STRING)])
    t = Table.from_columns(schema, nk=[0, 1, 2], name=["BRAZIL", "ASIA", "CANADA"])
    trie = t.get_trie(("nk",), [AnnotationRequest("name", "name", 0, "first")])
    ann = trie.annotation("name")
    assert ann.dictionary is not None
    decoded = ann.decode(np.arange(3))
    assert list(decoded) == ["BRAZIL", "ASIA", "CANADA"]


def test_get_trie_force_layout():
    t = _matrix_table()
    trie = t.get_trie(("i",), force_layout=Layout.BITSET)
    assert trie.level(0).layout_for(0) is Layout.BITSET


def test_get_trie_precomputed_expression_values():
    t = _matrix_table()
    expr_values = t.column("v") * 2.0
    trie = t.get_trie(
        ("i", "j"),
        [AnnotationRequest("v2", "v*2", 1, "sum", values=expr_values)],
    )
    node = trie.lookup_node([trie_code(t, "i", 1), trie_code(t, "j", 0)])
    assert trie.annotation("v2").values[node] == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# catalog and shared domains
# ---------------------------------------------------------------------------


def test_catalog_shares_domains_across_tables():
    cat = Catalog()
    customer = Table.from_columns(
        Schema("customer", [key("c_custkey", domain="custkey"), annotation("c_acctbal")]),
        c_custkey=[10, 20, 30],
        c_acctbal=[1.0, 2.0, 3.0],
    )
    orders = Table.from_columns(
        Schema("orders", [key("o_custkey", domain="custkey"), annotation("o_total")]),
        o_custkey=[20, 20, 40],
        o_total=[5.0, 6.0, 7.0],
    )
    cat.register(customer)
    cat.register(orders)
    d = cat.domain_dictionary("custkey")
    assert list(d.values) == [10, 20, 30, 40]
    # both tables encode through the shared dictionary
    ct = customer.get_trie(("c_custkey",))
    ot = orders.get_trie(("o_custkey",))
    assert list(ct.root_set().to_array()) == [0, 1, 2]
    assert list(ot.root_set().to_array()) == [1, 3]


def test_catalog_register_extends_and_invalidates():
    cat = Catalog()
    a = Table.from_columns(
        Schema("a", [key("x", domain="shared")]), x=[1, 2]
    )
    cat.register(a)
    trie_before = a.get_trie(("x",))
    b = Table.from_columns(
        Schema("b", [key("y", domain="shared")]), y=[0]
    )
    cat.register(b)  # extends 'shared' with 0, re-coding 1 and 2
    trie_after = a.get_trie(("x",))
    assert trie_before is not trie_after
    assert list(trie_after.root_set().to_array()) == [1, 2]  # codes shifted by 0


def test_catalog_duplicate_registration_rejected():
    cat = Catalog()
    a = Table.from_columns(Schema("a", [key("x")]), x=[1])
    cat.register(a)
    with pytest.raises(SchemaError):
        cat.register(Table.from_columns(Schema("a", [key("x")]), x=[2]))


def test_catalog_lookup():
    cat = Catalog()
    a = Table.from_columns(Schema("a", [key("x")]), x=[1])
    cat.register(a)
    assert cat.table("a") is a
    assert "a" in cat
    assert cat.has_table("a")
    with pytest.raises(SchemaError):
        cat.table("zzz")


# ---------------------------------------------------------------------------
# CSV loader
# ---------------------------------------------------------------------------


def test_load_table_roundtrip(tmp_path):
    schema = Schema(
        "orders",
        [
            key("o_orderkey"),
            annotation("o_orderdate", AttrType.DATE),
            annotation("o_comment", AttrType.STRING),
            annotation("o_total", AttrType.DOUBLE),
        ],
    )
    path = tmp_path / "orders.tbl"
    path.write_text(
        "1|1994-01-01|fast order|100.5|\n"
        "2|1995-06-30|slow order|200.25|\n"
    )
    t = load_table(str(path), schema)
    assert t.num_rows == 2
    assert t.column("o_orderdate")[0] == parse_date("1994-01-01")
    assert t.column("o_comment")[1] == "slow order"
    out = tmp_path / "out.tbl"
    write_table(t, str(out))
    t2 = load_table(str(out), schema)
    assert np.array_equal(t2.column("o_orderdate"), t.column("o_orderdate"))
    assert np.allclose(t2.column("o_total"), t.column("o_total"))


def test_load_table_field_count_mismatch(tmp_path):
    schema = Schema("t", [key("a"), annotation("b")])
    path = tmp_path / "bad.tbl"
    path.write_text("1|2|3|\n")
    with pytest.raises(SchemaError):
        load_table(str(path), schema)


def test_load_table_missing_file():
    schema = Schema("t", [key("a")])
    with pytest.raises(SchemaError):
        load_table("/nonexistent/file.tbl", schema)


def test_load_table_bad_value(tmp_path):
    schema = Schema("t", [key("a")])
    path = tmp_path / "bad.tbl"
    path.write_text("notanint|\n")
    with pytest.raises(SchemaError):
        load_table(str(path), schema)


def test_load_dataframe_infers_schema():
    frame = {"i": np.array([1, 2]), "v": np.array([0.5, 1.5]), "s": np.array(["a", "b"])}
    t = load_dataframe(frame, name="df")
    assert t.schema.key_names == ("i",)
    assert set(t.schema.annotation_names) == {"v", "s"}


def test_load_dataframe_with_explicit_schema():
    schema = Schema("df", [key("i"), annotation("v")])
    t = load_dataframe({"i": [1], "v": [2.0]}, schema=schema)
    assert t.num_rows == 1
