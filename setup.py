"""Setup shim.

The offline environment used for this reproduction lacks the ``wheel``
package, so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work with the legacy code path.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
