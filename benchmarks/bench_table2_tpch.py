"""Table II (business intelligence): the seven TPC-H queries.

Paper: LevelHeaded within 1-1.88x of HyPer, up to 80x faster than
MonetDB and up to 270x faster than LogicBlox, at SF 1/10/100.

Reproduction: the same seven queries on generated TPC-H data against
the pairwise-selinger engine (HyPer stand-in), pairwise-fifo (MonetDB
stand-in), and the uncosted WCOJ configuration (LogicBlox stand-in).
Shape expectations per DESIGN.md: LevelHeaded within small constant
factors of the vectorized pairwise engines (pure-Python interpretation
inflates its per-tuple constants -- the paper's C++ engine does not pay
this), and consistently ahead of the uncosted WCOJ configuration.
"""

import pytest

from repro import LevelHeadedEngine
from repro.baselines import NaiveWCOJEngine, PairwiseEngine
from repro.bench import Measurement, comparison_row, render_table, run_guarded
from repro.datasets import TPCH_QUERIES

from .conftest import BUDGET, REPEATS, TIMEOUT, TPCH_SF

ENGINES = ["levelheaded", "hyper*", "monetdb*", "logicblox*"]
_rows = {}


@pytest.fixture(scope="module")
def engines(tpch_catalog):
    return {
        "levelheaded": LevelHeadedEngine(tpch_catalog),
        "hyper*": PairwiseEngine(tpch_catalog, planner="selinger", memory_budget_bytes=BUDGET),
        "monetdb*": PairwiseEngine(tpch_catalog, planner="fifo", memory_budget_bytes=BUDGET),
        "logicblox*": NaiveWCOJEngine(tpch_catalog),
    }


@pytest.mark.parametrize("query", list(TPCH_QUERIES))
def test_tpch_query(benchmark, engines, query, report_log):
    sql = TPCH_QUERIES[query]
    measurements = {}
    for name in ("hyper*", "monetdb*", "logicblox*"):
        measurements[name] = run_guarded(
            lambda n=name: engines[n].query(sql), repeats=REPEATS, timeout_seconds=TIMEOUT
        )
    lh = engines["levelheaded"]
    lh.query(sql)  # warm the trie caches (index build excluded, VI-A)
    result = benchmark.pedantic(lambda: lh.query(sql), rounds=REPEATS, warmup_rounds=1)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    assert result.num_rows > 0

    _rows[query] = comparison_row(f"{query} (SF {TPCH_SF})", measurements, ENGINES)
    report_log.add_table(
        "table2_tpch",
        render_table(
            "Table II (BI): TPC-H runtime, best engine absolute + relative factors",
            ["query", "baseline"] + ENGINES,
            [_rows[key] for key in sorted(_rows)],
        ),
    )
