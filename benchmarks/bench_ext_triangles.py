"""Extension: the asymptotic WCOJ advantage on cyclic queries.

Not a paper table -- this bench demonstrates the architectural claim
behind Section I and the EmptyHeaded lineage: on cyclic (graph-pattern)
queries the generic WCOJ algorithm is worst-case optimal
(AGM bound |E|^1.5 for triangles) while pairwise plans materialize an
O(|E|^2 / |V|)-sized intermediate.  As the graph grows, the pairwise
engines' relative cost grows with it; LevelHeaded's does not.
"""

import numpy as np
import pytest

from repro import LevelHeadedEngine, Schema, key
from repro.baselines import PairwiseEngine
from repro.bench import Measurement, comparison_row, render_table, run_guarded
from repro.storage import Catalog, Table

from .conftest import BUDGET, REPEATS, TIMEOUT

TRIANGLE_SQL = """
SELECT count(*) AS triangles
FROM edges e1, edges e2, edges e3
WHERE e1.dst = e2.src AND e2.dst = e3.src AND e3.dst = e1.src
"""

ENGINES = ["levelheaded", "hyper*", "monetdb*"]
_rows = {}


def _graph_catalog(n_nodes: int, n_edges: int, seed: int = 0) -> Catalog:
    rng = np.random.default_rng(seed)
    edges = list(
        {(int(a), int(b)) for a, b in rng.integers(0, n_nodes, size=(n_edges, 2))}
    )
    catalog = Catalog()
    catalog.register(
        Table.from_columns(Schema("__v", [key("v", domain="node")]), v=np.arange(n_nodes))
    )
    catalog.register(
        Table.from_columns(
            Schema("edges", [key("src", domain="node"), key("dst", domain="node")]),
            src=[e[0] for e in edges],
            dst=[e[1] for e in edges],
        )
    )
    return catalog


@pytest.mark.parametrize("scale", [1, 2, 4])
def test_triangle_scaling(benchmark, scale, report_log):
    n_nodes, n_edges = 300 * scale, 4500 * scale
    catalog = _graph_catalog(n_nodes, n_edges)

    measurements = {}
    for name, planner in (("hyper*", "selinger"), ("monetdb*", "fifo")):
        engine = PairwiseEngine(catalog, planner=planner, memory_budget_bytes=BUDGET)
        measurements[name] = run_guarded(
            lambda e=engine: e.query(TRIANGLE_SQL), repeats=1, timeout_seconds=TIMEOUT
        )

    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(TRIANGLE_SQL)
    reference = lh.execute(plan).single_value()
    benchmark.pedantic(lambda: lh.execute(plan), rounds=REPEATS, warmup_rounds=0)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)

    # cross-check counts where the pairwise engine completed
    for name, planner in (("hyper*", "selinger"),):
        if measurements[name].ok:
            engine = PairwiseEngine(catalog, planner=planner, memory_budget_bytes=BUDGET)
            assert engine.query(TRIANGLE_SQL).single_value() == reference

    _rows[scale] = comparison_row(
        f"|V|={n_nodes} |E|~{n_edges}", measurements, ENGINES
    )
    report_log.add_table(
        "ext_triangles",
        render_table(
            "Extension: triangle counting, WCOJ vs pairwise as the graph grows",
            ["graph", "baseline"] + ENGINES,
            [_rows[key] for key in sorted(_rows)],
        ),
    )
