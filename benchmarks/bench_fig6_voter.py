"""Figure 6: the voter-classification application across engines.

Paper: LevelHeaded beats Spark, MonetDB/Scikit-learn, and
Pandas/Scikit-learn by up to one order of magnitude end to end, mostly
through faster SQL processing and by avoiding data transformations
between the SQL and training phases.

Reproduction: the four pipelines of ``repro.ml.pipeline`` on synthetic
voter data; each bar decomposes into SQL / encode / train seconds as in
the figure.
"""

import pytest

from repro.bench import format_seconds, render_table
from repro.ml import PIPELINES

from .conftest import REPEATS

_rows = {}


@pytest.mark.parametrize("engine_name", list(PIPELINES))
def test_voter_pipeline(benchmark, voters_catalog, engine_name, report_log):
    pipeline = PIPELINES[engine_name]
    pipeline(voters_catalog, iterations=5)  # warm caches

    results = []

    def run():
        results.append(pipeline(voters_catalog, iterations=5))

    benchmark.pedantic(run, rounds=REPEATS, warmup_rounds=0)
    result = results[-1]
    assert result.accuracy > 0.55

    _rows[engine_name] = [
        engine_name,
        format_seconds(result.sql_seconds),
        format_seconds(result.encode_seconds),
        format_seconds(result.train_seconds),
        format_seconds(result.total_seconds),
        f"{result.accuracy:.3f}",
    ]
    report_log.add_table(
        "fig6_voter",
        render_table(
            "Figure 6: voter classification, per-phase seconds per engine",
            ["engine", "sql", "encode", "train", "total", "accuracy"],
            [_rows[key] for key in sorted(_rows)],
        ),
    )
