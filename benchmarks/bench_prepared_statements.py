"""Prepared statements and the plan cache: compile-time amortization.

The paper's workloads repeat statements -- TPC-H refresh runs re-issue
the same queries, and iterated LA kernels (PageRank's SpMV loop) run
one statement per iteration.  This experiment measures how much of a
repeated query's latency is compilation (parse → bind → translate →
GHD → cost-ordered plan) by comparing three paths on Q5 and Q6:

* **cold**      -- compile + execute every time (cache cleared),
* **cached**    -- plain ``engine.query()`` hitting the plan cache,
* **prepared**  -- ``engine.prepare()`` once, ``execute(params)`` per run.

Shape expectation: cached/prepared are strictly faster than cold, with
the gap largest for the many-table Q5 (GHD search dominates compile
time) and for parameterized Q6 (same plan, different constants, still
one compile per distinct value set).
"""

import pytest

from repro import LevelHeadedEngine
from repro.bench import Measurement, comparison_row, render_table, run_guarded
from repro.datasets import TPCH_QUERIES

from .conftest import REPEATS, TIMEOUT, TPCH_SF

Q6_PARAM = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= :lo
  AND l_shipdate < :hi
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""
Q6_ARGS = {"lo": "1994-01-01", "hi": "1995-01-01"}

PATHS = ["cold", "cached", "prepared"]
_rows = {}


def _report(report_log):
    report_log.add_table(
        "prepared_statements",
        render_table(
            "Prepared statements: per-run latency by compilation path",
            ["query", "baseline"] + PATHS,
            [_rows[key] for key in sorted(_rows)],
        ),
    )


@pytest.mark.parametrize("query", ["Q5", "Q6"])
def test_plan_cache_amortizes_compilation(benchmark, tpch_catalog, query, report_log):
    engine = LevelHeadedEngine(tpch_catalog)
    sql = TPCH_QUERIES[query]
    engine.query(sql)  # warm tries and the plan cache

    def cold():
        engine.plan_cache.clear()
        return engine.query(sql)

    measurements = {
        "cold": run_guarded(cold, repeats=REPEATS, timeout_seconds=TIMEOUT)
    }
    engine.query(sql)  # re-populate the cache evicted by the cold runs
    result = benchmark.pedantic(lambda: engine.query(sql), rounds=REPEATS, warmup_rounds=1)
    measurements["cached"] = Measurement("ok", seconds=benchmark.stats.stats.mean)

    stmt = engine.prepare(sql)
    measurements["prepared"] = run_guarded(
        stmt.execute, repeats=REPEATS, timeout_seconds=TIMEOUT
    )
    assert result.num_rows > 0
    assert engine.plan_cache.stats.hits > 0

    _rows[query] = comparison_row(f"{query} (SF {TPCH_SF})", measurements, PATHS)
    _report(report_log)


def test_parameterized_q6(benchmark, tpch_catalog, report_log):
    engine = LevelHeadedEngine(tpch_catalog)
    inline = engine.query(TPCH_QUERIES["Q6"]).single_value()
    stmt = engine.prepare(Q6_PARAM)

    def cold():
        engine.plan_cache.clear()
        return stmt.execute(Q6_ARGS)

    measurements = {
        "cold": run_guarded(cold, repeats=REPEATS, timeout_seconds=TIMEOUT),
        "cached": run_guarded(
            lambda: engine.query(Q6_PARAM, Q6_ARGS),
            repeats=REPEATS,
            timeout_seconds=TIMEOUT,
        ),
    }
    stmt.execute(Q6_ARGS)  # re-populate after the cache-clearing cold runs
    recompiles_before = stmt.recompiles
    result = benchmark.pedantic(
        lambda: stmt.execute(Q6_ARGS), rounds=REPEATS, warmup_rounds=1
    )
    measurements["prepared"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    # parameterized execution matches the inlined-constant query exactly
    assert result.single_value() == pytest.approx(inline)
    assert stmt.recompiles == recompiles_before  # warm runs never recompile

    _rows["Q6 (:named)"] = comparison_row(
        f"Q6 params (SF {TPCH_SF})", measurements, PATHS
    )
    _report(report_log)
