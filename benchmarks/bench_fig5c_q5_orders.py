"""Figure 5c: cost vs runtime for four attribute orders on TPC-H Q5.

Paper (SF 10): the expensive GHD node of Q5 under four orders --
[orderkey, custkey, nationkey, suppkey] and [orderkey, suppkey,
custkey, nationkey] (low cost, fast) vs [custkey, orderkey, nationkey,
suppkey] and [suppkey, nationkey, custkey, orderkey] (high cost, slow).
The cost estimate must rank the orders the same way the runtimes do.

Reproduction: the same four order shapes forced on Q5's root node.
Fidelity note (EXPERIMENTS.md): the icost model prices *intersection
work*, which dominates in the paper's compiled engine.  This
interpreter pays a fixed numpy dispatch cost per loop step instead, so
orders with few outer iterations and large vectorized intersections
(low-cardinality-first) can win here even at high estimated cost -- the
table reports both columns so the divergence is visible.
"""

import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.bench import Measurement, format_seconds, render_table, run_guarded
from repro.datasets.tpch import Q5

from .conftest import REPEATS, TIMEOUT

#: Figure 5c's orders, o=orderkey c=custkey s=suppkey n=nationkey.
ORDERS = {
    "o,c,n,s": ("orderkey", "custkey", "nationkey", "suppkey"),
    "o,s,c,n": ("orderkey", "suppkey", "custkey", "nationkey"),
    "c,o,n,s": ("custkey", "orderkey", "nationkey", "suppkey"),
    "s,n,c,o": ("suppkey", "nationkey", "custkey", "orderkey"),
}

_rows = {}


@pytest.mark.parametrize("label", list(ORDERS))
def test_q5_order(benchmark, tpch_catalog, label, report_log):
    config = EngineConfig(forced_root_order=ORDERS[label])
    engine = LevelHeadedEngine(tpch_catalog, config=config)
    plan = engine.compile(Q5)
    cost = plan.root.decision.cost

    measurement = run_guarded(
        lambda: engine.query(Q5), repeats=1, timeout_seconds=TIMEOUT
    )
    if measurement.ok:
        benchmark.pedantic(lambda: engine.query(Q5), rounds=REPEATS, warmup_rounds=0)
        measurement = Measurement("ok", seconds=benchmark.stats.stats.mean)
    else:
        benchmark.pedantic(lambda: None, rounds=1)

    _rows[label] = (
        cost,
        [
            f"[{label}]",
            str(cost),
            measurement.label if not measurement.ok else format_seconds(measurement.seconds),
        ],
        measurement.seconds if measurement.ok else float("inf"),
    )
    report_log.add_table(
        "fig5c_q5_orders",
        render_table(
            "Figure 5c: TPC-H Q5 expensive-node attribute orders, cost vs time",
            ["order", "cost", "time"],
            [row for _cost, row, _t in sorted(_rows.values(), key=lambda x: x[0])],
        ),
    )
    # all four orders must at least complete within the timeout
    assert measurement.label in ("ok", "t/o")
