"""Shared benchmark fixtures: datasets, engines, and result reporting.

Scales are configurable through environment variables so the same
benchmarks run laptop-sized by default and larger on bigger machines:

* ``REPRO_TPCH_SF``        -- TPC-H scale factor (default 0.005)
* ``REPRO_MATRIX_SCALE``   -- sparse-matrix profile scale (default 0.5)
* ``REPRO_DENSE_SCALE``    -- dense-matrix scale (default 1.0)
* ``REPRO_BENCH_REPEATS``  -- comparator repeats (default 3)
* ``REPRO_BENCH_TIMEOUT``  -- per-engine timeout seconds (default 60)
* ``REPRO_BENCH_BUDGET``   -- baseline memory budget bytes (default 512MB)

Every experiment appends its paper-style table to
``benchmarks/results/`` at the end of the session.
"""

import os

import numpy as np
import pytest

from repro.bench import ReportLog
from repro.datasets import generate_tpch, generate_voters

TPCH_SF = float(os.environ.get("REPRO_TPCH_SF", "0.005"))
MATRIX_SCALE = float(os.environ.get("REPRO_MATRIX_SCALE", "0.5"))
DENSE_SCALE = float(os.environ.get("REPRO_DENSE_SCALE", "1.0"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "60"))
BUDGET = int(os.environ.get("REPRO_BENCH_BUDGET", str(512 * 1024 * 1024)))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def report_log():
    log = ReportLog(RESULTS_DIR)
    yield log
    log.flush()


@pytest.fixture(scope="session")
def tpch_catalog():
    return generate_tpch(scale_factor=TPCH_SF, seed=2018)


@pytest.fixture(scope="session")
def voters_catalog():
    return generate_voters(n_voters=40_000, n_precincts=200, seed=45)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
