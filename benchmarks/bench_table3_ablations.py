"""Table III: the impact of attribute elimination and attribute ordering.

Paper (SF 10 + LA): removing attribute elimination costs up to 4.82x on
TPC-H and 500x on dense LA (no more opaque BLAS calls); removing the
cost-based attribute order costs up to 8815x on TPC-H (Q8) and makes
sparse matmul infeasible (oom without the relaxed [i,k,j] order).

Reproduction: the same engine with each optimization disabled via
EngineConfig; slowdowns are reported relative to full LevelHeaded.
'-' marks workloads where the optimization does not apply, as in the
paper.
"""

import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.bench import Measurement, format_seconds, render_table, run_guarded
from repro.datasets import TPCH_QUERIES, dense_matrix, dense_vector, sparse_profile
from repro.la import matmul_sql, matvec_sql

from .conftest import DENSE_SCALE, MATRIX_SCALE, REPEATS, TIMEOUT, TPCH_SF

NO_ELIMINATION = EngineConfig(enable_attribute_elimination=False)
NO_ORDERING = EngineConfig(enable_attribute_ordering=False, enable_relaxation=False)

_rows = {}


def _ablation_cell(base_seconds, measurement):
    if measurement is None:
        return "-"
    if not measurement.ok:
        return measurement.label
    return f"{measurement.seconds / base_seconds:.2f}x"


def _record(report_log, order, workload, base, no_elim, no_order):
    _rows[(order, workload)] = [
        workload,
        format_seconds(base),
        _ablation_cell(base, no_elim),
        _ablation_cell(base, no_order),
    ]
    report_log.add_table(
        "table3_ablations",
        render_table(
            "Table III: LevelHeaded runtime and relative slowdown without "
            "each optimization",
            ["workload", "LH", "-Attr.Elim", "-Attr.Ord"],
            [_rows[key] for key in sorted(_rows)],
        ),
    )


@pytest.mark.parametrize("query", list(TPCH_QUERIES))
def test_tpch_ablations(benchmark, tpch_catalog, query, report_log):
    sql = TPCH_QUERIES[query]
    lh = LevelHeadedEngine(tpch_catalog)
    lh.query(sql)
    benchmark.pedantic(lambda: lh.query(sql), rounds=REPEATS, warmup_rounds=1)
    base = benchmark.stats.stats.mean

    no_elim = run_guarded(
        lambda: LevelHeadedEngine(tpch_catalog, config=NO_ELIMINATION).query(sql),
        repeats=REPEATS,
        timeout_seconds=TIMEOUT,
    )
    no_order = run_guarded(
        lambda: LevelHeadedEngine(tpch_catalog, config=NO_ORDERING).query(sql),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    # scan queries have no attribute order to ablate (Table III's '-')
    if query in ("Q1", "Q6"):
        no_order = None
    _record(report_log, 0, f"{query} (SF {TPCH_SF})", base, no_elim, no_order)


@pytest.mark.parametrize("profile", ["hv15r", "nlp240"])
@pytest.mark.parametrize("kernel", ["SMV", "SMM"])
def test_sparse_ablations(benchmark, profile, kernel, report_log):
    (rows, cols, vals), n = sparse_profile(profile, scale=MATRIX_SCALE, seed=2018)
    loader = LevelHeadedEngine()
    loader.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    loader.register_vector("x", dense_vector(n), domain="dim")
    catalog = loader.catalog
    sql = matvec_sql("m", "x") if kernel == "SMV" else matmul_sql("m")

    lh = LevelHeadedEngine(catalog)
    lh.query(sql)
    rounds = REPEATS if kernel == "SMV" else max(2, REPEATS - 1)
    benchmark.pedantic(lambda: lh.query(sql), rounds=rounds, warmup_rounds=0)
    base = benchmark.stats.stats.mean

    # attribute elimination has no effect on two-column matrices ('-')
    no_order = run_guarded(
        lambda: LevelHeadedEngine(catalog, config=NO_ORDERING).query(sql),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    if kernel == "SMV":
        no_order = None  # one aggregated attribute: every order is the same
    _record(report_log, 1, f"{kernel} {profile}", base, None, no_order)


@pytest.mark.parametrize("kernel", ["DMV", "DMM"])
def test_dense_ablations(benchmark, kernel, report_log):
    matrix = dense_matrix("16384", scale=DENSE_SCALE, seed=2018)
    n = matrix.shape[0]
    loader = LevelHeadedEngine()
    loader.register_matrix("m", matrix, domain="dim")
    loader.register_vector("x", dense_vector(n), domain="dim")
    catalog = loader.catalog
    sql = matvec_sql("m", "x") if kernel == "DMV" else matmul_sql("m")

    lh = LevelHeadedEngine(catalog)
    assert lh.compile(sql).mode == "blas"
    lh.query(sql)
    benchmark.pedantic(lambda: lh.query(sql), rounds=REPEATS, warmup_rounds=1)
    base = benchmark.stats.stats.mean

    # without attribute elimination the dense annotation is not BLAS
    # compatible: the kernel runs as a pure WCOJ join (the 500x row)
    no_elim = run_guarded(
        lambda: LevelHeadedEngine(catalog, config=NO_ELIMINATION).query(sql),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    _record(report_log, 2, f"{kernel} 16384", base, no_elim, None)
