"""Figure 1: the BI/LA performance landscape.

Paper: a qualitative quadrant -- specialized engines excel on one side
(HyPer on BI, MKL on LA) and collapse on the other; LevelHeaded targets
competitive performance on both.

Reproduction: a representative BI query (Q5) and LA kernel (SMV) run on
every engine; each engine's slowdown relative to the per-side best
locates it in the landscape.  The expected shape: the pairwise engines
near 1x on BI and orders of magnitude off (or oom) on LA, the LA
package unable to run BI at all, LevelHeaded within small factors on
both sides.
"""

import pytest

from repro import LevelHeadedEngine
from repro.baselines import LAPackage, NaiveWCOJEngine, PairwiseEngine
from repro.bench import Measurement, best_of, render_table, run_guarded
from repro.datasets import dense_vector, sparse_profile
from repro.datasets.tpch import Q5
from repro.la import matvec_sql

from .conftest import BUDGET, MATRIX_SCALE, REPEATS, TIMEOUT

ENGINES = ["levelheaded", "hyper*", "monetdb*", "logicblox*", "mkl*"]


def test_fig1_landscape(benchmark, tpch_catalog, report_log):
    # BI side: Q5
    bi = {}
    bi["levelheaded"] = run_guarded(
        lambda: LevelHeadedEngine(tpch_catalog).query(Q5), repeats=REPEATS
    )
    bi["hyper*"] = run_guarded(
        lambda: PairwiseEngine(tpch_catalog, planner="selinger").query(Q5), repeats=REPEATS
    )
    bi["monetdb*"] = run_guarded(
        lambda: PairwiseEngine(tpch_catalog, planner="fifo").query(Q5), repeats=REPEATS
    )
    bi["logicblox*"] = run_guarded(
        lambda: NaiveWCOJEngine(tpch_catalog).query(Q5),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    bi["mkl*"] = Measurement("no SQL")  # LA packages cannot run BI queries

    # LA side: SMV on the hv15r profile
    (rows, cols, vals), n = sparse_profile("hv15r", scale=MATRIX_SCALE, seed=2018)
    loader = LevelHeadedEngine()
    loader.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    loader.register_vector("x", dense_vector(n), domain="dim")
    catalog = loader.catalog
    package = LAPackage()
    package.load_sparse("m", rows, cols, vals, n)
    package.load_vector("x", dense_vector(n))
    sql = matvec_sql("m", "x")

    la = {}
    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(sql)
    lh.execute(plan)
    benchmark.pedantic(lambda: lh.execute(plan), rounds=REPEATS, warmup_rounds=0)
    la["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    la["mkl*"] = run_guarded(lambda: package.smv("m", "x"), repeats=REPEATS)
    la["hyper*"] = run_guarded(
        lambda: PairwiseEngine(catalog, planner="selinger", memory_budget_bytes=BUDGET).query(sql),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    la["monetdb*"] = run_guarded(
        lambda: PairwiseEngine(catalog, planner="fifo", memory_budget_bytes=BUDGET).query(sql),
        repeats=1,
        timeout_seconds=TIMEOUT,
    )
    naive = NaiveWCOJEngine(catalog)
    naive_plan = naive.compile(sql)
    la["logicblox*"] = run_guarded(
        lambda: naive.execute(naive_plan), repeats=1, timeout_seconds=TIMEOUT
    )

    bi_best, la_best = best_of(bi), best_of(la)
    rows_out = []
    for engine in ENGINES:
        rows_out.append(
            [
                engine,
                bi[engine].render_relative(bi_best),
                la[engine].render_relative(la_best),
            ]
        )
    report_log.add_table(
        "fig1_summary",
        render_table(
            "Figure 1: slowdown vs per-side best (BI = TPC-H Q5, LA = SMV hv15r)",
            ["engine", "BI", "LA"],
            rows_out,
        ),
    )
    # the landscape's shape: LevelHeaded competitive on both sides
    assert la["levelheaded"].ok
    assert bi["levelheaded"].ok
