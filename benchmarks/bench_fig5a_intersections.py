"""Figure 5a: set-intersection performance per layout pair.

Paper: at equal cardinalities (1e6 and 1e7), bs∩bs is ~50x faster than
uint∩uint and bs∩uint sits ~5x over bs∩bs -- the measurements behind
the icost constants 1 / 10 / 50 (Section V-A1).

Reproduction: the same three kernels at laptop cardinalities; the
derived cost ratios (uint∩uint over bs∩bs etc.) are reported so the
icost model can be sanity-checked against this machine.
"""

import numpy as np
import pytest

from repro.bench import format_seconds, measure, render_table
from repro.sets import BitSet, UintSet, intersect

from .conftest import REPEATS

CARDINALITIES = [100_000, 1_000_000]

_rows = {}
_times = {}


def _make_pair(kind: str, cardinality: int, rng):
    # Values spread over 8x the cardinality: dense enough for realistic
    # bitsets, sparse enough that uint sets stay uint-shaped.
    domain = cardinality * 8
    a = np.sort(rng.choice(domain, size=cardinality, replace=False).astype(np.uint32))
    b = np.sort(rng.choice(domain, size=cardinality, replace=False).astype(np.uint32))
    if kind == "uint-uint":
        return UintSet(a), UintSet(b)
    if kind == "bs-bs":
        return BitSet.from_values(a), BitSet.from_values(b)
    return BitSet.from_values(a), UintSet(b)


@pytest.mark.parametrize("cardinality", CARDINALITIES)
@pytest.mark.parametrize("kind", ["bs-bs", "bs-uint", "uint-uint"])
def test_intersection_kind(benchmark, kind, cardinality, rng, report_log):
    left, right = _make_pair(kind, cardinality, rng)
    benchmark.pedantic(
        lambda: intersect(left, right), rounds=max(REPEATS, 5), warmup_rounds=1
    )
    seconds = benchmark.stats.stats.mean
    _times[(cardinality, kind)] = seconds

    base = _times.get((cardinality, "bs-bs"))
    ratio = f"{seconds / base:.1f}x bs-bs" if base else "-"
    _rows[(cardinality, kind)] = [f"{cardinality:.0e}", kind, format_seconds(seconds), ratio]
    report_log.add_table(
        "fig5a_intersections",
        render_table(
            "Figure 5a: intersection time per layout pair (icost basis 1/10/50)",
            ["cardinality", "kernel", "time", "relative"],
            [_rows[key] for key in sorted(_rows)],
        ),
    )
