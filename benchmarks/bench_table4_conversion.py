"""Table IV: column-store -> CSR conversion cost vs SMV query time.

Paper: converting a column store to the sparse-BLAS CSR format
(``mkl_scsrcoo``) takes 15-42x as long as one SMV execution -- the
transformation LevelHeaded's single trie-based structure avoids
entirely (Section VII, Table IV).

Reproduction: ``repro.la.sparse.coo_to_csr`` is the conversion.  In the
paper both sides of the ratio are compiled code; here the conversion is
compiled (numpy) while LevelHeaded's SMV is interpreted Python, which
would invert the ratio for the wrong reason.  The primary ratio
therefore uses a compiled SMV kernel (the LA package's CSR matvec) as
the per-query denominator, preserving the paper's like-for-like
comparison; the interpreted LevelHeaded SMV time is reported alongside
(see EXPERIMENTS.md).
"""

import pytest

from repro import LevelHeadedEngine
from repro.baselines import LAPackage
from repro.bench import format_seconds, measure, render_table
from repro.datasets import dense_vector, sparse_profile
from repro.la import coo_to_csr, matvec_sql

from .conftest import MATRIX_SCALE, REPEATS

_rows = {}


@pytest.mark.parametrize("profile", ["harbor", "hv15r", "nlp240"])
def test_conversion_vs_smv(benchmark, profile, report_log):
    (rows, cols, vals), n = sparse_profile(profile, scale=MATRIX_SCALE, seed=2018)
    loader = LevelHeadedEngine()
    loader.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    loader.register_vector("x", dense_vector(n), domain="dim")
    catalog = loader.catalog
    sql = matvec_sql("m", "x")

    lh = LevelHeadedEngine(catalog)
    lh.query(sql)
    lh_smv_seconds = measure(lambda: lh.query(sql), repeats=REPEATS)

    package = LAPackage()
    package.load_sparse("m", rows, cols, vals, n)
    package.load_vector("x", dense_vector(n))
    compiled_smv_seconds = measure(lambda: package.smv("m", "x"), repeats=REPEATS)

    benchmark.pedantic(
        lambda: coo_to_csr(rows, cols, vals, (n, n)), rounds=REPEATS, warmup_rounds=1
    )
    conversion_seconds = benchmark.stats.stats.mean

    ratio = conversion_seconds / compiled_smv_seconds
    _rows[profile] = [
        profile,
        format_seconds(conversion_seconds),
        format_seconds(compiled_smv_seconds),
        f"{ratio:.2f}",
        format_seconds(lh_smv_seconds),
    ]
    report_log.add_table(
        "table4_conversion",
        render_table(
            "Table IV: COO->CSR conversion vs compiled SMV "
            "(ratio = conversions per query); interpreted engine SMV shown "
            "for reference",
            ["dataset", "conversion", "SMV (compiled)", "ratio", "SMV (interpreted)"],
            [_rows[key] for key in sorted(_rows)],
        ),
    )
    # the paper's shape: one conversion costs many SMV executions
    assert ratio > 1.0
