"""Benchmark suite: one module per table/figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``; paper-style result
tables land in ``benchmarks/results/``.
"""
