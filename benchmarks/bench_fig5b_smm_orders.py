"""Figure 5b: sparse matmul under the two attribute orders.

Paper (nlp240): the cost-50 order [i, j, k] runs out of memory on a
1 TB machine; the cost-10 relaxed order [i, k, j] -- MKL's own loop
order, recovered by the V-A2 relaxation -- completes.

Reproduction: both orders forced on the nlp240 profile.  Our
interpreter streams the [i, j, k] order instead of materializing, so
the infeasibility shows up as a large slowdown (or timeout) rather
than a hard oom; the plan costs (10 vs 50 on k) are printed alongside.
"""

import pytest

from repro import EngineConfig, LevelHeadedEngine
from repro.bench import Measurement, format_seconds, render_table, run_guarded
from repro.datasets import sparse_profile
from repro.la import matmul_sql

from .conftest import MATRIX_SCALE, REPEATS, TIMEOUT

_rows = {}


@pytest.fixture(scope="module")
def smm_setup():
    # Fig 5b uses nlp240; a slightly smaller instance keeps the bad
    # order's runtime bounded.
    (rows, cols, vals), n = sparse_profile("nlp240", scale=MATRIX_SCALE * 0.6, seed=2018)
    loader = LevelHeadedEngine()
    loader.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    return loader.catalog, matmul_sql("m")


def _order_config(catalog, sql, order):
    probe = LevelHeadedEngine(catalog).compile(sql)
    materialized = list(probe.root.materialized)
    aggregated = [v for v in probe.root.attrs if v not in materialized]
    name_of = {"i": materialized[0], "j": materialized[1], "k": aggregated[0]}
    return EngineConfig(
        forced_root_order=tuple(name_of[x] for x in order), enable_blas=False
    )


@pytest.mark.parametrize("order", ["ikj", "ijk"])
def test_smm_order(benchmark, smm_setup, order, report_log):
    catalog, sql = smm_setup
    config = _order_config(catalog, sql, order)
    engine = LevelHeadedEngine(catalog, config=config)
    plan = engine.compile(sql)
    cost = plan.root.decision.cost

    if order == "ikj":
        engine.query(sql)
        benchmark.pedantic(
            lambda: engine.query(sql), rounds=max(2, REPEATS - 1), warmup_rounds=0
        )
        measurement = Measurement("ok", seconds=benchmark.stats.stats.mean)
        assert plan.root.relaxed
    else:
        measurement = run_guarded(
            lambda: engine.query(sql), repeats=1, timeout_seconds=TIMEOUT
        )
        benchmark.pedantic(lambda: None, rounds=1)  # keep --benchmark-only happy

    _rows[order] = [
        f"[{', '.join(order)}]",
        str(cost),
        measurement.label if not measurement.ok else format_seconds(measurement.seconds),
    ]
    report_log.add_table(
        "fig5b_smm_orders",
        render_table(
            "Figure 5b: sparse matmul (nlp240 profile) per attribute order",
            ["order", "cost", "time"],
            [_rows[key] for key in sorted(_rows)],
        ),
    )
    if "ikj" in _rows and "ijk" in _rows and measurement.ok and order == "ijk":
        good = _rows["ikj"][2]
        assert good != "oom"
