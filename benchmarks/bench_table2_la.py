"""Table II (linear algebra): SMV/SMM on the three sparse profiles and
DMV/DMM on the three dense sizes.

Paper: LevelHeaded within 2.5x of Intel MKL on all LA kernels, while
HyPer runs >18x slower or out of memory (SMM/DMM), and MonetDB/
LogicBlox land 1-2 orders of magnitude behind or time out.

Reproduction: the LA package (scipy/numpy) plays MKL; pairwise engines
pay materialized join intermediates (oom under the budget on SMM);
dense kernels route through the BLAS substrate so DMV/DMM sit at parity
with the package.  WCOJ-engine measurements execute a precompiled plan
(LA queries have no filters, so plan compilation -- dominated by the
scipy LP for the GHD width -- is one-time work, excluded like index
builds per the paper's protocol; see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro import LevelHeadedEngine
from repro.baselines import LAPackage, NaiveWCOJEngine, PairwiseEngine
from repro.bench import Measurement, comparison_row, render_table, run_guarded
from repro.datasets import dense_matrix, dense_vector, sparse_profile
from repro.la import matmul_sql, matvec_sql

from .conftest import BUDGET, DENSE_SCALE, MATRIX_SCALE, REPEATS, TIMEOUT

ENGINES = ["levelheaded", "mkl*", "hyper*", "monetdb*", "logicblox*"]
_rows = {}


def _sparse_setup(name):
    (rows, cols, vals), n = sparse_profile(name, scale=MATRIX_SCALE, seed=2018)
    engine = LevelHeadedEngine()
    engine.register_matrix("m", rows=rows, cols=cols, values=vals, n=n, domain="dim")
    engine.register_vector("x", dense_vector(n), domain="dim")
    package = LAPackage()
    package.load_sparse("m", rows, cols, vals, n)
    package.load_vector("x", dense_vector(n))
    return engine.catalog, package, n


def _dense_setup(label):
    matrix = dense_matrix(label, scale=DENSE_SCALE, seed=2018)
    n = matrix.shape[0]
    engine = LevelHeadedEngine()
    engine.register_matrix("m", matrix, domain="dim")
    engine.register_vector("x", dense_vector(n), domain="dim")
    package = LAPackage()
    package.load_dense("m", matrix)
    package.load_vector("x", dense_vector(n))
    return engine.catalog, package, n


def _guarded_precompiled(engine, sql, timeout_scale=1.0):
    plan = engine.compile(sql)
    return run_guarded(
        lambda: engine.execute(plan),
        repeats=1,
        timeout_seconds=TIMEOUT * timeout_scale,
    )


def _compare(catalog, package, sql, package_fn, timeout_scale=1.0):
    measurements = {
        "mkl*": run_guarded(package_fn, repeats=REPEATS),
        "hyper*": run_guarded(
            lambda: PairwiseEngine(catalog, planner="selinger", memory_budget_bytes=BUDGET).query(sql),
            repeats=1,
            timeout_seconds=TIMEOUT * timeout_scale,
        ),
        "monetdb*": run_guarded(
            lambda: PairwiseEngine(catalog, planner="fifo", memory_budget_bytes=BUDGET).query(sql),
            repeats=1,
            timeout_seconds=TIMEOUT * timeout_scale,
        ),
        "logicblox*": _guarded_precompiled(
            NaiveWCOJEngine(catalog), sql, timeout_scale
        ),
    }
    return measurements


def _record(report_log, workload, measurements):
    _rows[workload] = comparison_row(workload, measurements, ENGINES)
    report_log.add_table(
        "table2_la",
        render_table(
            "Table II (LA): kernel runtime, best engine absolute + relative factors",
            ["kernel", "baseline"] + ENGINES,
            [_rows[key] for key in sorted(_rows)],
        ),
    )


@pytest.mark.parametrize("profile", ["harbor", "hv15r", "nlp240"])
def test_smv(benchmark, profile, report_log):
    catalog, package, _n = _sparse_setup(profile)
    sql = matvec_sql("m", "x")
    measurements = _compare(catalog, package, sql, lambda: package.smv("m", "x"))
    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(sql)
    lh.execute(plan)
    benchmark.pedantic(lambda: lh.execute(plan), rounds=REPEATS, warmup_rounds=1)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    _record(report_log, f"SMV {profile}", measurements)


@pytest.mark.parametrize("profile", ["harbor", "hv15r", "nlp240"])
def test_smm(benchmark, profile, report_log):
    catalog, package, _n = _sparse_setup(profile)
    sql = matmul_sql("m")
    measurements = _compare(catalog, package, sql, lambda: package.smm("m"))
    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(sql)
    lh.execute(plan)
    benchmark.pedantic(lambda: lh.execute(plan), rounds=max(2, REPEATS - 1), warmup_rounds=0)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    _record(report_log, f"SMM {profile}", measurements)


@pytest.mark.parametrize("label", ["8192", "12288", "16384"])
def test_dmv(benchmark, label, report_log):
    catalog, package, _n = _dense_setup(label)
    sql = matvec_sql("m", "x")
    measurements = _compare(catalog, package, sql, lambda: package.dmv("m", "x"))
    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(sql)
    assert plan.mode == "blas"
    lh.execute(plan)
    benchmark.pedantic(lambda: lh.execute(plan), rounds=REPEATS, warmup_rounds=1)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    _record(report_log, f"DMV {label}", measurements)


@pytest.mark.parametrize("label", ["8192", "12288", "16384"])
def test_dmm(benchmark, label, report_log):
    catalog, package, _n = _dense_setup(label)
    sql = matmul_sql("m")
    measurements = _compare(catalog, package, sql, lambda: package.dmm("m"))
    lh = LevelHeadedEngine(catalog)
    plan = lh.compile(sql)
    assert plan.mode == "blas"
    lh.execute(plan)
    benchmark.pedantic(lambda: lh.execute(plan), rounds=REPEATS, warmup_rounds=1)
    measurements["levelheaded"] = Measurement("ok", seconds=benchmark.stats.stats.mean)
    _record(report_log, f"DMM {label}", measurements)
