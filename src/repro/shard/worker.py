"""One shard worker: a full engine behind the frame protocol, as a child process.

A worker is deliberately *not* a special runtime -- it is the exact
:class:`~repro.core.engine.LevelHeadedEngine` +
:class:`~repro.server.ReproServer` pair a standalone deployment runs,
listening on an ephemeral loopback port.  The coordinator talks to it
with the ordinary :class:`~repro.client.ReproClient`, so every shard
inherits admission, cancellation, flight recording, and metrics for
free, and the wire protocol stays the single seam between processes.

Workers spawn via the ``spawn`` multiprocessing context: the parent
coordinator lives inside an arbitrarily threaded host process (HTTP
sidecar, query threads), and ``fork`` under threads is a deadlock
lottery.  The child reports ``("ready", host, port)`` over a pipe once
its server is bound, then blocks until the parent sends ``"stop"`` or
closes its pipe end -- so an abandoned coordinator (or a crashed
parent) reaps its workers through EOF, never leaving orphans.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

from ..errors import ReproError

__all__ = ["ShardWorker", "worker_main"]

#: environment override for the multiprocessing start method (tests on
#: platforms where spawn is slow may set ``REPRO_SHARD_START_METHOD=fork``
#: at their own risk; the default is always safe).
START_METHOD_ENV = "REPRO_SHARD_START_METHOD"


def worker_main(index: int, config, conn) -> None:
    """Child-process entry point: serve one shard engine until told to stop."""
    # imports happen here, in the child, so the parent's pickled args
    # stay small (an EngineConfig dataclass and a pipe handle)
    from ..core.engine import LevelHeadedEngine
    from ..server import ReproServer

    try:
        engine = LevelHeadedEngine(config=config)
        server = ReproServer(
            engine, port=0, server_name=f"repro-shard-worker/{index}"
        )
        host, port = server.start()
    except BaseException as exc:  # pragma: no cover -- startup failure path
        try:
            conn.send(("failed", str(exc)))
        finally:
            conn.close()
        return
    conn.send(("ready", host, port))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died or closed: shut down cleanly
            if message == "stop":
                break
    finally:
        server.stop()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardWorker:
    """Parent-side handle for one worker process and its client connection."""

    def __init__(self, index: int, config=None, start_method: Optional[str] = None):
        method = start_method or os.environ.get(START_METHOD_ENV, "spawn")
        ctx = multiprocessing.get_context(method)
        self.index = index
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.client = None
        self._conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(index, config, child_conn),
            name=f"repro-shard-{index}",
            daemon=True,  # a dying parent never leaves worker orphans
        )
        self.process.start()
        # the child owns its end now; keeping it open here would mask
        # EOF detection in the worker loop
        child_conn.close()

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until the worker's server is bound and connect a client."""
        if self.client is not None:
            return
        if not self._conn.poll(timeout):
            self.stop()
            raise ReproError(
                f"shard worker {self.index} did not report ready "
                f"within {timeout:.0f}s"
            )
        message = self._conn.recv()
        if not (isinstance(message, tuple) and message[0] == "ready"):
            detail = message[1] if isinstance(message, tuple) and len(message) > 1 else message
            self.stop()
            raise ReproError(f"shard worker {self.index} failed to start: {detail}")
        _, self.host, self.port = message
        from ..client import ReproClient

        self.client = ReproClient(self.host, self.port)

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        """Close the client, ask the worker to exit, and reap it (idempotent)."""
        if self.client is not None:
            try:
                self.client.close()
            except Exception:
                pass
            self.client = None
        try:
            self._conn.send("stop")
        except (OSError, ValueError, BrokenPipeError):
            pass  # already stopping, or the worker is gone
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover -- stuck worker
            self.process.terminate()
            self.process.join(5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(5.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
