"""How a shard coordinator splits one catalog across worker engines.

LevelHeaded's storage model makes horizontal partitioning unusually
clean: every table's trie is keyed by its *leading* attribute, and key
attributes draw their values from shared, named domains.  Partitioning
by leading-attribute hash therefore co-partitions every table whose
leading key lives in the same domain -- ``lineitem`` and ``orders``
split by ``orderkey`` land matching tuples on the same shard, so a
join through that domain never crosses shard boundaries.

The scheme:

* pick one *partition domain* (explicitly, or the leading-key domain
  carrying the most total rows -- the dominant fact tables);
* tables whose leading key lives in that domain are **partitioned**:
  row ``r`` goes to shard ``hash(leading_key(r)) % N``;
* every other table (dimensions, LA operands, the ``__dim_*`` anchor
  tables) is **replicated** whole to all shards.

Hashing is deterministic and value-based: integers hash as ``v % N``
(dbgen-style dense keys spread evenly), everything else through
``crc32(str(v))``.  Nothing here depends on dictionary codes -- two
shards may encode the same value differently, which is why workers
return *decoded* group keys (see :meth:`LevelHeadedEngine._decode_partial`).
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..storage.table import Table

__all__ = [
    "leading_domain",
    "choose_partition_domain",
    "shard_indices",
    "slice_table",
]


def leading_domain(table: Table) -> Optional[str]:
    """The domain of ``table``'s leading key attribute (None if keyless)."""
    keys = table.schema.key_names
    if not keys:
        return None
    return table.schema.attribute(keys[0]).domain_name


def choose_partition_domain(tables: Iterable[Table]) -> Optional[str]:
    """Pick the leading-key domain carrying the most total rows.

    The biggest tables are the ones worth splitting; everything else is
    cheap to replicate.  Ties break lexicographically so the choice is
    deterministic across runs.  Internal ``__dim_*`` anchor tables are
    skipped as *votes* (their row count is a domain size, not data
    volume) but still partition if their domain wins through real
    tables.
    """
    totals: Dict[str, int] = {}
    for table in tables:
        if table.name.startswith("__dim_"):
            continue
        domain = leading_domain(table)
        if domain is not None:
            totals[domain] = totals.get(domain, 0) + table.num_rows
    if not totals:
        return None
    return max(sorted(totals), key=lambda domain: totals[domain])


def shard_indices(table: Table, attr_name: str, workers: int) -> List[np.ndarray]:
    """Row indices per shard, hashing ``attr_name``'s values mod ``workers``."""
    values = np.asarray(table.columns[attr_name])
    if values.dtype.kind in "iu":
        # numpy's % matches Python's for negatives: always in [0, N)
        buckets = values.astype(np.int64) % workers
    else:
        buckets = np.fromiter(
            (zlib.crc32(str(v).encode("utf-8")) % workers for v in values.tolist()),
            dtype=np.int64,
            count=len(values),
        )
    return [np.flatnonzero(buckets == w) for w in range(workers)]


def slice_table(table: Table, indices: np.ndarray) -> Table:
    """A new Table holding just ``indices``' rows (schema shared)."""
    columns = {
        name: np.asarray(table.columns[name])[indices]
        for name in table.schema.names
    }
    return Table(table.schema, columns)


def plan_distribution(
    tables: Iterable[Table], partition_domain: Optional[str]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Split table names into (partitioned, replicated) under a domain."""
    partitioned: List[str] = []
    replicated: List[str] = []
    for table in tables:
        if partition_domain is not None and leading_domain(table) == partition_domain:
            partitioned.append(table.name)
        else:
            replicated.append(table.name)
    return tuple(sorted(partitioned)), tuple(sorted(replicated))
