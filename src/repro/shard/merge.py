"""Semiring-aware merge of per-shard partial results.

Workers execute in *partial* mode: each returns decoded group-key
columns plus raw float64 aggregate partials (see
:meth:`LevelHeadedEngine._decode_partial`), with none of the result
finalization applied.  The coordinator's job is the classic
distributed-aggregation fold:

* ``SUM`` / ``COUNT`` partials **add** across shards (``AVG`` was
  already rewritten to a SUM/COUNT pair at translation time, so it
  merges for free and divides during finalization);
* ``MIN`` / ``MAX`` partials take the elementwise extremum;
* LA results *are* SUM aggregations under the (+, *) semiring --
  a matrix product's output tile is the union of per-shard tiles with
  coincident (i, j) entries summed -- so they ride the same path.

Groups are keyed by their decoded values (never shard-local dictionary
codes) and the merged table is ordered by sorted key tuples, which is
deterministic regardless of shard count or arrival order.  The caller
then applies :func:`repro.xcution.finalize.finalize_result` exactly
once -- the same code path a single-process run takes after executing
locally -- which is what makes sharded answers byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.result import ResultTable
from ..errors import ExecutionError
from ..xcution.stats import ExecutionStats

__all__ = ["MERGEABLE_FUNCS", "merge_partials", "merge_shard_stats"]

#: aggregate functions with a shard-mergeable partial form.  Anything
#: outside this set routes the query away from scatter execution.
MERGEABLE_FUNCS = frozenset({"sum", "count", "min", "max"})


def _merge_value(func: Optional[str], old: float, new: float) -> float:
    if func == "min":
        return new if new < old else old
    if func == "max":
        return new if new > old else old
    # sum / count (and the semiring + of LA annotations)
    return old + new


def _decoded_dtype(compiled, plan, ref):
    """The dtype a *local* decode would give group-key column ``ref``.

    Wire partials lose numpy dtype width (strings travel as JSON), but a
    local run decodes keys by fancy-indexing the domain dictionary, so
    its columns inherit the dictionary array's dtype (e.g. ``<U7`` for a
    nation-name dictionary whose widest value is ``'GERMANY'``).  The
    coordinator holds the very same catalog the plan compiled against,
    so it can recover that dtype exactly; ``None`` when ``ref`` has no
    dictionary (plain numeric keys keep their wire dtype).
    """
    bound = compiled.bound
    try:
        vertex = bound.vertex(ref)
    except KeyError:
        vertex = None
    if vertex is not None:
        alias, attr_name = vertex.members[0]
        dictionary = bound.tables[alias]._domain_dictionary(attr_name)
        return None if dictionary._is_identity else dictionary.values.dtype
    if plan is not None and plan.root is not None:
        for fetcher in plan.root.group_fetchers + plan.root.deferred_fetchers:
            if fetcher.ref_id == ref and fetcher.dictionary is not None:
                return fetcher.dictionary.values.dtype
    return None


def merge_partials(
    compiled, partials: List[ResultTable], plan=None
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
    """Fold per-shard partial tables into one final aggregate state.

    Returns ``(key_env, agg_columns, n_rows)`` in exactly the shape
    :meth:`LevelHeadedEngine._decode_env` produces locally, ready for
    :func:`~repro.xcution.finalize.finalize_result`.  ``plan`` (the
    coordinator's compiled physical plan) lets string key columns be
    rebuilt with their dictionary's native dtype -- see
    :func:`_decoded_dtype`.
    """
    funcs = {a.id: a.func for a in compiled.aggregates}
    tables = [p for p in partials if p is not None]
    if not tables:
        raise ExecutionError("shard merge received no partial results")
    names = tables[0].names
    for other in tables[1:]:
        if other.names != names:
            raise ExecutionError(
                f"shard partials disagree on layout: {other.names} vs {names}"
            )
    key_names = [n for n in names if n not in funcs]
    agg_names = [n for n in names if n in funcs]

    groups: Dict[Tuple, List[float]] = {}
    for table in tables:
        key_cols = [np.asarray(table.columns[n]) for n in key_names]
        agg_cols = [np.asarray(table.columns[n], dtype=np.float64) for n in agg_names]
        for i in range(table.num_rows):
            key = tuple(col[i] for col in key_cols)
            row = [float(col[i]) for col in agg_cols]
            have = groups.get(key)
            if have is None:
                groups[key] = row
            else:
                for j, name in enumerate(agg_names):
                    have[j] = _merge_value(funcs.get(name), have[j], row[j])

    ordered = sorted(groups)
    n_rows = len(ordered)
    key_env: Dict[str, np.ndarray] = {}
    for position, name in enumerate(key_names):
        source = np.asarray(tables[0].columns[name])
        values = [key[position] for key in ordered]
        native = _decoded_dtype(compiled, plan, name)
        if source.dtype != object:
            key_env[name] = np.array(
                values, dtype=native if native is not None else source.dtype
            )
        else:
            # wire-decoded string columns arrive as object arrays;
            # rebuild with the dictionary's dtype like a local decode does
            strings = [str(v) for v in values]
            key_env[name] = (
                np.array(strings, dtype=native)
                if native is not None
                else np.array(strings)
            )
    agg_columns: Dict[str, np.ndarray] = {
        name: np.array([groups[key][j] for key in ordered], dtype=np.float64)
        for j, name in enumerate(agg_names)
    }
    return key_env, agg_columns, n_rows


#: per-shard counters that must NOT sum into the coordinator's stats:
#: each worker runs its own plan cache, but the caller sees exactly one
#: compile -- the coordinator's -- so only its outcome may count.
_LOCAL_ONLY_FIELDS = (
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_invalidations",
    "plan_reoptimizations",
)


def merge_shard_stats(
    merged: ExecutionStats, shard_stats: List[Optional[ExecutionStats]]
) -> ExecutionStats:
    """Fold worker ExecutionStats into ``merged`` (coordinator's), in order.

    Counter fields sum, q-error fields take the max, per-node row maps
    add up -- :meth:`ExecutionStats.merge` semantics -- except the
    plan-cache outcome counters, which are stripped: the coordinator
    compiled (or cache-hit) the plan exactly once and already noted it.
    """
    for stats in shard_stats:
        if stats is None:
            continue
        cleaned = ExecutionStats.from_dict(
            {
                k: v
                for k, v in stats.as_dict().items()
                if k not in _LOCAL_ONLY_FIELDS
            }
        )
        merged.merge(cleaned)
    return merged
