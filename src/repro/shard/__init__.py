"""Sharded multi-process scale-out behind the unified query surface.

``repro.connect("shard://local?workers=4")`` builds a
:class:`ShardCoordinator`: registered relations partition by
leading-attribute hash across N worker processes (each a full engine
behind the ordinary frame protocol -- :mod:`repro.shard.worker`),
compiled plans scatter in partial mode, and per-shard row batches
gather through a semiring-aware merge (:mod:`repro.shard.merge`) plus
the exact finalization a single-process run applies
(:mod:`repro.xcution.finalize`) -- which is what makes sharded answers
byte-identical to serial ones.  See ``docs/scaleout.md``.
"""

from .coordinator import ShardCoordinator, ShardStatement
from .merge import MERGEABLE_FUNCS, merge_partials, merge_shard_stats
from .partitioner import (
    choose_partition_domain,
    leading_domain,
    shard_indices,
    slice_table,
)
from .worker import ShardWorker, worker_main

__all__ = [
    "ShardCoordinator",
    "ShardStatement",
    "ShardWorker",
    "worker_main",
    "MERGEABLE_FUNCS",
    "merge_partials",
    "merge_shard_stats",
    "choose_partition_domain",
    "leading_domain",
    "shard_indices",
    "slice_table",
]
