"""The shard coordinator: one query surface over N worker processes.

``ShardCoordinator`` wraps a fully governed local
:class:`~repro.core.engine.LevelHeadedEngine` and a fleet of
:class:`~repro.shard.worker.ShardWorker` processes.  The local engine
is the single source of truth: registrations land in its catalog (and
ship to workers lazily, sliced by the partitioner), plans compile
against it (one plan cache, one q-error feedback loop), admission runs
against its governor exactly once per query, and its flight recorder /
metrics registry carry the coordinator-level story while each worker
keeps its own.

Per query the coordinator picks one of three routes off the *compiled*
plan:

``scatter``
    Every partitioned alias joins through the partition domain (or
    there is at most one partitioned alias, which any row split
    satisfies) and every aggregate has a mergeable partial form.  The
    SQL fans out to all workers in ``partial`` mode; row batches gather
    into a semiring merge (:mod:`repro.shard.merge`) and finalize once
    (:mod:`repro.xcution.finalize`).
``single``
    No partitioned table participates -- all operands are replicated,
    so any one worker holds the complete inputs.  The query runs
    whole on one worker, round-robin, with full serial semantics.
``local``
    Scatter would be incorrect (partitioned tables joining off the
    partition key -- the triangle query's three-way self-join on
    different attributes is the canonical case) or partials don't
    merge.  The coordinator's own engine executes serially; answers
    stay correct at single-process speed.

Cancellation is one token end to end: the caller's
:class:`~repro.core.governor.CancelToken` (or the deadline token the
coordinator mints) is shared with every per-shard client, whose
watchers translate it into ``cancel`` frames on each worker
connection.  One ``query_id`` is stamped into every shard's flight
entry plus the coordinator's own, so ``/debug/flight`` correlates the
distributed run.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.governor import (
    CancelToken,
    QueryHandle,
    cancel_scope,
    current_admission_session,
)
from ..core.plan_cache import INVALIDATED, MISS, REOPTIMIZED
from ..errors import QueryKilledError, ReproError, UnsupportedOnTopology
from ..obs import NULL_TRACER, Span, Tracer, next_query_id
from ..sql.params import bind_param_values
from ..xcution.finalize import finalize_result
from ..xcution.stats import ExecutionStats
from ..sql.ast import ColumnRef
from .merge import MERGEABLE_FUNCS, _decoded_dtype, merge_partials, merge_shard_stats
from .partitioner import choose_partition_domain, leading_domain, shard_indices, slice_table
from .worker import ShardWorker

__all__ = ["ShardCoordinator", "ShardStatement"]

SCATTER, SINGLE, LOCAL = "scatter", "single", "local"


class ShardStatement:
    """A prepared statement whose executions route through the coordinator."""

    def __init__(self, coordinator: "ShardCoordinator", sql: str):
        self._coordinator = coordinator
        # validate eagerly against the coordinator catalog: syntax and
        # name errors surface at prepare time, like every other surface
        self._statement = coordinator.engine.prepare(sql)
        self.sql = sql

    @property
    def params(self) -> int:
        return len(self._statement.param_slots)

    def execute(
        self,
        params=None,
        collect_stats: bool = False,
        trace: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
        partial: bool = False,
        query_id: Optional[str] = None,
        approx=None,
    ):
        return self._coordinator.query(
            self.sql,
            params=params,
            collect_stats=collect_stats,
            trace=trace,
            timeout_ms=timeout_ms,
            cancel_token=cancel_token,
            partial=partial,
            query_id=query_id,
            approx=approx,
        )

    __call__ = execute

    def explain(self, params=None, analyze: bool = False, format: str = "text"):
        return self._statement.explain(params, analyze=analyze, format=format)

    def close(self) -> None:
        """Nothing to release (plans live in the coordinator's cache)."""

    def __enter__(self) -> "ShardStatement":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardCoordinator:
    """Partition, scatter, gather, merge -- behind the QuerySurface API."""

    def __init__(
        self,
        engine,
        workers: int = 2,
        partition: Optional[str] = None,
        start_method: Optional[str] = None,
        worker_timeout: float = 60.0,
    ):
        if workers < 1:
            raise ReproError(f"a shard surface needs >= 1 worker, got {workers}")
        self.engine = engine
        self.partition = partition
        self._partition_domain: Optional[str] = partition
        self._shipped: Dict[str, object] = {}  # table name -> Table identity shipped
        self._partitioned: set = set()
        self._sync_lock = threading.Lock()
        self._rr_lock = threading.Lock()
        self._rr = 0
        self._http = None
        self._closed = False
        self.workers: List[ShardWorker] = []
        try:
            # start every child first (interpreter boot overlaps), then
            # wait for the fleet to report ready
            for index in range(workers):
                self.workers.append(
                    ShardWorker(index, config=engine.config, start_method=start_method)
                )
            for worker in self.workers:
                worker.wait_ready(timeout=worker_timeout)
        except BaseException:
            self.close()
            raise

    # -- data distribution ---------------------------------------------------

    def _sync(self) -> None:
        """Ship new/changed catalog tables to the workers (lazily, per query).

        Tables whose leading key lives in the partition domain go out as
        hash-sliced partitions; everything else replicates whole.  A
        re-registered table (same name, new object) re-ships.  Shipping
        fans out worker-parallel: each worker has its own connection.
        """
        with self._sync_lock:
            catalog = self.engine.catalog
            if self._partition_domain is None:
                self._partition_domain = choose_partition_domain(
                    catalog.tables.values()
                )
            pending: List[Tuple[str, object]] = [
                (name, table)
                for name, table in sorted(catalog.tables.items())
                if self._shipped.get(name) is not table
            ]
            if not pending:
                return
            shipments: List[List[object]] = [[] for _ in self.workers]
            for name, table in pending:
                domain = leading_domain(table)
                if self._partition_domain is not None and domain == self._partition_domain:
                    attr = table.schema.key_names[0]
                    for shard, indices in enumerate(
                        shard_indices(table, attr, len(self.workers))
                    ):
                        shipments[shard].append(slice_table(table, indices))
                    self._partitioned.add(name)
                else:
                    for shard in range(len(self.workers)):
                        shipments[shard].append(table)
                    self._partitioned.discard(name)
            errors: List[Optional[BaseException]] = [None] * len(self.workers)

            def ship(shard: int) -> None:
                try:
                    for table in shipments[shard]:
                        self.workers[shard].client.register_table(table)
                except BaseException as exc:
                    errors[shard] = exc

            threads = [
                threading.Thread(target=ship, args=(shard,), daemon=True)
                for shard in range(len(self.workers))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            first = next((e for e in errors if e is not None), None)
            if first is not None:
                raise first
            for name, table in pending:
                self._shipped[name] = table

    # -- routing -------------------------------------------------------------

    def _route(self, plan) -> str:
        """Pick the execution route for one compiled plan (see module doc)."""
        compiled = plan.compiled
        bound = compiled.bound
        partitioned_aliases = [
            alias
            for alias, table in bound.tables.items()
            if table.name in self._partitioned
        ]
        if not partitioned_aliases:
            return SINGLE
        funcs = {a.func for a in compiled.aggregates}
        if not funcs <= MERGEABLE_FUNCS:
            return LOCAL
        if len(partitioned_aliases) > 1:
            # several partitioned tables: correct only if matching rows
            # co-locate, i.e. every leading key joins through one vertex
            vertices = set()
            for alias in partitioned_aliases:
                lead = bound.tables[alias].schema.key_names[0]
                vertex = bound.vertex_of.get((alias, lead))
                if vertex is None:
                    return LOCAL
                vertices.add(vertex)
            if len(vertices) != 1:
                return LOCAL
        return SCATTER

    def _next_worker(self) -> ShardWorker:
        with self._rr_lock:
            worker = self.workers[self._rr % len(self.workers)]
            self._rr += 1
        return worker

    # -- the QuerySurface ----------------------------------------------------

    def query(
        self,
        sql: str,
        params=None,
        config=None,
        collect_stats: bool = False,
        trace: bool = False,
        profile: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
        partial: bool = False,
        query_id: Optional[str] = None,
        approx=None,
    ):
        """Run one SQL query across the shard fleet.

        Admission, cancellation, stats, tracing, and flight recording
        behave exactly like :meth:`LevelHeadedEngine.query`; ``config=``,
        ``profile=``, ``partial=``, and ``approx=`` raise
        :class:`UnsupportedOnTopology` (a per-query config override
        cannot reach already-built workers, kernel profiles don't
        aggregate across processes, shard surfaces don't nest, and
        catalog samples aren't co-partitioned across workers yet).
        ``query_id`` lets a fronting server stamp its correlation id
        through -- a coordinator can itself sit behind a
        :class:`~repro.server.ReproServer`.
        """
        self._reject_unsupported(
            config=config, profile=profile, partial=partial, approx=approx
        )
        engine = self.engine
        self._sync()
        token = engine._make_token(timeout_ms, cancel_token)
        statement = literals = None
        if params is None:
            cached = engine.governor is not None and engine.plan_cache.peek(
                engine._plan_key(sql, engine.config), engine.catalog
            )
        else:
            statement = engine.prepare(sql)
            literals = bind_param_values(params, statement.param_slots)
            cached = engine.governor is not None and engine.plan_cache.peek(
                statement._cache_key(literals), engine.catalog
            )
        query_id = query_id or next_query_id()
        entry = engine.inflight.register(
            query_id, sql, session=current_admission_session()
        )
        slot = None
        try:
            with cancel_scope(token):
                slot = engine._admit(cached=cached, token=token, entry=entry)
                entry.phase = "compile"
                t0 = time.perf_counter()
                if statement is None:
                    plan, outcome, key = engine._cached_plan(sql, engine.config)
                else:
                    plan, outcome, key = statement._plan_for(literals)
                compile_seconds = (
                    time.perf_counter() - t0
                    if outcome in (MISS, INVALIDATED, REOPTIMIZED)
                    else None
                )
                route = self._route(plan)
                if route == LOCAL:
                    # serial fallback on the coordinator's own engine --
                    # correct for every query scatter cannot serve
                    tracer = Tracer() if (trace or token is not None) else NULL_TRACER
                    return engine._run_plan(
                        plan,
                        outcome,
                        collect_stats=collect_stats,
                        tracer=tracer,
                        compile_seconds=compile_seconds,
                        sql=sql,
                        expose_trace=trace,
                        cancel=token,
                        slot=slot,
                        cache_key=key,
                        query_id=query_id,
                        inflight=entry,
                    )
                entry.phase = "execute"
                t_exec = time.perf_counter()
                if route == SINGLE:
                    result, shard_stats, shard_traces = self._run_single(
                        sql, params, plan, token, query_id, trace
                    )
                else:
                    result, shard_stats, shard_traces = self._run_scatter(
                        sql, params, plan, token, query_id, trace
                    )
                execute_seconds = time.perf_counter() - t_exec
                merged = ExecutionStats()
                merged.query_id = query_id
                engine._note_cache_outcome(merged, outcome)
                merge_shard_stats(merged, shard_stats)
                _, drifted = engine._record_feedback(plan, merged, key)
                result.stats = merged if collect_stats else None
                result.query_id = query_id
                if trace:
                    result.trace = self._stitch_trace(
                        route, query_id, t_exec, execute_seconds, shard_traces
                    )
                bytes_out = result.nbytes
                engine.metrics.record_query(
                    execute_seconds,
                    compile_seconds=compile_seconds,
                    cache_outcome=outcome,
                    rows=result.num_rows,
                    bytes_materialized=bytes_out,
                    groups_emitted=merged.groups_emitted,
                )
                engine._finish_flight(
                    entry,
                    outcome="ok",
                    plan=plan,
                    cache_outcome=outcome,
                    compile_seconds=compile_seconds,
                    execute_seconds=execute_seconds,
                    rows=result.num_rows,
                    stats=merged,
                    drifted=drifted,
                    bytes_out=bytes_out,
                )
                return result
        except BaseException as exc:
            engine._note_query_failure(exc, entry)
            raise
        finally:
            engine.inflight.finish(query_id)
            engine._release(slot)

    def _run_single(
        self,
        sql: str,
        params,
        plan,
        token: Optional[CancelToken],
        query_id: str,
        trace: bool,
    ):
        """All operands replicated: run whole on one worker, round-robin."""
        worker = self._next_worker()
        result = worker.client.query(
            sql,
            params=params,
            collect_stats=True,
            trace=trace,
            timeout_ms=token.remaining_ms() if token is not None else None,
            cancel_token=token,
            query_id=query_id,
        )
        self._restore_native_dtypes(plan, result)
        stats, result.stats = result.stats, None
        span = result.trace
        if span is not None:
            span.set(shard=worker.index)
        return result, [stats], [span] if span is not None else []

    def _run_scatter(
        self,
        sql: str,
        params,
        plan,
        token: Optional[CancelToken],
        query_id: str,
        trace: bool,
    ):
        """Fan the query out in partial mode; gather, merge, finalize."""
        fan_token = token if token is not None else CancelToken()
        deadline_ms = fan_token.remaining_ms()
        n = len(self.workers)
        results: List[Optional[object]] = [None] * n
        errors: List[Optional[BaseException]] = [None] * n

        def run(shard: int, worker: ShardWorker) -> None:
            try:
                results[shard] = worker.client.query(
                    sql,
                    params=params,
                    collect_stats=True,
                    trace=trace,
                    timeout_ms=deadline_ms,
                    cancel_token=fan_token,
                    partial=True,
                    query_id=query_id,
                )
            except BaseException as exc:
                errors[shard] = exc

        threads = [
            threading.Thread(
                target=run, args=(shard, worker), name=f"repro-scatter-{shard}",
                daemon=True,
            )
            for shard, worker in enumerate(self.workers)
        ]
        for thread in threads:
            thread.start()
        # reap siblings early when one shard dies: firing the shared
        # token turns into cancel frames on every other connection
        while any(thread.is_alive() for thread in threads):
            if any(e is not None for e in errors) and not fan_token.cancelled:
                fan_token.cancel("sibling shard failed")
            for thread in threads:
                thread.join(0.01)
        killed = next(
            (e for e in errors if isinstance(e, QueryKilledError)), None
        )
        hard = next(
            (e for e in errors if e is not None and not isinstance(e, QueryKilledError)),
            None,
        )
        if hard is not None:
            raise hard  # the originating failure, not the sympathetic kills
        if killed is not None:
            raise killed
        key_env, agg_columns, n_rows = merge_partials(
            plan.compiled, results, plan=plan
        )
        result = finalize_result(plan.compiled, key_env, agg_columns, n_rows)
        shard_stats = [r.stats for r in results if r is not None]
        shard_traces = []
        for shard, partial in enumerate(results):
            if partial is not None and partial.trace is not None:
                shard_traces.append(partial.trace.set(shard=shard))
        return result, shard_stats, shard_traces

    def _restore_native_dtypes(self, plan, result) -> None:
        """Rebuild wire-decoded string columns with their local dtypes.

        JSON framing flattens numpy string columns to object arrays and
        forgets their width, but a serial run decodes group keys by
        fancy-indexing the domain dictionary -- inheriting its dtype.
        The coordinator compiled against the same catalog, so it can
        restore exactly that dtype and keep single-routed results
        byte-identical to serial ones.
        """
        exprs = dict(plan.compiled.output_columns)
        for name in result.names:
            column = np.asarray(result.columns[name])
            if column.dtype != object:
                continue
            expr = exprs.get(name)
            native = (
                _decoded_dtype(plan.compiled, plan, expr.name)
                if isinstance(expr, ColumnRef)
                else None
            )
            strings = [str(v) for v in column.tolist()]
            result.columns[name] = (
                np.array(strings, dtype=native)
                if native is not None
                else np.array(strings)
            )

    @staticmethod
    def _stitch_trace(
        route: str,
        query_id: str,
        t_exec: float,
        execute_seconds: float,
        shard_traces: List[Span],
    ) -> Span:
        root = Span(f"shard.{route}", t_exec)
        root.end = t_exec + execute_seconds
        root.set(query_id=query_id, shards=len(shard_traces))
        root.children.extend(shard_traces)
        return root

    def prepare(self, sql: str, config=None) -> ShardStatement:
        """Validate ``sql`` now; executions route through :meth:`query`."""
        self._reject_unsupported(config=config)
        return ShardStatement(self, sql)

    def explain(
        self,
        sql: str,
        params=None,
        config=None,
        analyze: bool = False,
        format: str = "text",
    ):
        """The coordinator plan (what routing inspects); analyze runs locally."""
        self._reject_unsupported(config=config)
        return self.engine.explain(sql, params=params, analyze=analyze, format=format)

    def submit(
        self,
        sql: str,
        params=None,
        config=None,
        collect_stats: bool = False,
        trace: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> QueryHandle:
        """Run :meth:`query` on a background thread; cancel fans out."""
        self._reject_unsupported(config=config)
        token = self.engine._make_token(timeout_ms, cancel_token) or CancelToken()
        handle = QueryHandle(token, sql)
        thread = threading.Thread(
            target=handle._run,
            args=(
                lambda: self.query(
                    sql,
                    params=params,
                    collect_stats=collect_stats,
                    trace=trace,
                    cancel_token=token,
                ),
            ),
            name="repro-shard-query",
            daemon=True,
        )
        thread.start()
        return handle

    def debug(
        self, what: str, n: Optional[int] = None, outcome: Optional[str] = None
    ) -> Dict[str, object]:
        """:meth:`debug_snapshot` under the unified QuerySurface name."""
        return self.debug_snapshot(what, n=n, outcome=outcome)

    def debug_snapshot(
        self, what: str, n: Optional[int] = None, outcome: Optional[str] = None
    ) -> Dict[str, object]:
        """The coordinator's view plus one entry per shard under ``shards``."""
        data = self.engine.debug_snapshot(what, n=n, outcome=outcome)
        shards: List[Dict[str, object]] = []
        for worker in self.workers:
            if worker.client is None or not worker.alive():
                shards.append({"shard": worker.index, "error": "worker not available"})
                continue
            try:
                view = worker.client.debug(what, n=n, outcome=outcome)
            except Exception as exc:
                shards.append({"shard": worker.index, "error": str(exc)})
                continue
            shards.append({"shard": worker.index, **view})
        data["shards"] = shards
        return data

    # -- observability hooks (the HTTP sidecar discovers these) -------------

    def shard_liveness(self) -> List[Dict[str, object]]:
        """Per-worker liveness for ``/healthz`` (dead worker => degraded)."""
        return [
            {
                "shard": worker.index,
                "alive": worker.alive(),
                "pid": worker.process.pid,
                "port": worker.port,
            }
            for worker in self.workers
        ]

    def metrics_prometheus(self) -> str:
        """Coordinator registry plus aggregated per-worker counters."""
        base = self.engine.metrics.to_prometheus().rstrip("\n")
        totals: Dict[str, float] = {}
        alive = 0
        for worker in self.workers:
            if worker.client is None or not worker.alive():
                continue
            try:
                data = worker.client.debug("metrics")["metrics"]
            except Exception:
                continue
            alive += 1
            for name, value in data.get("counters", {}).items():
                totals[name] = totals.get(name, 0) + value
        lines = [
            base,
            f"repro_shard_workers {len(self.workers)}",
            f"repro_shard_workers_alive {alive}",
        ]
        for name in sorted(totals):
            lines.append(f"repro_shard_worker_{name} {totals[name]:g}")
        return "\n".join(lines) + "\n"

    # -- lifecycle -----------------------------------------------------------

    def serve_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start the ``/metrics`` + ``/healthz`` + ``/debug/*`` sidecar."""
        from ..server.http import MetricsHTTPServer

        if self._http is None:
            self._http = MetricsHTTPServer(self, host=host, port=port)
        return self._http.start()

    def close(self) -> None:
        """Stop the HTTP sidecar and reap every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._http is not None:
            self._http.stop()
            self._http = None
        for worker in self.workers:
            worker.stop()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(workers={len(self.workers)}, "
            f"partition={self._partition_domain!r})"
        )

    def _reject_unsupported(
        self, config=None, profile: bool = False, partial: bool = False, approx=None
    ) -> None:
        if config is not None:
            raise UnsupportedOnTopology(
                "per-query config= overrides are not supported on the shard "
                "surface: workers were built with the coordinator's config; "
                "set it on repro.connect()",
                option="config",
                topology="shard",
            )
        if profile:
            raise UnsupportedOnTopology(
                "profile= is not supported on the shard surface: kernel "
                "profiles don't aggregate across worker processes",
                option="profile",
                topology="shard",
            )
        if partial:
            raise UnsupportedOnTopology(
                "partial= is not supported on the shard surface: workers "
                "already return partials, and shard surfaces don't nest",
                option="partial",
                topology="shard",
            )
        if approx is not None:
            raise UnsupportedOnTopology(
                "approx= is not supported on the shard surface: catalog "
                "samples are not co-partitioned across workers, so a "
                "scatter over samples would double-count strata; run "
                "approximate queries on a local or tcp surface",
                option="approx",
                topology="shard",
            )

    # mutable engine knobs the CLI shell pokes: forward through a real
    # property so assignment reaches the engine, not a shadow attribute
    @property
    def default_timeout_ms(self):
        return self.engine.default_timeout_ms

    @default_timeout_ms.setter
    def default_timeout_ms(self, value) -> None:
        self.engine.default_timeout_ms = value

    @property
    def config(self):
        return self.engine.config

    @config.setter
    def config(self, value) -> None:
        raise UnsupportedOnTopology(
            "the engine config is fixed once a shard fleet is running: "
            "workers were built with it; reconnect with the new config",
            option="config",
            topology="shard",
        )

    # everything else (catalog registration, metrics, flight, governor,
    # plan cache, ...) is the local engine's -- delegate so the
    # coordinator quacks like an engine for tooling built on one
    def __getattr__(self, name: str):
        if name.startswith("_") or name == "engine":
            raise AttributeError(name)
        return getattr(self.engine, name)
