"""Physical planning: GHD plans to executable node plans.

A :class:`PhysicalPlan` is a tree of :class:`NodePlan` objects (one per
GHD node), each carrying trie-backed relation bindings in the node's
chosen attribute order, plus the runtime forms of the aggregates, group
annotation fetchers, and output expressions.  Scan queries (no join
keys) and fully dense linear algebra (BLAS routing) get their own plan
shapes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..approx.rewrite import APPROX_POLICIES
from ..errors import PlanningError, UnsupportedQueryError
from ..obs import NULL_TRACER
from ..optimizer import (
    JOIN_STRATEGIES,
    EdgeStats,
    OrderDecision,
    StrategyDecision,
    choose_order,
    decide_strategy,
)
from ..query.decompose import choose_ghd, single_node_ghd
from ..query.ghd import GHD, GHDNode
from ..query.hypergraph import Hyperedge
from ..query.translate import CompiledQuery, GroupAnnotation
from ..sql.ast import ColumnRef, Expr
from ..sql.expressions import evaluate
from ..storage.table import AnnotationRequest, Table
from ..trie.trie import Trie


def _default_parallel() -> bool:
    """Default for ``EngineConfig.parallel``: the ``REPRO_PARALLEL`` env toggle.

    CI runs the whole test suite once with ``REPRO_PARALLEL=1`` so that
    thread-safety regressions in the parfor path fail loudly instead of
    silently corrupting counters.
    """
    return os.environ.get("REPRO_PARALLEL", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _default_num_threads() -> int:
    """Default for ``EngineConfig.num_threads``: ``REPRO_NUM_THREADS`` or 4.

    CI's governance job runs the suite across a small thread matrix
    (2 and 4) so chunking-dependent bugs surface without every test
    hand-constructing configs.
    """
    raw = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return 4


def _default_join_strategy() -> str:
    """Default for ``EngineConfig.join_strategy``: ``REPRO_JOIN_STRATEGY``.

    CI runs a join-strategy matrix (auto/wcoj/binary) over the suite via
    this env toggle so both engines -- and the hybrid dispatcher -- stay
    differentially correct without every test constructing configs.
    """
    raw = os.environ.get("REPRO_JOIN_STRATEGY", "").strip().lower()
    if not raw:
        return "auto"
    if raw not in JOIN_STRATEGIES:
        raise ValueError(
            f"REPRO_JOIN_STRATEGY={raw!r} is not one of {JOIN_STRATEGIES}"
        )
    return raw


def _default_approx() -> str:
    """Default for ``EngineConfig.approx``: the ``REPRO_APPROX`` env toggle.

    CI runs the approximate-query suite with its policy defaulted from
    the environment, mirroring ``REPRO_PARALLEL``/``REPRO_JOIN_STRATEGY``.
    """
    raw = os.environ.get("REPRO_APPROX", "").strip().lower()
    if not raw:
        return "never"
    if raw not in APPROX_POLICIES:
        raise ValueError(f"REPRO_APPROX={raw!r} is not one of {APPROX_POLICIES}")
    return raw


@dataclass
class EngineConfig:
    """Optimizer and executor toggles (the Table III ablations)."""

    enable_attribute_elimination: bool = True
    enable_attribute_ordering: bool = True
    enable_relaxation: bool = True
    enable_blas: bool = True
    force_single_node_ghd: bool = False
    parallel: bool = field(default_factory=_default_parallel)
    num_threads: int = field(default_factory=_default_num_threads)
    memory_budget_bytes: Optional[int] = None
    #: under memory-budget pressure the group aggregator may degrade
    #: from dict-backed dense accumulation to sorted-sparse columnar
    #: runs instead of raising ``OutOfMemoryBudgetError`` outright.
    allow_degraded_aggregation: bool = True
    #: pin the root node's attribute order (Figure 5b/5c experiments
    #: compare explicit orders); must be a permutation of the root's
    #: attributes that keeps materialized attributes first, except for
    #: the single relaxed swap of Section V-A2.
    forced_root_order: Optional[Tuple[str, ...]] = None
    #: per-node engine choice: ``"auto"`` scores each GHD node with both
    #: the WCOJ icost x weight estimate and a Selinger pairwise cost and
    #: picks per node; ``"wcoj"``/``"binary"`` pin one engine (binary
    #: still falls back to WCOJ for ineligible nodes, e.g. cyclic-safe
    #: ablation configs).  Defaults from ``REPRO_JOIN_STRATEGY``.
    join_strategy: str = field(default_factory=_default_join_strategy)
    #: build filtered (selection-pushed) tries lazily: structure rows
    #: on first probe, restricted to roots surviving the level-0
    #: intersection.  Unfiltered tries are cached/shared and always
    #: eager.
    lazy_trie_build: bool = True
    #: approximate-query policy (``repro.approx``): ``"never"`` always
    #: runs exact, ``"force"`` runs on samples whenever one covers a
    #: touched table, ``"allow"`` runs exact but lets the governor
    #: degrade an admission-rejected query to approximate instead of
    #: failing it.  Defaults from ``REPRO_APPROX``.
    approx: str = field(default_factory=_default_approx)

    def __post_init__(self):
        if self.join_strategy not in JOIN_STRATEGIES:
            raise ValueError(
                f"join_strategy={self.join_strategy!r} is not one of "
                f"{JOIN_STRATEGIES}"
            )
        if self.approx not in APPROX_POLICIES:
            raise ValueError(
                f"approx={self.approx!r} is not one of {APPROX_POLICIES}"
            )

    def fingerprint(self) -> Tuple:
        """A hashable token of every toggle, for plan-cache keys.

        Two configs with equal fingerprints produce identical plans for
        the same SQL and catalog state.
        """
        from dataclasses import fields

        return tuple((f.name, getattr(self, f.name)) for f in fields(self))


@dataclass
class RelationBinding:
    """One relation occurrence inside a node.

    WCOJ nodes bind a trie in node attribute order; binary nodes bind a
    columnar :class:`~repro.xcution.binary_join.RelationFrame` (raw
    filtered rows, same dictionary codes) and leave ``trie`` unset.
    """

    alias: str
    trie: Optional[Trie]
    vertices: Tuple[str, ...]  # node attrs restricted to this relation
    slot_ids: Tuple[str, ...] = ()  # annotations to read at the last level
    is_child_result: bool = False
    frame: Optional[object] = None  # RelationFrame for binary nodes


@dataclass
class GroupFetcher:
    """A metadata annotation fetch (Rule 4's container M) at the root."""

    ref_id: str
    trie: Trie
    vertices: Tuple[str, ...]  # determining vertices, fetch-trie order
    fetch_position: int  # root attr index after which all are bound
    dictionary: Optional[object] = None  # decode dictionary for strings


@dataclass
class AggregateRuntime:
    """Executable form of one aggregate."""

    agg_id: str
    func: str  # sum | count | min | max
    #: for sum/count: (coefficient, slot ids to multiply) per term
    terms: Tuple[Tuple[float, Tuple[str, ...]], ...] = ()
    minmax_slot: Optional[str] = None


@dataclass
class NodePlan:
    """One GHD node ready for the generic WCOJ interpreter."""

    attrs: Tuple[str, ...]
    materialized: Tuple[str, ...]  # subset of attrs (attr order), output keys
    relaxed: bool
    bindings: List[RelationBinding]
    decision: OrderDecision
    bag: frozenset
    children: List["NodePlan"] = field(default_factory=list)
    #: per-node engine: ``"wcoj"`` (generic join over tries) or
    #: ``"binary"`` (pairwise hash joins over columnar frames).
    strategy: str = "wcoj"
    #: both cost estimates plus the decision rationale (explain output).
    strategy_decision: Optional[StrategyDecision] = None
    #: slot id under which this node's aggregated annotation is exposed
    #: to its parent (None for the root).
    result_slot: Optional[str] = None
    #: aggregates this node computes (root: the query's; child: its
    #: single multiplicity sum).
    aggregates: List[AggregateRuntime] = field(default_factory=list)
    #: annotation fetches performed during the walk (their determining
    #: vertices include aggregated attributes).
    group_fetchers: List[GroupFetcher] = field(default_factory=list)
    #: annotation fetches determined entirely by output vertices: they
    #: are decoded vectorized after execution instead of per tuple.
    deferred_fetchers: List[GroupFetcher] = field(default_factory=list)
    #: group-key components produced during the walk, in append order:
    #: ("vertex", name) / ("ann", ref).
    walk_layout: List[Tuple[str, str]] = field(default_factory=list)
    #: full result layout: walk components then deferred annotations.
    group_layout: List[Tuple[str, str]] = field(default_factory=list)
    #: stable tree-position key ("n0", "n0.0", ...): identical across
    #: recompiles of the same SQL/catalog (the GHD shape is
    #: deterministic), so the q-error feedback loop can pair a cached
    #: plan's estimates with actuals observed on an earlier compile.
    node_key: str = "n0"


@dataclass
class ScanPlan:
    """Single-table, no-join aggregation (TPC-H Q1/Q6 path)."""

    alias: str
    table: Table
    filters: List[Expr]
    slot_exprs: Dict[str, Tuple[Optional[Expr], str]]  # slot -> (expr, combine)
    group_exprs: List[GroupAnnotation]
    aggregates: List[AggregateRuntime]
    touch_all_columns: bool = False  # -Attr.Elim ablation


@dataclass
class BlasPlan:
    """Dense LA routed to the BLAS substrate (Section III-D)."""

    einsum_spec: str
    operand_bindings: List[Tuple[str, Tuple[str, ...], str]]  # alias, vertices, slot
    output_vertices: Tuple[str, ...]
    aggregates: List[AggregateRuntime]
    slot_exprs: Dict[str, Expr]
    domain_sizes: Dict[str, int]


@dataclass
class PhysicalPlan:
    """An executable plan.

    Plans are **immutable at execution time**: ``execute_plan`` never
    mutates the plan tree, so one plan may be executed any number of
    times (prepared statements, the plan cache, benchmark loops) as
    long as it is still *current* -- ``domain_versions`` records the
    catalog key-domain versions the plan's tries were built against,
    and :meth:`is_current` checks them.  A stale plan must be rebuilt:
    its trie references hold codes from superseded dictionaries.
    """

    compiled: CompiledQuery
    mode: str  # join | scan | blas
    root: Optional[NodePlan] = None
    scan: Optional[ScanPlan] = None
    blas: Optional[BlasPlan] = None
    ghd: Optional[GHD] = None
    config: EngineConfig = field(default_factory=EngineConfig)
    #: key-domain versions captured at build time: domain name -> version.
    domain_versions: Dict[str, int] = field(default_factory=dict)
    #: :class:`~repro.approx.rewrite.ApproxSpec` when this plan was
    #: compiled over samples (``repro.approx``); None for exact plans.
    approx: Optional[object] = None

    def is_current(self, catalog) -> bool:
        """Whether the catalog's key domains still match this plan."""
        return all(
            catalog.domain_version(domain) == version
            for domain, version in self.domain_versions.items()
        )

    def explain(self) -> str:
        lines = [f"mode: {self.mode}"]
        if self.approx is not None:
            samples = ", ".join(
                f"{use.base}->{use.sample}" for use in self.approx.samples
            )
            lines.append(
                f"approx: fraction={self.approx.fraction:g} "
                f"confidence={self.approx.confidence:g} samples=[{samples}]"
            )
        if self.ghd is not None:
            lines.append("GHD:")
            lines.append(self.ghd.describe())
        if self.root is not None:
            for node, depth in _walk_plans(self.root):
                indent = "  " * depth
                lines.append(f"{indent}node attrs={list(node.attrs)} "
                             f"materialized={list(node.materialized)} "
                             f"relaxed={node.relaxed} cost={node.decision.cost}")
                sd = node.strategy_decision
                if sd is not None:
                    corrected = " [feedback-corrected]" if sd.corrected else ""
                    lines.append(
                        f"{indent}  strategy={node.strategy} "
                        f"wcoj_cost={sd.wcoj_cost:.1f} "
                        f"binary_cost={sd.binary_cost:.1f} "
                        f"input_rows={sd.input_rows:.0f} "
                        f"est_rows={sd.est_rows:.0f}{corrected} ({sd.reason})"
                    )
                for binding in node.bindings:
                    physical = "frame" if binding.frame is not None else "trie"
                    lines.append(
                        f"{indent}  {binding.alias}: {physical}{list(binding.vertices)} "
                        f"slots={list(binding.slot_ids)}"
                    )
        if self.blas is not None:
            lines.append(f"einsum: {self.blas.einsum_spec}")
        if self.scan is not None:
            lines.append(f"scan: {self.scan.alias}")
        return "\n".join(lines)

    def node_summaries(self) -> List[Dict]:
        """Structured per-node summaries for ``explain(format="json")``.

        Each entry carries the chosen engine plus both cost estimates
        under a versioned ``"strategy"`` block
        (:data:`repro.optimizer.STRATEGY_SCHEMA_VERSION`).
        """
        from ..optimizer import STRATEGY_SCHEMA_VERSION

        out: List[Dict] = []
        if self.root is None:
            return out
        for node, depth in _walk_plans(self.root):
            sd = node.strategy_decision
            strategy = (
                sd.as_dict()
                if sd is not None
                else {"version": STRATEGY_SCHEMA_VERSION, "choice": node.strategy}
            )
            out.append(
                {
                    "depth": depth,
                    "node_key": node.node_key,
                    "attrs": list(node.attrs),
                    "materialized": list(node.materialized),
                    "relaxed": node.relaxed,
                    "order_cost": float(node.decision.cost),
                    "strategy": strategy,
                    "result_slot": node.result_slot,
                    "bindings": [
                        {
                            "alias": b.alias,
                            "physical": "frame" if b.frame is not None else "trie",
                            "vertices": list(b.vertices),
                            "slots": list(b.slot_ids),
                        }
                        for b in node.bindings
                    ],
                }
            )
        return out


def _walk_plans(node: NodePlan, depth: int = 0):
    yield node, depth
    for child in node.children:
        yield from _walk_plans(child, depth + 1)


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------


def build_plan(
    compiled: CompiledQuery,
    config: Optional[EngineConfig] = None,
    tracer=None,
    feedback: Optional[Dict[str, int]] = None,
) -> PhysicalPlan:
    """Lower a compiled query to a physical plan.

    ``tracer`` (optional, a :class:`repro.obs.Tracer`) records the
    planning phases -- GHD decomposition, attribute-order search, trie
    builds -- as nested spans.  ``feedback`` (optional) maps
    ``NodePlan.node_key`` to observed actual row counts from a drifted
    cached plan: observations override the catalog/independence
    estimates during attribute-order search (child pseudo-edge
    cardinalities feed the relation-score weights) and strategy scoring
    (``est_rows`` is pinned to the observation).
    """
    config = config or EngineConfig()
    tracer = tracer or NULL_TRACER
    versions = _capture_domain_versions(compiled)
    if compiled.is_scan:
        with tracer.span("plan.scan"):
            scan = _build_scan(compiled, config)
        return PhysicalPlan(
            compiled=compiled,
            mode="scan",
            scan=scan,
            config=config,
            domain_versions=versions,
        )

    with tracer.span("ghd.decompose") as span:
        if config.force_single_node_ghd:
            ghd = single_node_ghd(compiled.hypergraph)
        else:
            ghd = choose_ghd(compiled.hypergraph, required_root=compiled.required_root)
        ghd = _pin_slot_edges_to_root(ghd, compiled)
        if tracer.active:
            span.set(nodes=sum(1 for _ in ghd.root.walk()))

    if config.enable_blas and config.enable_attribute_elimination:
        with tracer.span("blas.route") as span:
            blas = _try_blas_route(compiled, ghd)
            span.set(routed=blas is not None)
        if blas is not None:
            return PhysicalPlan(
                compiled=compiled,
                mode="blas",
                blas=blas,
                ghd=ghd,
                config=config,
                domain_versions=versions,
            )

    builder = _JoinPlanBuilder(compiled, config, ghd, tracer=tracer, feedback=feedback)
    root = builder.build()
    return PhysicalPlan(
        compiled=compiled,
        mode="join",
        root=root,
        ghd=ghd,
        config=config,
        domain_versions=versions,
    )


def _capture_domain_versions(compiled: CompiledQuery) -> Dict[str, int]:
    """Key-domain versions of every table the plan's tries encode."""
    versions: Dict[str, int] = {}
    for table in compiled.bound.tables.values():
        if table.catalog is None:
            continue
        for attr in table.schema.attributes:
            if attr.is_key:
                domain = attr.domain_name
                versions[domain] = table.catalog.domain_version(domain)
    return versions


def _pin_slot_edges_to_root(ghd: GHD, compiled: CompiledQuery) -> GHD:
    """Move slot-carrying edges to the root bag and prune emptied nodes.

    Aggregate annotations are read at the root (their vertices are in
    the root bag by the translator's ``required_root``); leaving the
    edge assigned to a child would double-count its contribution.
    """
    slot_aliases = {slot.alias for slot in compiled.slots}
    if not slot_aliases:
        return ghd
    moved: List[Hyperedge] = []

    def strip(node: GHDNode) -> Optional[GHDNode]:
        kept = [e for e in node.edges if e.alias not in slot_aliases]
        moved.extend(e for e in node.edges if e.alias in slot_aliases)
        children = [c for c in (strip(child) for child in node.children) if c is not None]
        if not kept and not children and node is not ghd.root:
            return None
        return GHDNode(bag=node.bag, edges=kept, children=children)

    new_root = strip(ghd.root)
    for edge in moved:
        if not edge.vertex_set <= new_root.bag:
            raise PlanningError(
                f"slot-carrying edge {edge} does not fit the root bag "
                f"{sorted(new_root.bag)} (planner invariant violated)"
            )
        new_root.edges.append(edge)
    return GHD(root=new_root, hypergraph=ghd.hypergraph)


class _JoinPlanBuilder:
    def __init__(
        self,
        compiled: CompiledQuery,
        config: EngineConfig,
        ghd: GHD,
        tracer=None,
        feedback: Optional[Dict[str, int]] = None,
    ):
        self.compiled = compiled
        self.config = config
        self.ghd = ghd
        self.tracer = tracer or NULL_TRACER
        self.feedback = dict(feedback) if feedback else {}
        self.bound = compiled.bound
        # vertex -> attribute name, per alias
        self.attr_of: Dict[str, Dict[str, str]] = {}
        for (alias, attr_name), vertex in self.bound.vertex_of.items():
            self.attr_of.setdefault(alias, {})[vertex] = attr_name
        self._child_counter = 0
        self._root_order: Optional[Tuple[str, ...]] = None
        self._mask_cache: Dict[str, Optional[np.ndarray]] = {}

    # -- top level -----------------------------------------------------------

    def build(self) -> NodePlan:
        return self._build_node(
            self.ghd.root, parent_bag=None, is_root=True, node_key="n0"
        )

    def _build_node(
        self,
        node: GHDNode,
        parent_bag: Optional[frozenset],
        is_root: bool,
        node_key: str,
    ) -> NodePlan:
        # The order decision comes first: the root's materialized order is
        # the global ordering every descendant node must respect.
        # Observed child actuals (feedback from a drifted cached plan)
        # override the static estimate: the corrected cardinality flows
        # into the relation-score weights of the attribute-order search
        # and the strategy chooser's input/binary costs -- the re-rank.
        child_edges = [
            Hyperedge(
                alias=f"__childedge{i}",
                relation=f"__childedge{i}",
                vertices=tuple(sorted(child.bag & node.bag)),
                cardinality=self.feedback.get(
                    f"{node_key}.{i}", self._estimate_child_cardinality(child)
                ),
            )
            for i, child in enumerate(node.children)
        ]
        local_edges = list(node.edges) + child_edges
        covered = set()
        for edge in local_edges:
            covered.update(edge.vertices)
        attrs_pool = [v for v in node.bag if v in covered]

        if is_root:
            materialized_pool = [
                v for v in self.compiled.output_vertices if v in node.bag
            ]
            missing = set(self.compiled.output_vertices) - set(materialized_pool)
            if missing:
                raise PlanningError(f"output vertices {missing} missing from root bag")
            materialized_pool = self._promote_determined_vertices(
                materialized_pool, set(attrs_pool)
            )
        else:
            materialized_pool = sorted(node.bag & parent_bag)

        allow_relax = (
            self.config.enable_relaxation
            and self.config.enable_attribute_elimination
            and self._relaxation_safe(is_root)
        )
        with self.tracer.span("attribute_order") as span:
            if is_root and self.config.forced_root_order is not None:
                decision = self._forced_decision(
                    self.config.forced_root_order,
                    attrs_pool,
                    materialized_pool,
                    local_edges,
                )
            else:
                decision = choose_order(
                    attrs_pool,
                    materialized=materialized_pool,
                    edges=local_edges,
                    fixed_materialized_order=self._root_order,
                    allow_relaxation=allow_relax,
                    pick_worst=not self.config.enable_attribute_ordering,
                )
            if self.tracer.active:
                span.set(
                    order=list(decision.order),
                    cost=decision.cost,
                    relaxed=decision.relaxed,
                    icost_weight={
                        v: {"icost": c, "weight": w}
                        for v, (c, w) in decision.per_vertex.items()
                    },
                )
        if is_root:
            self._root_order = decision.order

        with self.tracer.span("strategy.choose") as span:
            strategy_decision = self._decide_node_strategy(
                node, local_edges, decision, is_root, materialized_pool, node_key
            )
            if self.tracer.active:
                span.set(
                    choice=strategy_decision.choice,
                    wcoj_cost=strategy_decision.wcoj_cost,
                    binary_cost=strategy_decision.binary_cost,
                    est_rows=strategy_decision.est_rows,
                    reason=strategy_decision.reason,
                )

        child_plans = [
            self._build_node(
                child,
                parent_bag=node.bag,
                is_root=False,
                node_key=f"{node_key}.{i}",
            )
            for i, child in enumerate(node.children)
        ]
        bindings = [
            self._build_binding(edge, decision.order, is_root, strategy_decision.choice)
            for edge in node.edges
        ]
        # -Attr.Elim: unused key attributes remain as trailing trie
        # levels; surface them as extra aggregated attributes so the
        # executor walks (and pays for) them.
        synthetic = tuple(
            v
            for binding in bindings
            for v in binding.vertices
            if v.startswith("__elim_")
        )
        plan = NodePlan(
            attrs=decision.order + synthetic,
            materialized=tuple(v for v in decision.order if v in set(materialized_pool)),
            relaxed=decision.relaxed,
            bindings=bindings,
            decision=decision,
            bag=node.bag,
            children=child_plans,
            strategy=strategy_decision.choice,
            strategy_decision=strategy_decision,
            node_key=node_key,
        )
        if is_root:
            walk, deferred = self._build_group_fetchers(
                decision.order, set(materialized_pool)
            )
            plan.group_fetchers = walk
            plan.deferred_fetchers = deferred
            plan.aggregates = self._root_aggregates(plan, child_plans)
            plan.walk_layout = self._group_layout(plan)
            plan.group_layout = plan.walk_layout + [
                ("ann", fetcher.ref_id) for fetcher in deferred
            ]
        else:
            slot_id = f"__childagg{self._child_counter}"
            self._child_counter += 1
            plan.result_slot = slot_id
            plan.aggregates = [self._child_aggregate(plan, child_plans)]
            plan.walk_layout = [("vertex", v) for v in plan.materialized]
            plan.group_layout = list(plan.walk_layout)
        return plan

    def _forced_decision(self, order, attrs_pool, materialized_pool, local_edges):
        from ..optimizer.attribute_order import order_cost

        order = tuple(order)
        if sorted(order) != sorted(attrs_pool):
            raise PlanningError(
                f"forced order {list(order)} is not a permutation of the root "
                f"attributes {sorted(attrs_pool)}"
            )
        materialized = set(materialized_pool)
        positions = [i for i, v in enumerate(order) if v in materialized]
        relaxed = False
        if positions:
            compact = positions == list(range(len(positions)))
            relaxed_shape = (
                positions == list(range(len(positions) - 1)) + [len(order) - 1]
                and len(order) == len(positions) + 1  # exactly one swap
                and order[-2] not in materialized
            )
            if relaxed_shape:
                relaxed = True
            elif not compact:
                raise PlanningError(
                    f"forced order {list(order)} violates the materialized-first "
                    "rule (only the single V-A2 swap is allowed)"
                )
        cost, breakdown = order_cost(order, local_edges)
        return OrderDecision(order, cost, relaxed, breakdown)

    def _promote_determined_vertices(self, materialized_pool, attrs_pool):
        """Materialize hidden key vertices functionally determined by output.

        A group annotation whose determining keys are aggregated away
        forces a per-tuple fetch during the walk.  When some relation's
        data proves the output keys determine those keys (e.g. a
        voter's key determines its precinct key), materializing them
        adds no groups -- and turns the fetch into a vectorized
        deferred decode.  The extra vertices never reach the output
        columns; they only ride along in the group key.
        """
        if not materialized_pool:
            return materialized_pool
        out = list(materialized_pool)
        out_set = set(out)
        for group in self.compiled.group_annotations:
            missing = [v for v in group.determining_vertices if v not in out_set]
            if not missing or any(v not in attrs_pool for v in missing):
                continue
            for alias, table in self.bound.tables.items():
                alias_vertices = set(self.bound.edge_vertices(alias))
                if not set(missing) <= alias_vertices:
                    continue
                anchors = [v for v in out if v in alias_vertices]
                if not anchors:
                    continue
                vertex_to_attr = self.attr_of[alias]
                anchor_attrs = tuple(vertex_to_attr[v] for v in anchors)
                full_attrs = anchor_attrs + tuple(vertex_to_attr[v] for v in missing)
                if table.distinct_count(anchor_attrs) == table.distinct_count(full_attrs):
                    out.extend(missing)
                    out_set.update(missing)
                    break
        return out

    def _relaxation_safe(self, is_root: bool) -> bool:
        if not is_root:
            return True
        if any(a.func in ("min", "max") for a in self.compiled.aggregates):
            return False
        return True

    def _estimate_child_cardinality(self, child: GHDNode) -> int:
        """Static guess of a child node's output rows: its smallest edge.

        Edge cardinalities are *post-filter*: a pushed-down selection
        that narrows a relation narrows everything joined against it,
        and judging binary eligibility (or attribute weights) on raw
        catalog cardinalities would mis-cost exactly the selective
        fragments the hybrid planner exists for.
        """
        cards = []
        for member, _ in child.walk():
            cards.extend(
                rows
                for rows in (self._edge_rows(e) for e in member.edges)
                if rows > 0
            )
        return min(cards) if cards else 1

    def _edge_rows(self, edge: Hyperedge) -> int:
        """One edge's row count after pushed-down selections."""
        table = self.bound.tables.get(edge.alias)
        if table is None:
            return int(edge.cardinality)
        mask = self._filter_mask(edge.alias)
        return int(mask.sum()) if mask is not None else int(table.num_rows)

    # -- engine strategy ---------------------------------------------------------

    def _decide_node_strategy(
        self,
        node: GHDNode,
        local_edges: List[Hyperedge],
        decision: OrderDecision,
        is_root: bool,
        materialized_pool: Sequence[str],
        node_key: str,
    ) -> StrategyDecision:
        eligible, why = True, ""
        if len(local_edges) < 2:
            eligible, why = False, "single-edge fragment has nothing to pairwise-join"
        elif not (
            self.config.enable_attribute_elimination
            and self.config.enable_attribute_ordering
        ):
            eligible, why = False, "ablation config pins the WCOJ interpreter"
        elif is_root and self.config.forced_root_order is not None:
            eligible, why = False, "forced root order pins the WCOJ walk"
        elif any(getattr(e, "fully_dense", False) for e in node.edges):
            eligible, why = False, "dense LA fragment: flat/BLAS kernels win"
        stats = [self._edge_stats(edge) for edge in local_edges]
        return decide_strategy(
            self.config.join_strategy,
            stats,
            decision.cost,
            eligible=eligible,
            ineligible_reason=why,
            materialized=tuple(materialized_pool),
            observed_rows=self.feedback.get(node_key),
        )

    def _edge_stats(self, edge: Hyperedge) -> EdgeStats:
        alias = edge.alias
        table = self.bound.tables.get(alias)
        if table is None:  # child-result pseudo-edge
            card = float(max(edge.cardinality, 1))
            return EdgeStats(
                alias, tuple(edge.vertices), card, {v: card for v in edge.vertices}
            )
        mask = self._filter_mask(alias)
        card = float(int(mask.sum()) if mask is not None else table.num_rows)
        vertex_to_attr = self.attr_of.get(alias, {})
        distinct = {}
        for vertex in edge.vertices:
            attr = vertex_to_attr.get(vertex)
            if attr is None or card == 0.0:
                distinct[vertex] = card
            else:
                distinct[vertex] = float(min(table.distinct_count((attr,)), card))
        return EdgeStats(alias, tuple(edge.vertices), card, distinct)

    # -- bindings ---------------------------------------------------------------

    def _build_binding(
        self, edge: Hyperedge, order: Sequence[str], is_root: bool, strategy: str
    ) -> RelationBinding:
        alias = edge.alias
        table = self.bound.tables[alias]
        vertex_to_attr = self.attr_of.get(alias, {})
        vertices = tuple(v for v in order if v in edge.vertex_set)
        key_order = [vertex_to_attr[v] for v in vertices]

        if not self.config.enable_attribute_elimination:
            # -Attr.Elim: carry every key attribute as extra trailing
            # trie levels and attach every annotation buffer.
            extra = [k for k in table.schema.key_names if k not in key_order]
            key_order = key_order + extra

        requests: List[AnnotationRequest] = []
        slot_ids: List[str] = []
        arity = len(key_order)
        alias_slots = self.compiled.slots_of(alias) if is_root else []
        for slot in alias_slots:
            values, source = self._slot_values(alias, slot.expr)
            requests.append(
                AnnotationRequest(
                    slot.id, source, level=arity - 1, combine=slot.combine, values=values
                )
            )
            slot_ids.append(slot.id)
        if alias in self.compiled.dup_aliases:
            mult_id = f"__mult_{alias}"
            requests.append(
                AnnotationRequest(mult_id, "*", level=arity - 1, combine="count")
            )
            slot_ids.append(mult_id)
        if not self.config.enable_attribute_elimination:
            for ann_name in table.schema.annotation_names:
                token = f"__all_{ann_name}"
                if all(r.name != token for r in requests):
                    requests.append(
                        AnnotationRequest(token, ann_name, level=arity - 1, combine="first")
                    )

        row_mask = self._filter_mask(alias)
        if strategy == "binary":
            from .binary_join import build_frame

            with self.tracer.span("frame.build", alias=alias) as span:
                frame = build_frame(
                    table, vertices, tuple(key_order), tuple(requests), row_mask
                )
                if self.tracer.active:
                    span.set(key_order=list(key_order), rows=frame.num_rows)
            return RelationBinding(
                alias=alias,
                trie=None,
                vertices=vertices,
                slot_ids=tuple(slot_ids),
                frame=frame,
            )
        # Filtered builds are per-query cost; defer them to first probe
        # so the level-0 intersection can prune what gets structured.
        use_lazy = row_mask is not None and self.config.lazy_trie_build
        with self.tracer.span("trie.build", alias=alias) as span:
            trie = table.get_trie(
                tuple(key_order), tuple(requests), row_mask=row_mask, lazy=use_lazy
            )
            if self.tracer.active:
                if use_lazy:
                    span.set(key_order=list(key_order), lazy=True)
                else:
                    span.set(key_order=list(key_order), tuples=trie.num_tuples)
        return RelationBinding(
            alias=alias,
            trie=trie,
            vertices=vertices
            + tuple(f"__elim_{alias}_{k}" for k in key_order[len(vertices):]),
            slot_ids=tuple(slot_ids),
        )

    def _slot_values(self, alias: str, expr: Optional[Expr]):
        if expr is None:
            return None, "*"
        if isinstance(expr, ColumnRef):
            return None, expr.name  # let the table encode string columns
        table = self.bound.tables[alias]
        values = evaluate(expr, lambda ref: table.columns[ref.name])
        values = np.asarray(values)
        if values.dtype == object or values.dtype.kind in ("U", "S"):
            raise UnsupportedQueryError(
                f"computed annotation '{expr}' must be numeric"
            )
        if values.ndim == 0:
            values = np.full(table.num_rows, float(values))
        return values, str(expr)

    def _filter_mask(self, alias: str) -> Optional[np.ndarray]:
        if alias in self._mask_cache:
            return self._mask_cache[alias]
        predicates = self.bound.filters.get(alias, [])
        if not predicates:
            mask = None
        else:
            table = self.bound.tables[alias]
            mask = np.ones(table.num_rows, dtype=bool)
            for predicate in predicates:
                value = evaluate(predicate, lambda ref: table.columns[ref.name])
                mask &= np.asarray(value, dtype=bool)
        self._mask_cache[alias] = mask
        return mask

    # -- group fetchers ----------------------------------------------------------

    def _build_group_fetchers(self, order: Sequence[str], output_vertices: Set[str]):
        walk: List[GroupFetcher] = []
        deferred: List[GroupFetcher] = []
        position_of = {v: i for i, v in enumerate(order)}
        for group in self.compiled.group_annotations:
            table = self.bound.tables[group.alias]
            vertex_to_attr = self.attr_of[group.alias]
            vertices = tuple(
                sorted(group.determining_vertices, key=lambda v: position_of[v])
            )
            if not vertices or any(v not in position_of for v in vertices):
                raise PlanningError(
                    f"group annotation '{group.expr}' has unresolvable keys"
                )
            key_order = tuple(vertex_to_attr[v] for v in vertices)
            values, source = self._slot_values(group.alias, group.expr)
            dictionary = None
            if values is None and source != "*":
                attr = table.schema.attribute(source)
                if attr.type.value == "string":
                    dictionary = table.string_dictionary(source)
            request = AnnotationRequest(
                group.id, source, level=len(key_order) - 1, combine="first", values=values
            )
            trie = table.get_trie(key_order, (request,))
            fetcher = GroupFetcher(
                ref_id=group.id,
                trie=trie,
                vertices=vertices,
                fetch_position=max(position_of[v] for v in vertices),
                dictionary=dictionary,
            )
            if set(vertices) <= output_vertices:
                deferred.append(fetcher)
            else:
                walk.append(fetcher)
        return walk, deferred

    # -- aggregates ----------------------------------------------------------------

    def _root_aggregates(
        self, plan: NodePlan, child_plans: List[NodePlan]
    ) -> List[AggregateRuntime]:
        root_aliases = {b.alias for b in plan.bindings}
        child_slots = tuple(c.result_slot for c in child_plans)
        out = []
        for spec in self.compiled.aggregates:
            if spec.func in ("min", "max"):
                out.append(
                    AggregateRuntime(spec.id, spec.func, minmax_slot=spec.slot)
                )
                continue
            terms = []
            for term in spec.terms:
                slot_ids = list(term.factors.values())
                for alias in sorted(self.compiled.dup_aliases & root_aliases):
                    if alias not in term.factors:
                        slot_ids.append(f"__mult_{alias}")
                slot_ids.extend(child_slots)
                terms.append((term.coefficient, tuple(slot_ids)))
            out.append(AggregateRuntime(spec.id, spec.func, terms=tuple(terms)))
        return out

    def _child_aggregate(
        self, plan: NodePlan, child_plans: List[NodePlan]
    ) -> AggregateRuntime:
        slot_ids = [
            f"__mult_{b.alias}"
            for b in plan.bindings
            if b.alias in self.compiled.dup_aliases
        ]
        slot_ids.extend(c.result_slot for c in child_plans)
        return AggregateRuntime(
            plan.result_slot, "sum", terms=((1.0, tuple(slot_ids)),)
        )

    def _group_layout(self, plan: NodePlan) -> List[Tuple[str, str]]:
        layout: List[Tuple[str, str]] = []
        materialized = set(plan.materialized)
        for position, attr in enumerate(plan.attrs):
            if attr in materialized:
                layout.append(("vertex", attr))
            for fetcher in plan.group_fetchers:
                if fetcher.fetch_position == position:
                    layout.append(("ann", fetcher.ref_id))
        return layout


# ---------------------------------------------------------------------------
# scan plan
# ---------------------------------------------------------------------------


def _build_scan(compiled: CompiledQuery, config: EngineConfig) -> ScanPlan:
    alias = compiled.scan_alias
    table = compiled.bound.tables[alias]
    slot_exprs = {
        slot.id: (slot.expr, slot.combine) for slot in compiled.slots
    }
    aggregates = []
    for spec in compiled.aggregates:
        if spec.func in ("min", "max"):
            aggregates.append(AggregateRuntime(spec.id, spec.func, minmax_slot=spec.slot))
        else:
            terms = tuple(
                (term.coefficient, tuple(term.factors.values())) for term in spec.terms
            )
            aggregates.append(AggregateRuntime(spec.id, spec.func, terms=terms))
    return ScanPlan(
        alias=alias,
        table=table,
        filters=list(compiled.bound.filters.get(alias, [])),
        slot_exprs=slot_exprs,
        group_exprs=list(compiled.group_annotations),
        aggregates=aggregates,
        touch_all_columns=not config.enable_attribute_elimination,
    )


# ---------------------------------------------------------------------------
# BLAS routing
# ---------------------------------------------------------------------------


def _try_blas_route(compiled: CompiledQuery, ghd: GHD) -> Optional[BlasPlan]:
    """Recognize fully dense sum-product contractions (DMV/DMM).

    Conditions: single-node plan, every edge completely dense, exactly
    one SUM aggregate whose single term multiplies one slot from every
    relation, no filters, no group annotations, no dup relations.
    """
    if ghd.root.children:
        return None
    edges = ghd.root.edges
    if not edges or not all(e.fully_dense for e in edges):
        return None
    if compiled.group_annotations or compiled.dup_aliases:
        return None
    if any(compiled.bound.filters.get(e.alias) for e in edges):
        return None
    sums = [a for a in compiled.aggregates if a.func == "sum"]
    if len(sums) != 1 or len(compiled.aggregates) != 1:
        return None
    agg = sums[0]
    if len(agg.terms) != 1:
        return None
    term = agg.terms[0]
    if set(term.factors) != {e.alias for e in edges}:
        return None
    if len(edges) > 3 or any(len(e.vertices) > 2 for e in edges):
        return None

    letters: Dict[str, str] = {}
    for vertex in compiled.hypergraph.vertices:
        letters[vertex] = chr(ord("a") + len(letters))
    operand_specs = []
    operand_bindings = []
    slot_exprs = {}
    for edge in edges:
        operand_specs.append("".join(letters[v] for v in edge.vertices))
        slot_id = term.factors[edge.alias]
        operand_bindings.append((edge.alias, edge.vertices, slot_id))
        slot = next(s for s in compiled.slots if s.id == slot_id)
        slot_exprs[slot_id] = slot.expr
    output_spec = "".join(letters[v] for v in compiled.output_vertices)
    einsum_spec = ",".join(operand_specs) + "->" + output_spec

    domain_sizes = {}
    for edge in edges:
        table = compiled.bound.tables[edge.alias]
        for vertex, attr_name in zip(
            edge.vertices,
            [a for a in table.schema.key_names],
        ):
            domain = table.schema.attribute(attr_name).domain_name
            domain_sizes[vertex] = table.catalog.domain_size(domain)

    return BlasPlan(
        einsum_spec=einsum_spec,
        operand_bindings=operand_bindings,
        output_vertices=tuple(compiled.output_vertices),
        aggregates=[
            AggregateRuntime(agg.id, "sum", terms=((term.coefficient, ()),))
        ],
        slot_exprs=slot_exprs,
        domain_sizes=domain_sizes,
    )
