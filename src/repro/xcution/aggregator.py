"""Grouped aggregation state for the join executor.

The executor walks full attribute assignments and feeds per-group
contribution vectors (one entry per aggregate) into a
:class:`GroupAggregator`.  SUM/COUNT aggregates accumulate by addition,
MIN/MAX by elementwise min/max -- i.e. the additive operator of the
slot's semiring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import OutOfMemoryBudgetError

#: check the memory budget every this many new groups.
_BUDGET_CHECK_EVERY = 65536


class GroupAggregator:
    """Accumulates aggregate vectors keyed by group tuples."""

    def __init__(
        self,
        agg_funcs: Sequence[str],
        memory_budget_bytes: Optional[int] = None,
        group_width: int = 0,
        allow_degraded: bool = True,
    ):
        self.agg_funcs = tuple(agg_funcs)
        self.n_aggs = len(agg_funcs)
        self._sum_mask = np.array([f in ("sum", "count") for f in agg_funcs])
        self._min_mask = np.array([f == "min" for f in agg_funcs])
        self._max_mask = np.array([f == "max" for f in agg_funcs])
        self._all_additive = bool(self._sum_mask.all()) if self.n_aggs else True
        self.groups: Dict[Tuple, np.ndarray] = {}
        #: columnar batches of groups known to be unique (fast path for
        #: large materialized outputs like SMM): (key columns, matrix).
        self._batches: List[Tuple[List[np.ndarray], np.ndarray]] = []
        self._batch_rows = 0
        self._budget = memory_budget_bytes
        self._group_width = group_width
        self._since_check = 0
        #: graceful degradation under budget pressure: instead of dying,
        #: the dict-backed accumulation state spills into sorted-sparse
        #: columnar runs (8 bytes per cell instead of a keyed dict
        #: entry's ~64-byte overhead); ``result_arrays`` merges the runs
        #: back with a sort + segmented reduce, so results are identical
        #: to the dense path up to row order.
        self._allow_degraded = allow_degraded and group_width > 0
        self._spilled: List[Tuple[List[np.ndarray], np.ndarray]] = []
        self._spilled_rows = 0
        #: degradations performed (mirrored into
        #: ``ExecutionStats.aggregator_spills`` by the executor).
        self.spills = 0

    def add(self, key: Tuple, contribution: np.ndarray) -> None:
        """Merge one contribution vector into ``key``'s accumulator."""
        existing = self.groups.get(key)
        if existing is None:
            self.groups[key] = np.array(contribution, dtype=np.float64)
            self._since_check += 1
            if self._since_check >= _BUDGET_CHECK_EVERY:
                self._check_budget()
        elif self._all_additive:
            existing += contribution
        else:
            existing[self._sum_mask] += contribution[self._sum_mask]
            if self._min_mask.any():
                existing[self._min_mask] = np.minimum(
                    existing[self._min_mask], contribution[self._min_mask]
                )
            if self._max_mask.any():
                existing[self._max_mask] = np.maximum(
                    existing[self._max_mask], contribution[self._max_mask]
                )

    def add_batch_unique(
        self, prefix: Tuple, keys: np.ndarray, matrix: np.ndarray
    ) -> None:
        """Bulk-add groups ``prefix + (k,)`` known not to repeat.

        The executor uses this when the group key consists solely of
        materialized join attributes: trie distinctness guarantees each
        full assignment (and thus each group) is produced exactly once,
        so no dictionary merge is needed.
        """
        if keys.size == 0:
            return
        columns = [np.full(keys.size, part, dtype=np.int64) for part in prefix]
        columns.append(keys)
        self.add_batch_unique_columns(columns, matrix)

    def add_batch_unique_columns(
        self, columns: List[np.ndarray], matrix: np.ndarray
    ) -> None:
        """Bulk-add fully columnar unique groups (flat-kernel output)."""
        n = int(matrix.shape[0])
        if n == 0:
            return
        if len(columns) != self._group_width:
            raise ValueError("batch key width does not match the group layout")
        self._batches.append((columns, matrix))
        self._batch_rows += n
        self._since_check += n
        if self._since_check >= _BUDGET_CHECK_EVERY:
            self._check_budget()

    def merge(self, other: "GroupAggregator") -> None:
        """Fold another aggregator in (parfor partial results).

        The budget is re-checked unconditionally after every merge:
        merges are rare (one per parfor chunk), and the merged state is
        exactly where apportioned per-worker budgets could otherwise add
        up past the global ``memory_budget_bytes``.
        """
        for key, value in other.groups.items():
            self.add(key, value)
        self._batches.extend(other._batches)
        self._batch_rows += other._batch_rows
        self._spilled.extend(other._spilled)
        self._spilled_rows += other._spilled_rows
        self.spills += other.spills
        if self._budget is not None:
            self._check_budget()

    def check_budget(self) -> None:
        """Force a budget check now (end-of-node, post-merge).

        The incremental checks fire only every ``_BUDGET_CHECK_EVERY``
        new groups; executors call this once the node's state is
        complete so an over-budget aggregation is reported
        deterministically regardless of scale.
        """
        self._check_budget()

    def approx_bytes(self) -> int:
        """Approximate bytes held by the aggregation state.

        Rough accounting -- key tuple plus float vector per group -- the
        same estimate the memory budget is enforced against, also used
        by the kernel profiler's per-node memory high-water.
        """
        per_group = 64 + 8 * (self._group_width + self.n_aggs)
        # spilled runs are pure columnar arrays: 8 bytes per cell plus a
        # small per-row allowance, with no keyed-dict overhead -- that
        # difference is exactly what degrading buys.
        per_spilled = 8 + 8 * (self._group_width + self.n_aggs)
        return (
            per_group * (len(self.groups) + self._batch_rows)
            + per_spilled * self._spilled_rows
        )

    def _check_budget(self) -> None:
        self._since_check = 0
        if self._budget is None:
            return
        used = self.approx_bytes()
        if used > self._budget and self._allow_degraded:
            self._spill()
            used = self.approx_bytes()
        if used > self._budget:
            raise OutOfMemoryBudgetError(
                f"aggregation state exceeded memory budget "
                f"({used} > {self._budget} bytes, "
                f"{len(self.groups) + self._batch_rows + self._spilled_rows} groups)",
                requested_bytes=used,
                budget_bytes=self._budget,
            )

    def _spill(self) -> bool:
        """Degrade: move live state into sorted columnar runs.

        Both the dict-backed groups and the pending unique batches move
        into runs sorted by group key, so ``result_arrays`` can merge
        every run (and late dict re-adds of already-spilled keys) with
        one lexsort + segmented reduce per aggregate function.  Spilled
        rows are accounted at the lean columnar rate, which is exactly
        what degrading buys under budget pressure.
        """
        spilled_any = False
        if self.groups:
            keys = list(self.groups.keys())
            columns = [
                np.array([key[i] for key in keys], dtype=np.int64)
                for i in range(self._group_width)
            ]
            matrix = np.vstack([self.groups[key] for key in keys])
            order = np.lexsort(tuple(reversed(columns)))
            self._spilled.append(([col[order] for col in columns], matrix[order]))
            self._spilled_rows += len(keys)
            self.groups.clear()
            spilled_any = True
        if self._batches:
            columns = [
                np.concatenate([batch[0][i] for batch in self._batches])
                for i in range(self._group_width)
            ]
            matrix = np.vstack([batch[1] for batch in self._batches])
            order = np.lexsort(tuple(reversed(columns)))
            self._spilled.append(([col[order] for col in columns], matrix[order]))
            self._spilled_rows += int(matrix.shape[0])
            self._batches.clear()
            self._batch_rows = 0
            spilled_any = True
        if spilled_any:
            self.spills += 1
        return spilled_any

    def _merge_spilled(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Combine the spilled runs and any live dict groups, deduplicated.

        Duplicate keys (a group touched both before and after a spill,
        or present in several parfor partials) are reduced with each
        aggregate's own combine: addition for SUM/COUNT, elementwise
        min/max for MIN/MAX -- the same semiring ops the dense path
        applies incrementally, so values match it exactly for integer
        -valued aggregates and up to float re-association otherwise.
        """
        runs = list(self._spilled)
        if self.groups:
            keys = list(self.groups.keys())
            runs.append(
                (
                    [
                        np.array([key[i] for key in keys], dtype=np.int64)
                        for i in range(self._group_width)
                    ],
                    np.vstack([self.groups[key] for key in keys]),
                )
            )
        columns = [
            np.concatenate([run[0][i] for run in runs])
            for i in range(self._group_width)
        ]
        matrix = np.vstack([run[1] for run in runs])
        order = np.lexsort(tuple(reversed(columns)))
        columns = [col[order] for col in columns]
        matrix = matrix[order]
        new_group = np.zeros(matrix.shape[0], dtype=bool)
        new_group[0] = True
        for col in columns:
            new_group[1:] |= col[1:] != col[:-1]
        starts = np.flatnonzero(new_group)
        out = np.empty((starts.size, self.n_aggs))
        for a_idx in range(self.n_aggs):
            func = self.agg_funcs[a_idx]
            if func == "min":
                out[:, a_idx] = np.minimum.reduceat(matrix[:, a_idx], starts)
            elif func == "max":
                out[:, a_idx] = np.maximum.reduceat(matrix[:, a_idx], starts)
            else:
                out[:, a_idx] = np.add.reduceat(matrix[:, a_idx], starts)
        return [col[starts] for col in columns], out

    def __len__(self) -> int:
        """Groups held (an upper bound while degraded: a key spilled and
        then touched again counts once per run until ``result_arrays``
        deduplicates)."""
        return len(self.groups) + self._batch_rows + self._spilled_rows

    def result_arrays(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return (columnar group-key arrays, matrix of aggregate values)."""
        width = self._group_width
        matrices: List[np.ndarray] = []
        if self._spilled:
            # degraded mode: sorted-sparse runs (plus any post-spill dict
            # re-adds) merge through one sort + segmented reduce
            key_cols, merged = self._merge_spilled()
            matrices.append(merged)
        else:
            dict_keys = list(self.groups.keys())
            if dict_keys:
                key_cols = [
                    np.array([key[i] for key in dict_keys]) for i in range(width)
                ]
                matrices.append(np.vstack([self.groups[k] for k in dict_keys]))
            else:
                key_cols = [np.empty(0, dtype=np.int64) for _ in range(width)]
        if self._batches:
            batch_cols: List[List[np.ndarray]] = [[] for _ in range(width)]
            for columns, matrix in self._batches:
                for i in range(width):
                    batch_cols[i].append(columns[i])
                matrices.append(matrix)
            key_cols = [
                np.concatenate(
                    ([key_cols[i]] if key_cols[i].size else []) + batch_cols[i]
                )
                for i in range(width)
            ]
        if not matrices:
            return [np.empty(0, dtype=np.int64) for _ in range(width)], np.zeros(
                (0, self.n_aggs)
            )
        return key_cols, np.vstack(matrices) if len(matrices) > 1 else matrices[0]
