"""The generic worst-case optimal join interpreter (Algorithm 1).

One :class:`NodeExecutor` runs one GHD node: a nest of loops, one per
attribute in the optimizer's chosen order, whose bodies are trie
descents and set intersections (Table I's operations).  Three fast
paths keep the interpreter competitive:

* **vectorized tail** -- at the last attribute, intersection results,
  rank lookups, and annotation reads happen on whole numpy arrays;
* **relaxed-order kernel** -- when the Section V-A2 relaxation fired
  (a projected-away attribute precedes the final materialized one),
  per-group contributions accumulate through a 1-attribute union
  implemented as a vectorized scatter-add, recovering MKL's sparse
  matmul loop structure;
* **parallel outer loop** -- the paper's ``parfor``: the outermost
  intersection is chunked across worker threads, each with a private
  aggregator that is merged at the end.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError, OutOfMemoryBudgetError
from ..sets.ops import intersect_many
from .aggregator import GroupAggregator
from .parfor import chunk_slices, parfor_chunks
from .plan import EngineConfig, NodePlan, RelationBinding
from .stats import ExecutionStats


class NodeExecutor:
    """Executes one GHD node over its relation bindings."""

    def __init__(
        self,
        node: NodePlan,
        bindings: Sequence[RelationBinding],
        config: Optional[EngineConfig] = None,
        stats: Optional[ExecutionStats] = None,
        profiler=None,
        cancel=None,
    ):
        self.node = node
        self.stats = stats if stats is not None else ExecutionStats()
        self.bindings = list(bindings)
        self.config = config or EngineConfig()
        #: optional :class:`~repro.core.governor.CancelToken` polled at
        #: chunk granularity (per loop value / vectorized batch); shared
        #: verbatim with parfor worker clones so a ``cancel()`` or an
        #: elapsed deadline stops every thread at its next poll.
        self.cancel = cancel
        self.attrs = node.attrs
        n_attrs = len(self.attrs)
        #: optional :class:`repro.obs.KernelProfiler`; when set, the
        #: executor accumulates inclusive wall time per attribute
        #: position in ``_level_incl`` (self time per trie level is
        #: derived at the end of ``run``).
        self.profiler = profiler
        self._level_incl: Optional[List[float]] = (
            [0.0] * n_attrs if profiler is not None else None
        )
        position = {attr: i for i, attr in enumerate(self.attrs)}

        # participation map: at_attr[p] = [(binding index, trie level)]
        self.at_attr: List[List[Tuple[int, int]]] = [[] for _ in range(n_attrs)]
        for bi, binding in enumerate(self.bindings):
            for level, vertex in enumerate(binding.vertices):
                if vertex not in position:
                    raise ExecutionError(
                        f"binding '{binding.alias}' vertex '{vertex}' missing from "
                        f"node attributes {list(self.attrs)}"
                    )
                self.at_attr[position[vertex]].append((bi, level))
        for p, parts in enumerate(self.at_attr):
            if not parts:
                raise ExecutionError(f"attribute '{self.attrs[p]}' has no relations")

        self.last_level = [len(b.vertices) - 1 for b in self.bindings]
        self.slots_at = [
            [(slot_id, b.trie.annotation(slot_id)) for slot_id in b.slot_ids]
            for b in self.bindings
        ]
        self.fetchers_at: List[List] = [[] for _ in range(n_attrs)]
        for fetcher in node.group_fetchers:
            self.fetchers_at[fetcher.fetch_position].append(fetcher)

        self.materialized_set = set(node.materialized)
        self.aggs = node.aggregates
        self.n_aggs = len(self.aggs)
        self._all_additive = all(a.func in ("sum", "count") for a in self.aggs)
        # Group keys are provably unique (no dictionary merge needed)
        # when they are exactly the materialized join attributes and at
        # most one attribute is projected away, sitting at the relaxed
        # penultimate position: trie distinctness then yields each group
        # exactly once (an earlier projected attribute would repeat
        # groups across its values).
        non_materialized = [
            i for i, attr in enumerate(self.attrs) if attr not in self.materialized_set
        ]
        self._unique_groups = (
            not node.group_fetchers
            and all(kind == "vertex" for kind, _ in node.walk_layout)
            and bool(self.attrs)
            and self.attrs[-1] in self.materialized_set
            and (
                not non_materialized
                or (len(non_materialized) == 1 and non_materialized[0] == n_attrs - 2)
            )
        )

        # mutable per-run state
        self.state = [0] * len(self.bindings)  # current trie node id
        self.slot_env: Dict[str, float] = {}
        self.current_code: Dict[str, int] = {}
        self._fetch_cache: Dict[Tuple, object] = {}
        self.aggregator = GroupAggregator(
            [a.func for a in self.aggs],
            memory_budget_bytes=self.config.memory_budget_bytes,
            group_width=len(node.walk_layout),
            allow_degraded=self.config.allow_degraded_aggregation,
        )

    # -- public entry ---------------------------------------------------------

    def run(self) -> GroupAggregator:
        if not self.attrs:
            raise ExecutionError("join node with no attributes (use the scan path)")
        if self.cancel is not None:
            self.cancel.check()
        self.stats.nodes_executed += 1
        # The flat kernel is already fully vectorized (whole-node numpy
        # passes), so it runs as-is under parallel=True too: chunking a
        # single array kernel across threads would only change the
        # counters, not the work.
        if self.profiler is not None:
            start = time.perf_counter()
            flat = self._try_flat_two_level()
            if flat:
                # the whole-node columnar kernel spans both levels;
                # attribute it to the outermost
                self._level_incl[0] += time.perf_counter() - start
        else:
            flat = self._try_flat_two_level()
        if flat:
            self.stats.flat_kernels += 1
            if self.cancel is not None:
                self.stats.cancel_checks += 1
            self.stats.groups_emitted += len(self.aggregator)
            self.stats.aggregator_spills += self.aggregator.spills
            self._record_profile()
            return self.aggregator
        if self.config.parallel:
            self._run_parallel()
        else:
            self._recurse(0, ())
        self.aggregator.check_budget()
        self.stats.groups_emitted += len(self.aggregator)
        self.stats.aggregator_spills += self.aggregator.spills
        self._record_profile()
        return self.aggregator

    def _record_profile(self) -> None:
        if self.profiler is None:
            return
        self.profiler.record_node(
            self.node.result_slot or "root",
            self.attrs,
            self._level_incl,
            self.aggregator.approx_bytes(),
        )

    def _run_parallel(self) -> None:
        """parfor over the outermost loop (Section III-D).

        Each worker gets a *private* ``ExecutionStats`` and a *private*
        aggregator whose memory budget is its share of the configured
        ``memory_budget_bytes``; partial results are merged in chunk
        order after ``parfor_chunks`` completes, so repeated runs yield
        byte-identical counters and the aggregate state never exceeds
        the global budget (re-checked on every merge).  Counters that
        count *kernel invocations* (a vectorized tail or a relaxed
        union applied to the whole outer intersection) are normalized
        back to one logical invocation so parallel stats match the
        serial run exactly.
        """
        start = time.perf_counter() if self.profiler is not None else 0.0
        arr, child_ids = self._intersect_at(0)
        if self.profiler is not None:
            self._level_incl[0] += time.perf_counter() - start
        if arr.size == 0:
            return
        parts = self.at_attr[0]
        n_chunks = len(chunk_slices(arr.size, self.config.num_threads))
        budget = self.config.memory_budget_bytes
        worker_budget = None if budget is None else max(1, budget // n_chunks)
        # add_batch_unique assumes a group key never repeats; when the
        # chunked outermost attribute is materialized every chunk's keys
        # carry a distinct prefix, but a projected-away outer attribute
        # (the relaxed head shape) can emit the same group from several
        # chunks -- those workers must merge through the dict path.
        chunk_safe_unique = self.attrs[0] in self.materialized_set

        def worker(sl: slice):
            worker_stats = ExecutionStats()
            clone = NodeExecutor(
                self.node,
                self.bindings,
                _serial(self.config, worker_budget),
                stats=worker_stats,
                profiler=self.profiler,
                cancel=self.cancel,
            )
            if not chunk_safe_unique:
                clone._unique_groups = False
            clone._drive_slice(parts, arr[sl], [c[sl] for c in child_ids])
            return clone.aggregator, worker_stats, clone._level_incl

        for partial, worker_stats, worker_incl in parfor_chunks(
            worker, arr.size, self.config.num_threads, cancel=self.cancel
        ):
            # merge the worker's stats BEFORE its aggregate state: a
            # budget blowout during the merge must not lose the deltas
            # of work that was already done (the exception carries the
            # merged-so-far counters as partial_stats).
            self.stats.merge(worker_stats)
            try:
                self.aggregator.merge(partial)
            except OutOfMemoryBudgetError as exc:
                exc.partial_stats = self.stats
                raise
            if worker_incl is not None:
                # sum of worker thread times: under parallel execution
                # the per-level profile reports aggregate thread time,
                # not wall time (the counters stay chunk-invariant)
                for p, seconds in enumerate(worker_incl):
                    self._level_incl[p] += seconds
        if n_chunks > 1:
            self._normalize_chunked_kernel_counts(n_chunks)

    def _normalize_chunked_kernel_counts(self, n_chunks: int) -> None:
        """Count a chunked top-level kernel once, as the serial run does.

        When the whole node is one vectorized tail (single attribute) or
        one relaxed union (projected-away head), every chunk invokes the
        kernel on its slice; logically it is still a single application.
        """
        last = len(self.attrs) - 1
        if last == 0 and self._tail_ok(0):
            self.stats.tail_batches -= n_chunks - 1
            if self.cancel is not None:
                # the per-batch poll is likewise one logical check
                self.stats.cancel_checks -= n_chunks - 1
        elif self.node.relaxed and last == 1 and self._relaxed_ok(0):
            self.stats.relaxed_unions -= n_chunks - 1

    def _drive_slice(self, parts, arr, child_ids) -> None:
        # Mirror _recurse's dispatch at position 0 so parallel chunks
        # run the same kernels (and count the same work) as serial.
        start = time.perf_counter() if self.profiler is not None else 0.0
        last = len(self.attrs) - 1
        if last == 0 and self._tail_ok(0):
            self._vector_tail(0, (), arr, child_ids)
        elif self.node.relaxed and last == 1 and self._relaxed_ok(0):
            self._relaxed_tail(0, (), arr, child_ids)
        else:
            self._loop(0, (), arr, child_ids)
        if self.profiler is not None:
            self._level_incl[0] += time.perf_counter() - start

    # -- recursion ------------------------------------------------------------

    def _intersect_at(self, p: int):
        parts = self.at_attr[p]
        if len(parts) == 1:
            # single participant: the "intersection" is its own set and
            # child ids are consecutive (rank == position)
            bi, level_idx = parts[0]
            parent = self.state[bi] if level_idx > 0 else 0
            level = self.bindings[bi].trie.level(level_idx)
            arr = level.values_for(parent)
            if self.profiler is not None:
                self.profiler.record_scan()
            if arr.size == 0:
                return arr, []
            base = level.child_base(parent)
            return arr, [np.arange(base, base + arr.size, dtype=np.int64)]
        sets = []
        for bi, level_idx in parts:
            parent = self.state[bi] if level_idx > 0 else 0
            sets.append(self.bindings[bi].trie.level(level_idx).set_for(parent))
        isect = intersect_many(sets)
        arr = isect.to_array()
        self.stats.intersections += len(sets) - 1
        self.stats.intersection_output += int(arr.size)
        if arr.size == 0:
            return arr, []
        if p == 0:
            # Level-0 intersection output is the probe set: prunable
            # lazy tries materialize only the sub-tries under these
            # roots.  The parallel driver runs this on the main thread
            # before chunking, so the probe set (and every lazy-build
            # counter) is identical for serial and parallel runs.
            for bi, level_idx in parts:
                trie = self.bindings[bi].trie
                if level_idx == 0 and hasattr(trie, "note_probed_roots"):
                    trie.note_probed_roots(arr)
        child_ids = []
        for bi, level_idx in parts:
            parent = self.state[bi] if level_idx > 0 else 0
            level = self.bindings[bi].trie.level(level_idx)
            ranks = level.set_for(parent).rank_many(arr)
            child_ids.append(level.child_base(parent) + ranks)
        return arr, child_ids

    def _recurse(self, p: int, group_parts: Tuple) -> None:
        if self.profiler is None:
            self._recurse_impl(p, group_parts)
            return
        start = time.perf_counter()
        try:
            self._recurse_impl(p, group_parts)
        finally:
            # inclusive time at position p (this level and deeper);
            # _record_profile derives per-level self time by differencing
            self._level_incl[p] += time.perf_counter() - start

    def _recurse_impl(self, p: int, group_parts: Tuple) -> None:
        arr, child_ids = self._intersect_at(p)
        if arr.size == 0:
            return
        last = len(self.attrs) - 1
        if p == last and self._tail_ok(p):
            self._vector_tail(p, group_parts, arr, child_ids)
        elif (
            self.node.relaxed
            and p == last - 1
            and self._relaxed_ok(p)
        ):
            self._relaxed_tail(p, group_parts, arr, child_ids)
        else:
            self._loop(p, group_parts, arr, child_ids)

    def _tail_ok(self, p: int) -> bool:
        return not self.fetchers_at[p]

    def _relaxed_ok(self, p: int) -> bool:
        return (
            self._all_additive
            and not self.fetchers_at[p]
            and not self.fetchers_at[p + 1]
            and self.attrs[p] not in self.materialized_set
            and self.attrs[p + 1] in self.materialized_set
        )

    # -- flat two-attribute kernel -------------------------------------------------

    def _try_flat_two_level(self) -> bool:
        """Fully columnar execution of the common two-attribute shape.

        Pattern: one *driver* relation over both attributes plus any
        number of single-attribute relations (e.g. SMV's ``m(i, k)``
        joined with ``x(k)``, or a key-to-key lookup join).  The whole
        node then runs as array passes over the driver trie's flat
        buffers -- membership filters, gathers, and one scatter-add --
        with no per-tuple Python at all.
        """
        node = self.node
        if (
            len(self.attrs) != 2
            or node.relaxed
            or node.group_fetchers
            or not self._all_additive
        ):
            return False
        drivers = [b for b in self.bindings if len(b.vertices) == 2]
        if len(drivers) != 1:
            return False
        driver = drivers[0]
        if driver.vertices != self.attrs:
            return False
        a_bindings = [b for b in self.bindings if b.vertices == (self.attrs[0],)]
        b_bindings = [b for b in self.bindings if b.vertices == (self.attrs[1],)]
        if len(a_bindings) + len(b_bindings) + 1 != len(self.bindings):
            return False

        trie = driver.trie
        level0, level1 = trie.level(0), trie.level(1)
        a_values = level0.flat_values  # value of parent p is a_values[p]
        if a_values.size == 0:
            return True
        # filter parents (a side) and expand to the nnz rows
        a_mask = np.ones(a_values.size, dtype=bool)
        for binding in a_bindings:
            a_mask &= binding.trie.root_set().contains_many(a_values)
        counts = np.diff(level1.offsets)
        parent_of_row = np.repeat(np.arange(a_values.size, dtype=np.int64), counts)
        b_values = level1.flat_values
        mask = a_mask[parent_of_row]
        for binding in b_bindings:
            mask &= binding.trie.root_set().contains_many(b_values)
        selected = np.flatnonzero(mask)
        if selected.size == 0:
            return True
        parents = parent_of_row[selected]

        local: Dict[str, np.ndarray] = {}
        for slot_id, annotation in self.slots_at[self.bindings.index(driver)]:
            local[slot_id] = annotation.values[selected]
        for binding in b_bindings:
            root = binding.trie.root_set()
            ranks = root.rank_many(b_values[selected])
            for slot_id, annotation in self.slots_at[self.bindings.index(binding)]:
                local[slot_id] = annotation.values[ranks]
        for binding in a_bindings:
            root = binding.trie.root_set()
            # rank only the surviving parents: rank_many requires membership
            valid = np.flatnonzero(a_mask)
            ranks = root.rank_many(a_values[valid])
            for slot_id, annotation in self.slots_at[self.bindings.index(binding)]:
                per_parent = np.zeros(a_values.size)
                per_parent[valid] = annotation.values[ranks]
                local[slot_id] = per_parent[parents]

        contributions = self._contrib_matrix(selected.size, local)
        a_materialized = self.attrs[0] in self.materialized_set
        b_materialized = self.attrs[1] in self.materialized_set
        if a_materialized and b_materialized:
            self.aggregator.add_batch_unique_columns(
                [
                    a_values[parents].astype(np.int64),
                    b_values[selected].astype(np.int64),
                ],
                contributions,
            )
        elif a_materialized:
            sums = np.zeros((a_values.size, self.n_aggs))
            np.add.at(sums, parents, contributions)
            present = np.zeros(a_values.size, dtype=bool)
            present[parents] = True
            self.aggregator.add_batch_unique(
                (), a_values[present].astype(np.int64), sums[present]
            )
        elif b_materialized:
            keys = b_values[selected].astype(np.int64)
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            sums = np.zeros((unique_keys.size, self.n_aggs))
            np.add.at(sums, inverse, contributions)
            self.aggregator.add_batch_unique((), unique_keys, sums)
        else:
            self.aggregator.add((), contributions.sum(axis=0))
        return True

    # -- generic per-value loop -------------------------------------------------

    def _loop(self, p: int, group_parts: Tuple, arr: np.ndarray, child_ids) -> None:
        parts = self.at_attr[p]
        attr = self.attrs[p]
        materialized = attr in self.materialized_set
        fetchers = self.fetchers_at[p]
        last = len(self.attrs) - 1
        completions = [
            (bi, self.slots_at[bi]) for bi, lvl in parts if lvl == self.last_level[bi]
        ]
        self.stats.loop_values += int(arr.size)
        tick = self.cancel.tick if self.cancel is not None else None
        if tick is not None:
            self.stats.cancel_checks += int(arr.size)
        for idx in range(arr.size):
            if tick is not None:
                tick()
            value = int(arr[idx])
            self.current_code[attr] = value
            saved_states = []
            saved_slots = []
            for (bi, _lvl), ids in zip(parts, child_ids):
                saved_states.append(self.state[bi])
                self.state[bi] = int(ids[idx])
            for bi, slots in completions:
                node_id = self.state[bi]
                for slot_id, annotation in slots:
                    saved_slots.append((slot_id, self.slot_env.get(slot_id)))
                    self.slot_env[slot_id] = float(annotation.values[node_id])
            parts_key = group_parts
            if materialized:
                parts_key = parts_key + (value,)
            ok = True
            for fetcher in fetchers:
                fetched = self._fetch(fetcher)
                if fetched is None:
                    ok = False
                    break
                parts_key = parts_key + (fetched,)
            if ok:
                if p == last:
                    self.aggregator.add(parts_key, self._contrib_scalar())
                else:
                    self._recurse(p + 1, parts_key)
            for (bi, _lvl), saved in zip(parts, saved_states):
                self.state[bi] = saved
            for slot_id, old in saved_slots:
                if old is None:
                    self.slot_env.pop(slot_id, None)
                else:
                    self.slot_env[slot_id] = old

    def _fetch(self, fetcher):
        codes = tuple(self.current_code[v] for v in fetcher.vertices)
        token = (fetcher.ref_id, codes)
        # Count every request (not just cache misses): parfor workers
        # keep private caches, so request counts are the only fetch
        # metric identical across serial and parallel execution.
        self.stats.fetches += 1
        if token in self._fetch_cache:
            return self._fetch_cache[token]
        node_id = fetcher.trie.lookup_node(codes)
        if node_id is None:
            value = None
        else:
            raw = fetcher.trie.annotation(fetcher.ref_id).values[node_id]
            value = raw.item() if hasattr(raw, "item") else raw
        self._fetch_cache[token] = value
        return value

    # -- vectorized tail -----------------------------------------------------------

    def _tail_env(self, p: int, arr: np.ndarray, child_ids) -> Dict[str, np.ndarray]:
        local: Dict[str, np.ndarray] = {}
        for (bi, lvl), ids in zip(self.at_attr[p], child_ids):
            if lvl == self.last_level[bi]:
                for slot_id, annotation in self.slots_at[bi]:
                    local[slot_id] = annotation.values[ids]
        return local

    def _vector_tail(self, p: int, group_parts: Tuple, arr: np.ndarray, child_ids) -> None:
        self.stats.tail_batches += 1
        if self.cancel is not None:
            # one poll per vectorized batch: the numpy pass itself is the
            # unit of interruptibility
            self.stats.cancel_checks += 1
            self.cancel.tick(int(arr.size))
        local = self._tail_env(p, arr, child_ids)
        n = arr.size
        if self.attrs[p] in self.materialized_set:
            matrix = self._contrib_matrix(n, local)
            if self._unique_groups:
                self.aggregator.add_batch_unique(
                    group_parts, arr.astype(np.int64), matrix
                )
                return
            add = self.aggregator.add
            for idx in range(n):
                add(group_parts + (int(arr[idx]),), matrix[idx])
            return
        contribution = np.empty(self.n_aggs)
        for a_idx, agg in enumerate(self.aggs):
            if agg.func in ("min", "max"):
                value = local.get(agg.minmax_slot)
                if value is None:
                    value = self.slot_env[agg.minmax_slot]
                    contribution[a_idx] = float(value)
                else:
                    contribution[a_idx] = float(
                        np.min(value) if agg.func == "min" else np.max(value)
                    )
                continue
            total = 0.0
            for coefficient, slot_ids in agg.terms:
                product = np.full(n, coefficient)
                for slot_id in slot_ids:
                    operand = local.get(slot_id)
                    if operand is None:
                        operand = self.slot_env[slot_id]
                    product = product * operand
                total += float(np.sum(product))
            contribution[a_idx] = total
        self.aggregator.add(group_parts, contribution)

    def _contrib_matrix(self, n: int, local: Dict[str, np.ndarray]) -> np.ndarray:
        matrix = np.empty((n, self.n_aggs))
        for a_idx, agg in enumerate(self.aggs):
            if agg.func in ("min", "max"):
                value = local.get(agg.minmax_slot)
                if value is None:
                    value = self.slot_env[agg.minmax_slot]
                matrix[:, a_idx] = value
                continue
            total = np.zeros(n)
            for coefficient, slot_ids in agg.terms:
                product = np.full(n, coefficient)
                for slot_id in slot_ids:
                    operand = local.get(slot_id)
                    if operand is None:
                        operand = self.slot_env[slot_id]
                    product = product * operand
                total += product
            matrix[:, a_idx] = total
        return matrix

    def _contrib_scalar(self) -> np.ndarray:
        out = np.empty(self.n_aggs)
        env = self.slot_env
        for a_idx, agg in enumerate(self.aggs):
            if agg.func in ("min", "max"):
                out[a_idx] = env[agg.minmax_slot]
                continue
            total = 0.0
            for coefficient, slot_ids in agg.terms:
                product = coefficient
                for slot_id in slot_ids:
                    product *= env[slot_id]
                total += product
            out[a_idx] = total
        return out

    # -- relaxed 1-attribute union kernel ----------------------------------------

    def _relaxed_tail(self, p: int, group_parts: Tuple, arr: np.ndarray, child_ids) -> None:
        """The Section V-A2 union: aggregate attrs[p], materialize attrs[p+1].

        For each value of the projected-away attribute we gather the
        final attribute's matching values and their per-tuple
        contributions; the union across the loop is a scatter-add over
        the collected arrays (``s_j`` in the paper's unrolled listing).
        """
        parts = self.at_attr[p]
        self.stats.relaxed_unions += 1
        self.stats.loop_values += int(arr.size)
        tick = self.cancel.tick if self.cancel is not None else None
        if tick is not None:
            self.stats.cancel_checks += int(arr.size)
        collected_keys: List[np.ndarray] = []
        collected_vals: List[np.ndarray] = []
        completions = [
            (bi, self.slots_at[bi]) for bi, lvl in parts if lvl == self.last_level[bi]
        ]
        for idx in range(arr.size):
            if tick is not None:
                tick()
            saved_states = []
            saved_slots = []
            for (bi, _lvl), ids in zip(parts, child_ids):
                saved_states.append(self.state[bi])
                self.state[bi] = int(ids[idx])
            for bi, slots in completions:
                node_id = self.state[bi]
                for slot_id, annotation in slots:
                    saved_slots.append((slot_id, self.slot_env.get(slot_id)))
                    self.slot_env[slot_id] = float(annotation.values[node_id])
            inner_arr, inner_ids = self._intersect_at(p + 1)
            if inner_arr.size:
                local = self._tail_env(p + 1, inner_arr, inner_ids)
                collected_keys.append(inner_arr.astype(np.int64))
                collected_vals.append(self._contrib_matrix(inner_arr.size, local))
            for (bi, _lvl), saved in zip(parts, saved_states):
                self.state[bi] = saved
            for slot_id, old in saved_slots:
                if old is None:
                    self.slot_env.pop(slot_id, None)
                else:
                    self.slot_env[slot_id] = old
        if not collected_keys:
            return
        keys = np.concatenate(collected_keys)
        values = np.vstack(collected_vals)
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros((unique_keys.size, self.n_aggs))
        np.add.at(sums, inverse, values)
        if self._unique_groups:
            self.aggregator.add_batch_unique(group_parts, unique_keys, sums)
            return
        add = self.aggregator.add
        for idx in range(unique_keys.size):
            add(group_parts + (int(unique_keys[idx]),), sums[idx])


def _serial(config: EngineConfig, memory_budget_bytes=None) -> EngineConfig:
    from dataclasses import replace

    return replace(config, parallel=False, memory_budget_bytes=memory_budget_bytes)
