"""Execution statistics: what the interpreter actually did.

Wall-clock comparisons are noisy and substrate-dependent; these
counters let tests and EXPLAIN ANALYZE make *structural* claims --
"the relaxed order visits fewer loop values", "SMV ran through the
flat kernel", "the bad order intersects 100x more elements" -- that
hold deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: float-valued fields merged by ``max`` rather than summed: a q-error
#: is a per-execution worst case, not an accumulating count.
_MAX_FIELDS = ("q_error_max", "q_error_root")

#: identity (non-counter) fields: excluded from the numeric dict views
#: (``as_dict``/``delta_since``/``describe``), which must stay
#: byte-identical between serial and parallel runs of the same query --
#: two runs of one query share counters but never a query_id.
_STR_FIELDS = ("query_id",)


@dataclass
class ExecutionStats:
    """Counters accumulated across every node of one plan execution."""

    #: correlation id of the query these stats belong to (stamped by the
    #: engine at admission; empty for stats built outside a query run).
    query_id: str = ""
    nodes_executed: int = 0
    #: pairwise set intersections performed (Algorithm 1's bottleneck op).
    intersections: int = 0
    #: total elements produced by intersections (the work icost models).
    intersection_output: int = 0
    #: set values iterated through Python-level loops (the interpreter's
    #: real bottleneck; vectorized tails and kernels bypass this).
    loop_values: int = 0
    #: vectorized tail invocations (last-attribute batches).
    tail_batches: int = 0
    #: relaxed-order 1-attribute-union kernel invocations.
    relaxed_unions: int = 0
    #: flat two-attribute kernel runs (whole node, zero per-tuple work).
    flat_kernels: int = 0
    #: group-annotation fetch requests issued during the walk.  Requests
    #: are counted (rather than cache misses) so the value is identical
    #: under serial and parallel execution: parfor workers keep private
    #: fetch caches, so miss counts would depend on the chunking.
    fetches: int = 0
    #: output groups produced.
    groups_emitted: int = 0
    #: cooperative cancellation polls issued by the executors.  Counted
    #: per *value iterated* (not per clock read), so the total is
    #: deterministic and identical under serial and parallel execution
    #: -- the governance differential tests assert exactly that.
    cancel_checks: int = 0
    #: pairwise hash/merge joins executed by binary-strategy nodes.
    #: Binary nodes run single-threaded over vectorized kernels, so both
    #: binary counters are parallel-invariant by construction.
    binary_joins: int = 0
    #: total intermediate rows produced by those joins (the quantity the
    #: strategy chooser's ``binary_cost`` estimates).
    binary_rows: int = 0
    #: aggregator degradations: dict-backed group state spilled to a
    #: sorted-sparse columnar run under memory-budget pressure.  Spill
    #: opportunities depend on the per-worker budget split, so this
    #: counter is *not* parallel-invariant (unlike the ones above).
    aggregator_spills: int = 0
    #: plan-cache hits for the query these stats belong to (0 or 1 per
    #: query; cumulative across merges).
    plan_cache_hits: int = 0
    #: plan-cache misses (a fresh compile happened).
    plan_cache_misses: int = 0
    #: cached plans dropped because a catalog domain version bumped.
    plan_cache_invalidations: int = 0
    #: cached plans dropped because their observed q-error drifted past
    #: the threshold (a feedback-corrected recompile happened).
    plan_reoptimizations: int = 0
    #: worst per-node q-error of this execution (``max(est/act,
    #: act/est)`` over the plan's join nodes; 0.0 until measured).
    #: Derived from ``node_rows``, which is recorded once per node on
    #: the coordinating thread, so both q-error fields are
    #: parallel-invariant like the counters above.
    q_error_max: float = 0.0
    #: the root node's q-error (the estimate the output cardinality
    #: actually depended on).
    q_error_root: float = 0.0
    #: groups each plan node emitted, keyed by ``NodePlan.node_key``
    #: (the feedback loop's actuals).
    node_rows: Dict[str, int] = field(default_factory=dict)

    def note_node_rows(self, node_key: str, rows: int) -> None:
        """Record one plan node's emitted group count (coordinator-side)."""
        if node_key:
            self.node_rows[node_key] = self.node_rows.get(node_key, 0) + int(rows)

    def merge(self, other: "ExecutionStats") -> None:
        for name in self.__dataclass_fields__:
            mine, theirs = getattr(self, name), getattr(other, name)
            if name in _STR_FIELDS:
                setattr(self, name, mine or theirs)
            elif isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            elif name in _MAX_FIELDS:
                setattr(self, name, max(mine, theirs))
            else:
                setattr(self, name, mine + theirs)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            if name in _STR_FIELDS:
                continue
            value = getattr(self, name)
            out[name] = dict(value) if isinstance(value, dict) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExecutionStats":
        """Rebuild stats from an :meth:`as_dict` payload (wire transport).

        Unknown keys from a newer peer are ignored; missing keys keep
        their zero defaults, so ``from_dict(s.as_dict()).as_dict() ==
        s.as_dict()`` holds across protocol versions.
        """
        stats = cls()
        for name in cls.__dataclass_fields__:
            if name in _STR_FIELDS or name not in data:
                continue
            value = data[name]
            if name == "node_rows":
                stats.node_rows = {str(k): int(v) for k, v in dict(value).items()}
            elif name in _MAX_FIELDS:
                setattr(stats, name, float(value))
            else:
                setattr(stats, name, int(value))
        return stats

    def snapshot(self) -> Dict[str, object]:
        """Current counter values (for :meth:`delta_since` span scoping)."""
        return self.as_dict()

    def delta_since(self, snapshot: Dict[str, object]) -> Dict[str, object]:
        """Counter increments since ``snapshot`` (tracer span payloads)."""
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            if name in _STR_FIELDS:
                continue
            value = getattr(self, name)
            if isinstance(value, dict):
                prev = snapshot.get(name) or {}
                out[name] = {
                    key: count - prev.get(key, 0)
                    for key, count in value.items()
                    if count != prev.get(key, 0)
                }
            else:
                out[name] = value - snapshot.get(name, 0)
        return out

    def describe(self) -> str:
        parts = []
        for name, value in self.as_dict().items():
            if isinstance(value, dict):
                if value:
                    rendered = ",".join(f"{k}:{v}" for k, v in sorted(value.items()))
                    parts.append(f"{name}={{{rendered}}}")
                continue
            if isinstance(value, float):
                parts.append(f"{name}={value:g}")
            else:
                parts.append(f"{name}={value}")
        return "stats: " + ", ".join(parts)
