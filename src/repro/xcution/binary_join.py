"""Pairwise hash/merge-join execution over columnar frames.

The hybrid optimizer (:mod:`repro.optimizer.strategy`) sends acyclic,
selective GHD nodes here instead of the generic WCOJ interpreter: on
TPC-H-shaped fragments a Selinger-ordered sequence of vectorized binary
joins beats the per-value trie walk, exactly the trade-off Free Join
(arXiv 2301.10841) formalizes.

A :class:`RelationFrame` is the binary engine's input: the *raw
filtered rows* of one relation occurrence, with key columns holding the
same dictionary codes a trie build would produce (both come from
``Table.trie_inputs``) and slot columns holding raw per-row annotation
values.  No deduplication and no ``__mult_`` counting happens --
multiplicity is physical in the rows, so aggregate terms simply skip
the implicit count slots (summing raw per-row products equals summing
trie-pre-aggregated products, because the join condition depends only
on keys; min/max are idempotent, so duplicate rows are harmless).

Joins are sort-merge over packed composite keys (dictionary codes fit
32 bits; multi-vertex keys are packed pairwise with a dense re-encode
between steps).  Group-by reduction is one ``np.unique`` over a record
view of the key columns followed by ``reduceat`` per aggregate.  The
whole node runs single-threaded through vectorized kernels, so its
counters (``binary_joins``, ``binary_rows``) are parallel-invariant by
construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError, OutOfMemoryBudgetError


@dataclass
class RelationFrame:
    """Raw filtered rows of one relation occurrence, dictionary-coded."""

    alias: str
    vertices: Tuple[str, ...]
    #: parallel to ``vertices``; uint32 dictionary codes.
    key_columns: List[np.ndarray]
    #: slot id -> raw per-row values (already string-encoded).
    slot_columns: Dict[str, np.ndarray] = field(default_factory=dict)
    #: decode dictionaries for string-valued slots (parity with tries).
    slot_dictionaries: Dict[str, object] = field(default_factory=dict)
    #: slot ids represented implicitly by row duplication (``count``
    #: combines, i.e. the ``__mult_<alias>`` multiplicities).
    implicit_mult: FrozenSet[str] = frozenset()

    @property
    def num_rows(self) -> int:
        return int(self.key_columns[0].size) if self.key_columns else 0

    def approx_bytes(self) -> int:
        total = sum(c.nbytes for c in self.key_columns)
        total += sum(np.asarray(c).nbytes for c in self.slot_columns.values())
        return total


def build_frame(
    table,
    vertices: Tuple[str, ...],
    key_order: Tuple[str, ...],
    requests: Sequence,
    row_mask: Optional[np.ndarray],
) -> RelationFrame:
    """Build a frame through the same encoding path as a trie build."""
    key_columns, _domains, specs = table.trie_inputs(key_order, requests, row_mask)
    slot_columns: Dict[str, np.ndarray] = {}
    slot_dictionaries: Dict[str, object] = {}
    implicit = set()
    for spec in specs:
        if spec.combine == "count" or spec.values is None:
            implicit.add(spec.name)
            continue
        slot_columns[spec.name] = np.asarray(spec.values)
        if spec.dictionary is not None:
            slot_dictionaries[spec.name] = spec.dictionary
    return RelationFrame(
        alias=table.name,
        vertices=tuple(vertices),
        key_columns=[np.asarray(c) for c in key_columns],
        slot_columns=slot_columns,
        slot_dictionaries=slot_dictionaries,
        implicit_mult=frozenset(implicit),
    )


class BinaryNodeResult:
    """Grouped output of a binary node; duck-types ``GroupAggregator``."""

    spills = 0

    def __init__(self, key_columns: List[np.ndarray], matrix: np.ndarray):
        self._key_columns = key_columns
        self._matrix = matrix

    def result_arrays(self) -> Tuple[List[np.ndarray], np.ndarray]:
        return self._key_columns, self._matrix

    def __len__(self) -> int:
        return int(self._matrix.shape[0])

    def approx_bytes(self) -> int:
        return sum(c.nbytes for c in self._key_columns) + self._matrix.nbytes


# ---------------------------------------------------------------------------
# join kernels
# ---------------------------------------------------------------------------


def _composite_keys(
    left_cols: List[np.ndarray], right_cols: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack parallel multi-column keys into comparable int64 scalars.

    Codes fit 32 bits; packing is pairwise with a dense re-encode of the
    accumulated key between steps, so arbitrarily many columns stay
    within 64 bits.
    """
    lkey = left_cols[0].astype(np.int64)
    rkey = right_cols[0].astype(np.int64)
    for lc, rc in zip(left_cols[1:], right_cols[1:]):
        n_left = lkey.size
        both = np.concatenate([lkey, rkey])
        _, inverse = np.unique(both, return_inverse=True)
        lkey = inverse[:n_left] << np.int64(32) | lc.astype(np.int64)
        rkey = inverse[n_left:] << np.int64(32) | rc.astype(np.int64)
    return lkey, rkey


def _merge_join(
    lkey: np.ndarray, rkey: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-index pairs of the equi-join, vectorized sort-merge."""
    order_r = np.argsort(rkey, kind="stable")
    rsorted = rkey[order_r]
    lo = np.searchsorted(rsorted, lkey, side="left")
    hi = np.searchsorted(rsorted, lkey, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(lkey.size, dtype=np.int64), counts)
    bases = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(bases, counts)
    right_idx = order_r[np.repeat(lo, counts) + within]
    return left_idx, right_idx


class _Assembled:
    """The growing joined intermediate: one column per vertex and slot."""

    def __init__(self, frame: RelationFrame):
        self.vertex_columns: Dict[str, np.ndarray] = {
            v: col for v, col in zip(frame.vertices, frame.key_columns)
        }
        self.slot_columns: Dict[str, np.ndarray] = dict(frame.slot_columns)
        self.implicit_mult = set(frame.implicit_mult)
        self.num_rows = frame.num_rows

    def approx_bytes(self) -> int:
        total = sum(c.nbytes for c in self.vertex_columns.values())
        total += sum(c.nbytes for c in self.slot_columns.values())
        return total

    def join(self, frame: RelationFrame, shared: List[str]) -> int:
        """Equi-join ``frame`` in on ``shared`` vertices; returns rows out."""
        if shared:
            lkey, rkey = _composite_keys(
                [self.vertex_columns[v] for v in shared],
                [frame.key_columns[frame.vertices.index(v)] for v in shared],
            )
            left_idx, right_idx = _merge_join(lkey, rkey)
        else:  # disconnected fragment: cross product
            n_left, n_right = self.num_rows, frame.num_rows
            left_idx = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
            right_idx = np.tile(np.arange(n_right, dtype=np.int64), n_left)
        self.vertex_columns = {
            v: col[left_idx] for v, col in self.vertex_columns.items()
        }
        self.slot_columns = {
            s: col[left_idx] for s, col in self.slot_columns.items()
        }
        for v, col in zip(frame.vertices, frame.key_columns):
            if v not in self.vertex_columns:
                self.vertex_columns[v] = col[right_idx]
        for s, col in frame.slot_columns.items():
            self.slot_columns[s] = col[right_idx]
        self.implicit_mult |= frame.implicit_mult
        self.num_rows = int(left_idx.size)
        return self.num_rows


# ---------------------------------------------------------------------------
# node execution
# ---------------------------------------------------------------------------


def execute_binary_node(
    node,
    frames: List[RelationFrame],
    config,
    stats=None,
    tracer=None,
    profiler=None,
    cancel=None,
) -> BinaryNodeResult:
    """Run one binary-strategy GHD node: join, fetch, group, reduce.

    ``frames`` holds the node's base-relation frames plus one frame per
    child result.  The join order is greedy smallest-connected-first
    over actual (post-filter) cardinalities.  Cancellation is polled
    once per join and once per group stage -- deterministic counts, so
    ``cancel_checks`` stays parallel-invariant.
    """
    start = time.perf_counter() if profiler is not None else 0.0
    if not frames:
        raise ExecutionError("binary node has no input frames")
    budget = config.memory_budget_bytes

    def check_budget(nbytes: int) -> None:
        if budget is not None and nbytes > budget:
            raise OutOfMemoryBudgetError(
                f"binary join intermediate needs ~{nbytes} bytes "
                f"(budget {budget})",
                requested_bytes=nbytes,
                budget_bytes=budget,
            )

    def poll() -> None:
        if stats is not None:
            stats.cancel_checks += 1
        if cancel is not None:
            cancel.check()

    poll()
    if any(f.num_rows == 0 for f in frames):
        result = _reduce_groups(node, None, stats)
    else:
        remaining = sorted(frames, key=lambda f: (f.num_rows, f.alias))
        assembled = _Assembled(remaining.pop(0))
        while remaining:
            pick = None
            for i, frame in enumerate(remaining):
                if any(v in assembled.vertex_columns for v in frame.vertices):
                    pick = i
                    break
            if pick is None:
                pick = 0  # disconnected: cross product with the smallest
            frame = remaining.pop(pick)
            shared = [v for v in frame.vertices if v in assembled.vertex_columns]
            rows = assembled.join(frame, shared)
            if stats is not None:
                stats.binary_joins += 1
                stats.binary_rows += rows
            check_budget(assembled.approx_bytes())
            poll()
            if rows == 0:
                assembled = None
                break
        result = _reduce_groups(node, assembled, stats)
    if stats is not None:
        stats.nodes_executed += 1
        stats.groups_emitted += len(result)
    if profiler is not None:
        profiler.add_category("binary.execute", time.perf_counter() - start)
    return result


def _fetch_columns(node, assembled: _Assembled) -> Dict[str, np.ndarray]:
    """Resolve walk-fetcher annotation columns via batched trie lookups.

    Every surviving row's determining-vertex combination comes from an
    actual row of the fetch relation, so the batched lookup cannot miss
    (same invariant ``_append_deferred_annotations`` relies on).
    """
    out: Dict[str, np.ndarray] = {}
    for fetcher in node.group_fetchers:
        codes = [
            np.asarray(assembled.vertex_columns[v], dtype=np.uint32)
            for v in fetcher.vertices
        ]
        nodes = fetcher.trie.lookup_nodes_batch(codes)
        out[fetcher.ref_id] = fetcher.trie.annotation(fetcher.ref_id).values[nodes]
    return out


def _row_values(node, assembled: _Assembled) -> List[np.ndarray]:
    """Per-row contribution of every aggregate, before grouping."""
    n = assembled.num_rows
    values: List[np.ndarray] = []
    for agg in node.aggregates:
        if agg.func in ("min", "max"):
            col = assembled.slot_columns.get(agg.minmax_slot)
            if col is None:
                raise ExecutionError(
                    f"binary node missing min/max slot '{agg.minmax_slot}'"
                )
            values.append(col.astype(np.float64, copy=False))
            continue
        total = np.zeros(n, dtype=np.float64)
        for coefficient, slot_ids in agg.terms:
            term = np.full(n, float(coefficient))
            for slot_id in slot_ids:
                if slot_id in assembled.implicit_mult:
                    continue  # multiplicity is physical in the raw rows
                col = assembled.slot_columns.get(slot_id)
                if col is None:
                    raise ExecutionError(
                        f"binary node missing slot '{slot_id}'"
                    )
                term = term * col
            total += term
        values.append(total)
    return values


def _reduce_groups(
    node, assembled: Optional[_Assembled], stats=None
) -> BinaryNodeResult:
    n_aggs = len(node.aggregates)
    if assembled is None or assembled.num_rows == 0:
        width = len(node.walk_layout)
        return BinaryNodeResult(
            [np.empty(0, dtype=np.int64) for _ in range(width)],
            np.empty((0, n_aggs), dtype=np.float64),
        )
    fetched = _fetch_columns(node, assembled)
    if stats is not None:
        stats.fetches += len(fetched) * assembled.num_rows
    key_columns: List[np.ndarray] = []
    for kind, ref in node.walk_layout:
        if kind == "vertex":
            key_columns.append(
                assembled.vertex_columns[ref].astype(np.int64, copy=False)
            )
        else:
            key_columns.append(np.asarray(fetched[ref]))
    agg_values = _row_values(node, assembled)

    if not key_columns:  # scalar aggregate: one group over all rows
        row = []
        for agg, vals in zip(node.aggregates, agg_values):
            if agg.func == "min":
                row.append(vals.min())
            elif agg.func == "max":
                row.append(vals.max())
            else:
                row.append(vals.sum())
        return BinaryNodeResult([], np.asarray([row], dtype=np.float64))

    record = np.rec.fromarrays(key_columns)
    unique, inverse = np.unique(record, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    boundaries = np.empty(sorted_inverse.size, dtype=bool)
    boundaries[0] = True
    boundaries[1:] = sorted_inverse[1:] != sorted_inverse[:-1]
    starts = np.flatnonzero(boundaries)
    matrix = np.empty((unique.size, n_aggs), dtype=np.float64)
    for j, (agg, vals) in enumerate(zip(node.aggregates, agg_values)):
        vals = vals[order]
        if agg.func == "min":
            matrix[:, j] = np.minimum.reduceat(vals, starts)
        elif agg.func == "max":
            matrix[:, j] = np.maximum.reduceat(vals, starts)
        else:
            matrix[:, j] = np.add.reduceat(vals, starts)
    out_keys = [np.asarray(unique[name]) for name in unique.dtype.names]
    return BinaryNodeResult(out_keys, matrix)
