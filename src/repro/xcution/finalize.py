"""Result finalization: from merged aggregate state to a ResultTable.

The last stage of query execution -- identity fill for empty grand
aggregates, COUNT's int cast, output-expression evaluation,
row-multiplicity expansion, HAVING/ORDER BY/LIMIT -- is pure column
algebra over *final* aggregate values.  It is split out of the engine so
two call sites can share it byte-for-byte:

* :meth:`LevelHeadedEngine._decode` finalizes a locally executed plan's
  raw result, and
* the :mod:`repro.shard` coordinator finalizes the semiring merge of
  partial aggregates gathered from worker shards.

Workers therefore run in *partial* mode (group keys decoded, aggregate
columns left as raw float64 partials, none of the steps below applied),
and the coordinator applies this exact finalization once after the
merge -- which is what makes sharded results byte-identical to
single-process ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ExecutionError
from ..sql.ast import ColumnRef
from ..sql.expressions import evaluate
from ..sql.result_clauses import make_result_resolver, result_row_index
from ..core.result import ResultTable


def aggregate_identity(func: Optional[str]) -> float:
    """The zero-row value of one aggregate (COUNT is int-cast later)."""
    if func in ("min", "max"):
        return float("nan")
    return 0.0


def finalize_result(
    compiled,
    key_env: Dict[str, np.ndarray],
    agg_columns: Dict[str, np.ndarray],
    n_rows: int,
) -> ResultTable:
    """Turn final aggregate state into the query's ResultTable.

    ``key_env`` maps group-key refs (vertex names / annotation refs) to
    decoded columns; ``agg_columns`` maps aggregate slot ids to their
    final float64 values, in slot order.  Applies, in order: the
    grand-aggregate identity fill, COUNT's int cast, output-expression
    evaluation, row-multiplicity expansion, and HAVING/ORDER BY/LIMIT.
    """
    # a grand aggregate over zero matching tuples still emits one
    # row, each cell holding its aggregate's identity (COUNT/SUM ->
    # 0, MIN/MAX -> NaN: no rows means no extremum, and the engine
    # has no NULLs).
    if n_rows == 0 and not key_env:
        funcs = {a.id: a.func for a in compiled.aggregates}
        agg_columns = {
            agg_id: np.array([aggregate_identity(funcs.get(agg_id))], dtype=np.float64)
            for agg_id in agg_columns
        }
        n_rows = 1

    env: Dict[str, np.ndarray] = dict(key_env)
    count_ids = {a.id for a in compiled.aggregates if a.func == "count"}
    for agg_id, column in agg_columns.items():
        if agg_id in count_ids:
            column = np.rint(column).astype(np.int64)
        env[agg_id] = column

    def resolve(ref: ColumnRef):
        try:
            return env[ref.name]
        except KeyError:
            raise ExecutionError(f"unresolved output reference '{ref.name}'") from None

    names: List[str] = []
    columns: List[np.ndarray] = []
    for name, expr in compiled.output_columns:
        value = evaluate(expr, resolve)
        arr = np.asarray(value)
        if arr.ndim == 0:
            arr = np.full(n_rows, value)
        names.append(name)
        columns.append(arr)

    env_for_clauses = env
    if compiled.row_multiplicity_aggregate is not None:
        counts = np.rint(env[compiled.row_multiplicity_aggregate]).astype(np.int64)
        columns = [np.repeat(column, counts) for column in columns]
        env_for_clauses = {}  # group-level refs are gone post-expansion

    if (
        compiled.having is not None
        or compiled.order_keys
        or compiled.limit is not None
    ):
        outputs = dict(zip(names, columns))
        # ORDER BY/LIMIT on a degenerate empty column list: nothing
        # to index, so there are zero result rows to reorder.
        n_final = int(columns[0].shape[0]) if columns else 0
        index = result_row_index(
            make_result_resolver(env_for_clauses, outputs),
            n_final,
            compiled.having,
            compiled.order_keys,
            compiled.limit,
        )
        if index is not None and columns:
            columns = [column[index] for column in columns]

    return ResultTable(names, columns)
