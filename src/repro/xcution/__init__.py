"""Execution engine: physical plans, the generic WCOJ interpreter,
Yannakakis-style plan-tree execution, the scan path, and BLAS routing.

(The package is named ``xcution`` because ``exec`` is a Python keyword.)
"""

from .aggregator import GroupAggregator
from .generic_join import NodeExecutor
from .parfor import chunk_slices, parfor_chunks
from .plan import (
    AggregateRuntime,
    BlasPlan,
    EngineConfig,
    GroupFetcher,
    NodePlan,
    PhysicalPlan,
    RelationBinding,
    ScanPlan,
    build_plan,
)
from .scan import execute_scan
from .stats import ExecutionStats
from .yannakakis import RawResult, execute_plan

__all__ = [
    "EngineConfig",
    "PhysicalPlan",
    "NodePlan",
    "ScanPlan",
    "BlasPlan",
    "RelationBinding",
    "GroupFetcher",
    "AggregateRuntime",
    "build_plan",
    "NodeExecutor",
    "GroupAggregator",
    "execute_scan",
    "execute_plan",
    "RawResult",
    "ExecutionStats",
    "parfor_chunks",
    "chunk_slices",
]
