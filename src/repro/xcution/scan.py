"""The scan-aggregate path for queries without join keys (TPC-H Q1/Q6).

No hypergraph vertices means no trie traversal: filters become one row
mask, GROUP BY expressions are evaluated row-wise, and aggregates
reduce over sorted group runs.  Attribute elimination shows up here as
"only touch the referenced columns" -- the Table III ablation forces a
pass over every column instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..sql.expressions import evaluate
from .plan import ScanPlan


def execute_scan(plan: ScanPlan) -> Tuple[List[np.ndarray], np.ndarray]:
    """Run a scan plan; returns (columnar group keys, aggregate matrix).

    Group key columns hold *raw* values (strings, years, ...), unlike
    the join path's dictionary codes.
    """
    table = plan.table

    if plan.touch_all_columns:
        # -Attr.Elim ablation: force memory traffic over the full width.
        for column in table.columns.values():
            column.copy()

    def resolve(ref):
        return table.columns[ref.name]

    mask = None
    for predicate in plan.filters:
        value = np.asarray(evaluate(predicate, resolve), dtype=bool)
        mask = value if mask is None else (mask & value)

    def masked(values):
        arr = np.asarray(values)
        if arr.ndim == 0:
            arr = np.full(table.num_rows, arr)
        return arr if mask is None else arr[mask]

    n_rows = int(mask.sum()) if mask is not None else table.num_rows
    slot_rows: Dict[str, np.ndarray] = {}
    for slot_id, (expr, combine) in plan.slot_exprs.items():
        if expr is None:  # count-style slot
            slot_rows[slot_id] = np.ones(n_rows)
        else:
            slot_rows[slot_id] = masked(evaluate(expr, resolve)).astype(np.float64)

    group_columns = [masked(evaluate(g.expr, resolve)) for g in plan.group_exprs]

    if group_columns:
        if n_rows == 0:
            return [col[:0] for col in group_columns], np.zeros(
                (0, len(plan.aggregates))
            )
        stacked = np.rec.fromarrays(group_columns)
        unique_rows, inverse = np.unique(stacked, return_inverse=True)
        n_groups = unique_rows.size
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sorted_inverse[1:] != sorted_inverse[:-1]))
        )
        key_columns = [unique_rows[name] for name in unique_rows.dtype.names]
    else:
        n_groups = 1 if n_rows > 0 else 0
        order = np.arange(n_rows)
        boundaries = np.array([0], dtype=np.int64) if n_rows else np.empty(0, np.int64)
        key_columns = []

    matrix = np.zeros((n_groups, len(plan.aggregates)))
    for a_idx, agg in enumerate(plan.aggregates):
        if agg.func in ("min", "max"):
            rows = slot_rows[agg.minmax_slot][order]
            if n_groups:
                reducer = np.minimum if agg.func == "min" else np.maximum
                matrix[:, a_idx] = reducer.reduceat(rows, boundaries)
            continue
        total = np.zeros(n_rows)
        for coefficient, slot_ids in agg.terms:
            product = np.full(n_rows, coefficient)
            for slot_id in slot_ids:
                product = product * slot_rows[slot_id]
            total += product
        if n_groups:
            matrix[:, a_idx] = np.add.reduceat(total[order], boundaries)

    # A global aggregate over an empty selection returns zero rows here;
    # the decode layer emits the one-row identity result (COUNT/SUM -> 0,
    # MIN/MAX -> NaN) so scan and join paths agree.
    return key_columns, matrix
