"""Plan-tree execution: Yannakakis-style communication between GHD nodes.

A GHD is an acyclic plan (Section III-C): each child node runs the
generic WCOJ algorithm over its bag, aggregates its result down to the
interface vertices shared with its parent (annotations summed through
the semiring), and hands the parent a materialized trie-backed relation
-- exactly ``node1`` feeding the root in Figure 4's generated code for
TPC-H Q5.  The root node then produces the query's groups and
aggregates.  Scan and BLAS plans dispatch to their own executors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..la import blas
from ..obs import NULL_TRACER
from ..sql.ast import ColumnRef
from ..sql.expressions import evaluate
from ..storage.table import AnnotationRequest
from ..trie import AnnotationSpec, build_trie
from .generic_join import NodeExecutor
from .stats import ExecutionStats
from .plan import (
    BlasPlan,
    EngineConfig,
    NodePlan,
    PhysicalPlan,
    RelationBinding,
)
from .scan import execute_scan


@dataclass
class RawResult:
    """Execution output before decoding: columnar group keys + aggregates.

    ``group_layout`` describes each key column: ``("vertex", name)``
    columns hold dictionary codes, ``("ann", ref)`` columns hold
    annotation values (codes for join-path string annotations, raw
    values on the scan path -- ``keys_are_codes`` distinguishes them).
    """

    group_layout: List[Tuple[str, str]]
    key_columns: List[np.ndarray]
    matrix: np.ndarray
    agg_ids: List[str]
    keys_are_codes: bool

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])


#: sentinel: "no memory-budget override" (None is a real value: unbounded).
_UNSET = object()


def execute_plan(
    plan: PhysicalPlan,
    stats: Optional[ExecutionStats] = None,
    tracer=None,
    profiler=None,
    cancel=None,
    memory_budget_bytes=_UNSET,
) -> RawResult:
    """Execute a physical plan of any mode.

    ``stats`` (optional) accumulates executor counters for
    EXPLAIN ANALYZE; scan and BLAS plans leave it untouched.
    ``tracer`` (optional, a :class:`repro.obs.Tracer`) records one span
    per GHD node with its scoped counters, chosen order, and set-layout
    mix.  ``profiler`` (optional, a :class:`repro.obs.KernelProfiler`)
    attributes join execution per trie level and kernel; the caller is
    responsible for also activating it (``repro.obs.activate``) so the
    set/trie hot-path hooks see it.  ``cancel`` (optional, a
    :class:`repro.core.governor.CancelToken`) is polled between and
    inside the node passes, so a deadline or ``cancel()`` stops the plan
    at chunk granularity.  ``memory_budget_bytes`` overrides the plan
    config's budget for this execution only (the governor passes each
    query its reserved share of the global budget without mutating the
    cached plan).
    """
    tracer = tracer or NULL_TRACER
    if cancel is not None:
        cancel.check()
    if plan.mode == "scan":
        with tracer.span("scan.execute", alias=plan.scan.alias):
            key_columns, matrix = execute_scan(plan.scan)
        layout = [("ann", g.id) for g in plan.scan.group_exprs]
        return RawResult(
            group_layout=layout,
            key_columns=key_columns,
            matrix=matrix,
            agg_ids=[a.agg_id for a in plan.scan.aggregates],
            keys_are_codes=False,
        )
    if plan.mode == "blas":
        with tracer.span("blas.execute", einsum=plan.blas.einsum_spec):
            return _execute_blas(plan)
    if plan.mode == "join":
        config = plan.config
        if memory_budget_bytes is not _UNSET:
            budget = memory_budget_bytes
            if config.memory_budget_bytes is not None and budget is not None:
                budget = min(budget, config.memory_budget_bytes)
            if budget != config.memory_budget_bytes:
                config = replace(config, memory_budget_bytes=budget)
        aggregator = _execute_node(plan.root, config, stats, tracer, profiler, cancel)
        start = time.perf_counter() if profiler is not None else 0.0
        key_columns, matrix = aggregator.result_arrays()
        if profiler is not None:
            profiler.add_category("finalize", time.perf_counter() - start)
        key_columns = list(key_columns)
        with tracer.span("decode.deferred_annotations"):
            start = time.perf_counter() if profiler is not None else 0.0
            _append_deferred_annotations(plan.root, key_columns, matrix)
            if profiler is not None:
                profiler.add_category("decode.deferred", time.perf_counter() - start)
        return RawResult(
            group_layout=list(plan.root.group_layout),
            key_columns=key_columns,
            matrix=matrix,
            agg_ids=[a.agg_id for a in plan.root.aggregates],
            keys_are_codes=True,
        )
    raise ExecutionError(f"unknown plan mode '{plan.mode}'")


def _append_deferred_annotations(root: NodePlan, key_columns, matrix) -> None:
    """Vectorized decode of group annotations determined by output keys.

    These never needed per-tuple fetches during the walk: once the
    output's key columns exist, one batched trie lookup per annotation
    (Section III-B's annotations-reachable-from-any-level, exploited
    columnarly) resolves all rows.
    """
    if not root.deferred_fetchers:
        return
    n_rows = matrix.shape[0]
    vertex_position = {
        ref: i for i, (kind, ref) in enumerate(root.walk_layout) if kind == "vertex"
    }
    for fetcher in root.deferred_fetchers:
        if n_rows == 0:
            key_columns.append(np.empty(0))
            continue
        codes = [
            np.asarray(key_columns[vertex_position[v]], dtype=np.uint32)
            for v in fetcher.vertices
        ]
        nodes = fetcher.trie.lookup_nodes_batch(codes)
        key_columns.append(fetcher.trie.annotation(fetcher.ref_id).values[nodes])


def _execute_node(
    node: NodePlan,
    config: EngineConfig,
    stats: Optional[ExecutionStats] = None,
    tracer=NULL_TRACER,
    profiler=None,
    cancel=None,
):
    if node.strategy == "binary":
        return _execute_binary_node(node, config, stats, tracer, profiler, cancel)
    child_bindings = [
        _materialize_child(child, config, stats, tracer, profiler, cancel)
        for child in node.children
    ]
    if cancel is not None:
        cancel.check()
    with tracer.span("node.execute") as span:
        start = time.perf_counter() if profiler is not None else 0.0
        executor = NodeExecutor(
            node,
            list(node.bindings) + child_bindings,
            config,
            stats=stats,
            profiler=profiler,
            cancel=cancel,
        )
        if profiler is not None:
            profiler.add_category("node.setup", time.perf_counter() - start)
        snapshot = stats.snapshot() if (tracer.active and stats is not None) else None
        aggregator = executor.run()
        if stats is not None:
            # per-node actuals for the q-error feedback loop; recorded
            # once per node on the coordinating thread (after any parfor
            # worker merge), so the value is parallel-invariant
            stats.note_node_rows(node.node_key, len(aggregator))
        if tracer.active:
            span.set(
                attrs=list(node.attrs),
                materialized=list(node.materialized),
                relaxed=node.relaxed,
                order_cost=node.decision.cost,
                strategy=node.strategy,
                groups=len(aggregator),
                layout_mix=_layout_mix(executor.bindings),
            )
            if snapshot is not None:
                span.stats = stats.delta_since(snapshot)
    return aggregator


def _execute_binary_node(
    node: NodePlan,
    config: EngineConfig,
    stats: Optional[ExecutionStats] = None,
    tracer=NULL_TRACER,
    profiler=None,
    cancel=None,
):
    """Run a binary-strategy node: children first, then pairwise joins.

    Children execute through the normal dispatch (each with its own
    strategy) and their grouped results are wrapped as frames directly
    -- no trie build sits between a child and a binary parent.
    """
    from .binary_join import execute_binary_node

    child_frames = [
        _materialize_child_frame(child, config, stats, tracer, profiler, cancel)
        for child in node.children
    ]
    if cancel is not None:
        cancel.check()
    with tracer.span("node.execute") as span:
        snapshot = stats.snapshot() if (tracer.active and stats is not None) else None
        frames = [b.frame for b in node.bindings] + child_frames
        result = execute_binary_node(
            node,
            frames,
            config,
            stats=stats,
            tracer=tracer,
            profiler=profiler,
            cancel=cancel,
        )
        if stats is not None:
            stats.note_node_rows(node.node_key, len(result))
        if tracer.active:
            span.set(
                attrs=list(node.attrs),
                materialized=list(node.materialized),
                relaxed=node.relaxed,
                order_cost=node.decision.cost,
                strategy="binary",
                groups=len(result),
            )
            if snapshot is not None:
                span.stats = stats.delta_since(snapshot)
    return result


def _materialize_child_frame(
    child: NodePlan,
    config: EngineConfig,
    stats: Optional[ExecutionStats] = None,
    tracer=NULL_TRACER,
    profiler=None,
    cancel=None,
):
    """Run a child node and wrap its grouped result as a columnar frame."""
    from .binary_join import RelationFrame

    if not child.materialized:
        raise ExecutionError(
            "child GHD node shares no vertex with its parent (disconnected plan)"
        )
    aggregator = _execute_node(child, config, stats, tracer, profiler, cancel)
    if cancel is not None:
        cancel.check()
    start = time.perf_counter() if profiler is not None else 0.0
    key_columns, matrix = aggregator.result_arrays()
    if profiler is not None:
        profiler.add_category("finalize", time.perf_counter() - start)
    values = matrix[:, 0] if matrix.size else np.empty(0)
    return RelationFrame(
        alias=f"__result_{child.result_slot}",
        vertices=tuple(child.materialized),
        key_columns=[np.asarray(col, dtype=np.uint32) for col in key_columns],
        slot_columns={child.result_slot: np.asarray(values, dtype=np.float64)},
    )


def _layout_mix(bindings) -> dict:
    """Count bitset vs uint parent sets across a node's binding tries.

    Frame-backed bindings have no trie; lazy tries report only the
    levels they actually materialized (observability must not force a
    build).
    """
    dense = sparse = 0
    for binding in bindings:
        trie = binding.trie
        if trie is None:
            continue
        if hasattr(trie, "materialized_levels"):
            levels = trie.materialized_levels()
        else:
            levels = trie.levels
        for level in levels:
            chosen = int(np.count_nonzero(level.layouts))
            dense += chosen
            sparse += int(level.layouts.size) - chosen
    return {"bitset": dense, "uint": sparse}


def _materialize_child(
    child: NodePlan,
    config: EngineConfig,
    stats: Optional[ExecutionStats] = None,
    tracer=NULL_TRACER,
    profiler=None,
    cancel=None,
) -> RelationBinding:
    """Run a child node and wrap its result as a trie-backed relation."""
    if not child.materialized:
        raise ExecutionError(
            "child GHD node shares no vertex with its parent (disconnected plan)"
        )
    aggregator = _execute_node(child, config, stats, tracer, profiler, cancel)
    if cancel is not None:
        cancel.check()
    start = time.perf_counter() if profiler is not None else 0.0
    key_columns, matrix = aggregator.result_arrays()
    if profiler is not None:
        profiler.add_category("finalize", time.perf_counter() - start)
    arity = len(child.materialized)
    key_columns = [np.asarray(col, dtype=np.uint32) for col in key_columns]
    values = matrix[:, 0] if matrix.size else np.empty(0)
    with tracer.span("child.materialize", slot=child.result_slot) as span:
        trie = build_trie(
            key_columns,
            child.materialized,
            [AnnotationSpec(child.result_slot, values, level=arity - 1, combine="sum")],
        )
        if tracer.active:
            span.set(tuples=trie.num_tuples)
    return RelationBinding(
        alias=f"__result_{child.result_slot}",
        trie=trie,
        vertices=child.materialized,
        slot_ids=(child.result_slot,),
        is_child_result=True,
    )


# ---------------------------------------------------------------------------
# dense BLAS execution (Section III-D / VI-B2)
# ---------------------------------------------------------------------------


def _execute_blas(plan: PhysicalPlan) -> RawResult:
    spec: BlasPlan = plan.blas
    compiled = plan.compiled
    operands = []
    for alias, vertices, slot_id in spec.operand_bindings:
        table = compiled.bound.tables[alias]
        key_order = table.schema.key_names
        expr = spec.slot_exprs[slot_id]
        if isinstance(expr, ColumnRef):
            request = AnnotationRequest(
                slot_id, expr.name, level=len(key_order) - 1, combine="sum"
            )
        else:
            values = np.asarray(
                evaluate(expr, lambda ref: table.columns[ref.name]), dtype=np.float64
            )
            request = AnnotationRequest(
                slot_id, str(expr), level=len(key_order) - 1, combine="sum", values=values
            )
        trie = table.get_trie(key_order, (request,))
        dims = tuple(spec.domain_sizes[v] for v in vertices)
        # Attribute elimination left the dense annotation in one flat,
        # row-major, BLAS-compatible buffer: reshape is free.
        operands.append(trie.annotation(slot_id).values.reshape(dims))

    out = blas.contract(spec.einsum_spec, operands)
    coefficient = spec.aggregates[0].terms[0][0]
    if coefficient != 1.0:
        out = out * coefficient

    # Produce the key values alongside the BLAS output annotation (the
    # paper's <2% overhead for key production).
    out_dims = [spec.domain_sizes[v] for v in spec.output_vertices]
    if out_dims:
        grids = np.meshgrid(
            *[np.arange(d, dtype=np.int64) for d in out_dims], indexing="ij"
        )
        key_columns = [g.ravel() for g in grids]
        matrix = np.asarray(out, dtype=np.float64).reshape(-1, 1)
    else:
        key_columns = []
        matrix = np.asarray([[float(out)]])
    layout = [("vertex", v) for v in spec.output_vertices]
    return RawResult(
        group_layout=layout,
        key_columns=key_columns,
        matrix=matrix,
        agg_ids=[spec.aggregates[0].agg_id],
        keys_are_codes=True,
    )
