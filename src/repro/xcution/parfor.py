"""The ``parfor`` operator: parallel iteration over the outermost loop.

LevelHeaded parallelizes the generic WCOJ algorithm by naively
splitting the outermost ``for`` over set values across cores
(Section III-D).  In this pure-Python reproduction the workers are
threads (numpy kernels release the GIL; Python-level interpretation
does not), so ``parallel=True`` is about exercising the execution
structure, not about wall-clock speedups -- see DESIGN.md.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, TypeVar

T = TypeVar("T")


def chunk_slices(total: int, chunks: int) -> List[slice]:
    """Split ``range(total)`` into at most ``chunks`` contiguous slices."""
    if total <= 0:
        return []
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    slices = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def parfor_chunks(worker: Callable[[slice], T], total: int, num_threads: int) -> Iterator[T]:
    """Run ``worker`` over contiguous chunks of ``range(total)`` in parallel."""
    slices = chunk_slices(total, num_threads)
    if len(slices) <= 1:
        for sl in slices:
            yield worker(sl)
        return
    with ThreadPoolExecutor(max_workers=len(slices)) as pool:
        futures = [pool.submit(worker, sl) for sl in slices]
        for future in futures:
            yield future.result()
