"""The ``parfor`` operator: parallel iteration over the outermost loop.

LevelHeaded parallelizes the generic WCOJ algorithm by naively
splitting the outermost ``for`` over set values across cores
(Section III-D).  In this pure-Python reproduction the workers are
threads (numpy kernels release the GIL; Python-level interpretation
does not), so ``parallel=True`` is about exercising the execution
structure, not about wall-clock speedups -- see DESIGN.md.

Stats semantics
    Workers never share mutable state: each parfor worker accumulates
    into a **private** ``ExecutionStats`` and a **private** aggregator,
    and the parent merges both in chunk order after every future has
    resolved (``parfor_chunks`` yields results in submission order).
    Repeated parallel runs of the same plan therefore produce
    byte-identical counters, equal to the serial run's: per-value
    counters (``loop_values``, ``intersections``, ``fetches``) sum
    across chunks to the serial totals, and kernel-invocation counters
    (``tail_batches``, ``relaxed_unions``) are normalized so a kernel
    chunked across workers still counts as one logical application.

Memory-budget semantics
    ``memory_budget_bytes`` bounds the *global* aggregate state, not
    per-worker state: each worker's aggregator receives
    ``budget // n_chunks`` as its share (so no worker can singlehandedly
    blow the global budget by a factor of ``num_threads``), and the
    parent re-checks the full budget after every chunk merge, raising
    ``OutOfMemoryBudgetError`` exactly as the serial path does.  A
    worker's exception propagates out of ``parfor_chunks`` through its
    future.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


def chunk_slices(total: int, chunks: int) -> List[slice]:
    """Split ``range(total)`` into at most ``chunks`` contiguous slices."""
    if total <= 0:
        return []
    chunks = max(1, min(chunks, total))
    base, extra = divmod(total, chunks)
    slices = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices


def parfor_chunks(
    worker: Callable[[slice], T], total: int, num_threads: int, cancel=None
) -> Iterator[T]:
    """Run ``worker`` over contiguous chunks of ``range(total)`` in parallel.

    ``cancel`` (an optional :class:`~repro.core.governor.CancelToken`)
    is checked before dispatch and between chunk results; the workers
    themselves poll the same token inside their loops, so a fired token
    stops every chunk at its next poll and the first worker's
    ``QueryCancelledError``/``QueryTimeoutError`` propagates out of the
    generator through its future.
    """
    if cancel is not None:
        cancel.check()
    slices = chunk_slices(total, num_threads)
    if len(slices) <= 1:
        for sl in slices:
            yield worker(sl)
        return
    with ThreadPoolExecutor(max_workers=len(slices)) as pool:
        futures = [pool.submit(worker, sl) for sl in slices]
        for future in futures:
            # a fired token makes the remaining workers fail fast at
            # their next poll, so draining the futures stays bounded
            yield future.result()
            if cancel is not None and cancel.cancelled:
                cancel.check()


def parfor_chunks_mp(
    worker: Callable[[slice], T],
    total: int,
    num_workers: int,
    cancel=None,
    start_method: Optional[str] = None,
) -> Iterator[T]:
    """Process-backed :func:`parfor_chunks` for single-node parallel LA.

    The multiprocessing fallback for workloads the thread pool cannot
    speed up: Python-level interpretation holds the GIL, so a CPU-bound
    ``worker`` only scales across *processes*.  The contract matches
    ``parfor_chunks`` -- same :func:`chunk_slices` decomposition, results
    yielded in submission order, so chunk-order merges stay
    byte-identical to the serial and threaded paths.

    Two deliberate narrowings keep it safe as a *fallback*:

    * ``worker`` must be picklable (a module-level function or a
      partial over one) -- closures over live engine state, the common
      case inside the executors, cannot cross a process boundary.  A
      worker that fails to pickle degrades to serial in-process
      execution rather than erroring: the caller asked for a speedup,
      not a new failure mode.
    * ``cancel`` tokens don't travel either; they are polled between
      chunk results in the parent (cancellation latency is one chunk,
      the same bound the threaded path has between polls).

    Like the shard workers, the pool uses the ``spawn`` context by
    default -- forking a threaded parent is a deadlock lottery.
    """
    if cancel is not None:
        cancel.check()
    slices = chunk_slices(total, num_workers)
    if len(slices) <= 1:
        for sl in slices:
            yield worker(sl)
        return
    import multiprocessing
    import pickle

    try:
        pickle.dumps(worker)
    except Exception:
        # unpicklable worker: serial fallback, identical results
        for sl in slices:
            if cancel is not None:
                cancel.check()
            yield worker(sl)
        return
    ctx = multiprocessing.get_context(start_method or "spawn")
    with ctx.Pool(processes=len(slices)) as pool:
        results = [pool.apply_async(worker, (sl,)) for sl in slices]
        for result in results:
            yield result.get()
            if cancel is not None and cancel.cancelled:
                pool.terminate()
                cancel.check()
