"""Linear algebra subsystem: matrices as annotated relations, the BLAS
substrate, CSR conversion utilities, and the SMV/SMM/DMV/DMM kernels of
Section VI-B2."""

from . import blas
from .kernels import (
    frobenius_norm_sql,
    matmul_sql,
    matvec_sql,
    run_matmul,
    run_matvec,
    vector_dot_sql,
)
from .matrix import (
    MatrixHandle,
    VectorHandle,
    dense_result,
    dense_vector_result,
    ensure_dimension,
    matrix_schema,
    random_sparse_coo,
    to_dense,
    vector_schema,
)
from .semiring_ops import distances_to_target, semiring_matmul, semiring_matvec
from .sparse import CSRMatrix, coo_to_csr, csr_matmul, csr_matvec, csr_to_dense

__all__ = [
    "blas",
    "MatrixHandle",
    "VectorHandle",
    "matrix_schema",
    "vector_schema",
    "ensure_dimension",
    "dense_result",
    "dense_vector_result",
    "to_dense",
    "random_sparse_coo",
    "CSRMatrix",
    "coo_to_csr",
    "csr_matvec",
    "csr_matmul",
    "csr_to_dense",
    "matvec_sql",
    "matmul_sql",
    "semiring_matmul",
    "semiring_matvec",
    "distances_to_target",
    "run_matvec",
    "run_matmul",
    "frobenius_norm_sql",
    "vector_dot_sql",
]
