"""Sparse formats: the column-store -> CSR conversion of Table IV.

LevelHeaded deliberately does *not* integrate a sparse BLAS: the
accepted compressed-sparse-row (CSR) format would force an expensive
data transformation on every query (Section III-D), which Table IV
quantifies as the ratio of ``mkl_scsrcoo`` conversion time to one SMV
execution.  ``coo_to_csr`` is that conversion, implemented from
scratch; the CSR kernels let tests validate it and give the conversion
a consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import SchemaError


@dataclass
class CSRMatrix:
    """A compressed-sparse-row matrix."""

    indptr: np.ndarray  # int64, shape (n_rows + 1,)
    indices: np.ndarray  # int64, column of each stored value
    data: np.ndarray  # float64
    shape: Tuple[int, int]

    @property
    def nnz(self) -> int:
        return int(self.data.size)


def coo_to_csr(
    rows: np.ndarray, cols: np.ndarray, values: np.ndarray, shape: Tuple[int, int]
) -> CSRMatrix:
    """Convert COO triples (column-store layout) to CSR.

    This is the reproduction's ``mkl_scsrcoo``: a stable sort by row
    plus a row-pointer histogram -- the work a column store must pay
    before calling a sparse BLAS, and what LevelHeaded's trie avoids.
    Duplicate coordinates are summed.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    n_rows, n_cols = shape
    if rows.size and (rows.max() >= n_rows or cols.max() >= n_cols):
        raise SchemaError("COO index out of bounds for shape")

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]
    if rows.size:
        fresh = np.concatenate(
            ([True], (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1]))
        )
        starts = np.flatnonzero(fresh)
        rows = rows[starts]
        cols = cols[starts]
        values = np.add.reduceat(values, starts)

    counts = np.bincount(rows, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr=indptr, indices=cols, data=values, shape=shape)


def csr_matvec(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """CSR sparse matrix-vector product."""
    if x.shape[0] != matrix.shape[1]:
        raise SchemaError("matvec dimension mismatch")
    products = matrix.data * x[matrix.indices]
    out = np.zeros(matrix.shape[0])
    nonempty = matrix.indptr[:-1] < matrix.indptr[1:]
    if products.size:
        sums = np.add.reduceat(products, matrix.indptr[:-1][nonempty])
        out[nonempty] = sums
    return out


def csr_matmul(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """CSR sparse matrix-matrix product (row-wise dense accumulator).

    The classic Gustavson formulation: for each row of ``a``, scatter
    scaled rows of ``b`` into a dense accumulator -- the same loop
    structure MKL uses and that LevelHeaded's relaxed attribute order
    recovers (Figure 5b).
    """
    if a.shape[1] != b.shape[0]:
        raise SchemaError("matmul dimension mismatch")
    n_rows, n_cols = a.shape[0], b.shape[1]
    out_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    out_indices = []
    out_data = []
    accumulator = np.zeros(n_cols)
    for row in range(n_rows):
        touched = []
        for pos in range(a.indptr[row], a.indptr[row + 1]):
            k = a.indices[pos]
            scale = a.data[pos]
            lo, hi = b.indptr[k], b.indptr[k + 1]
            cols = b.indices[lo:hi]
            accumulator[cols] += scale * b.data[lo:hi]
            touched.append(cols)
        if touched:
            cols = np.unique(np.concatenate(touched))
            out_indices.append(cols)
            out_data.append(accumulator[cols].copy())
            accumulator[cols] = 0.0
            out_indptr[row + 1] = out_indptr[row] + cols.size
        else:
            out_indptr[row + 1] = out_indptr[row]
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0)
    return CSRMatrix(indptr=out_indptr, indices=indices, data=data, shape=(n_rows, n_cols))


def csr_to_dense(matrix: CSRMatrix) -> np.ndarray:
    out = np.zeros(matrix.shape)
    for row in range(matrix.shape[0]):
        lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
        out[row, matrix.indices[lo:hi]] = matrix.data[lo:hi]
    return out
