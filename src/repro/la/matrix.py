"""Matrices and vectors as annotated relations.

A matrix is a table ``(i, j, v)`` whose keys share one *dimension
domain* and whose value column is the annotation (Figure 3 of the
paper); a vector is ``(i, v)``.  The first-class surface is the engine:
``engine.register_matrix(...)`` / ``engine.register_vector(...)`` return
:class:`MatrixHandle` / :class:`VectorHandle` objects that know their
dimension and materialize back to numpy (``.to_dense()`` /
``.to_vector()``); query results densify through
:meth:`~repro.core.result.ResultTable.to_dense` and ``.to_vector``.
Registration anchors the dimension domain with a range table so that
(a) encoded indices are the raw indices and (b) completely dense
matrices are detected for the icost-0 rule and BLAS routing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import SchemaError
from ..storage.catalog import Catalog
from ..storage.schema import Schema, annotation, key
from ..storage.table import Table


def matrix_schema(name: str, domain: str) -> Schema:
    """Schema for a matrix relation over a shared dimension domain."""
    return Schema(
        name, [key("i", domain=domain), key("j", domain=domain), annotation("v")]
    )


def vector_schema(name: str, domain: str) -> Schema:
    """Schema for a vector relation over the same dimension domain."""
    return Schema(name, [key("i", domain=domain), annotation("v")])


def ensure_dimension(catalog: Catalog, domain: str, n: int) -> None:
    """Anchor ``domain`` with every index ``0..n-1``.

    Registering the full range once keeps index encoding the identity
    and makes dense-relation detection exact (a dense matrix has
    ``n*n`` rows over an ``n``-sized domain).
    """
    anchor_name = f"__dim_{domain}"
    if catalog.has_table(anchor_name):
        return
    catalog.register(
        Table.from_columns(
            Schema(anchor_name, [key("d", domain=domain)]), d=np.arange(n)
        )
    )


def _register_coo(
    catalog: Catalog,
    name: str,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    n: int,
    domain: Optional[str] = None,
) -> Table:
    """Register a sparse matrix from COO triples (implementation)."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    values = np.asarray(values, dtype=np.float64)
    if not (rows.shape == cols.shape == values.shape):
        raise SchemaError("COO arrays must have equal shapes")
    if rows.size and (rows.max() >= n or cols.max() >= n or rows.min() < 0 or cols.min() < 0):
        raise SchemaError(f"COO indices out of range for dimension {n}")
    domain = domain or f"{name}_dim"
    ensure_dimension(catalog, domain, n)
    return catalog.register(
        Table.from_columns(matrix_schema(name, domain), i=rows, j=cols, v=values)
    )


def _register_dense(
    catalog: Catalog, name: str, array: np.ndarray, domain: Optional[str] = None
) -> Table:
    """Register a dense square matrix (every cell stored)."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise SchemaError(f"expected a square matrix, got shape {array.shape}")
    n = array.shape[0]
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return _register_coo(catalog, name, i.ravel(), j.ravel(), array.ravel(), n, domain)


def _register_vector(
    catalog: Catalog,
    name: str,
    values: np.ndarray,
    domain: str,
    indices: Optional[np.ndarray] = None,
) -> Table:
    """Register a vector over an existing dimension domain.

    Dense when ``indices`` is omitted (one entry per domain index).
    """
    values = np.asarray(values, dtype=np.float64)
    if indices is None:
        indices = np.arange(values.size)
    return catalog.register(
        Table.from_columns(vector_schema(name, domain), i=indices, v=values)
    )


def to_dense(table: Table, n: int) -> np.ndarray:
    """Materialize a matrix relation back to a dense array (tests/examples)."""
    out = np.zeros((n, n))
    out[table.column("i"), table.column("j")] = table.column("v")
    return out


def dense_result(result, n: int) -> np.ndarray:
    """Materialize an ``(i, j, v)`` query result to a dense ``n x n`` array."""
    if len(result.names) < 3:
        raise SchemaError(
            f"expected an (i, j, v) result, got columns {list(result.names)}"
        )
    out = np.zeros((n, n))
    i = np.asarray(result.column(result.names[0]), dtype=np.int64)
    j = np.asarray(result.column(result.names[1]), dtype=np.int64)
    out[i, j] = np.asarray(result.column(result.names[2]), dtype=np.float64)
    return out


def dense_vector_result(result, n: int) -> np.ndarray:
    """Materialize an ``(i, v)`` query result to a dense length-``n`` vector."""
    if len(result.names) < 2:
        raise SchemaError(
            f"expected an (i, v) result, got columns {list(result.names)}"
        )
    out = np.zeros(n)
    i = np.asarray(result.column(result.names[0]), dtype=np.int64)
    out[i] = np.asarray(result.column(result.names[1]), dtype=np.float64)
    return out


# ---------------------------------------------------------------------------
# first-class handles (the engine's register_matrix / register_vector)
# ---------------------------------------------------------------------------


class MatrixHandle:
    """A registered matrix relation: table + dimension, densifiable.

    Returned by :meth:`LevelHeadedEngine.register_matrix`; reference it
    in SQL by :attr:`name`.  ``to_dense()`` materializes the stored
    triples back to an ``n x n`` numpy array.
    """

    __slots__ = ("catalog", "table", "n", "domain")

    def __init__(self, catalog: Catalog, table: Table, n: int, domain: str):
        self.catalog = catalog
        self.table = table
        self.n = n
        self.domain = domain

    @property
    def name(self) -> str:
        return self.table.schema.name

    @property
    def nnz(self) -> int:
        return self.table.num_rows

    def to_dense(self) -> np.ndarray:
        """The matrix as a dense ``(n, n)`` numpy array."""
        return to_dense(self.table, self.n)

    def __repr__(self) -> str:
        return f"MatrixHandle({self.name!r}, n={self.n}, nnz={self.nnz})"


class VectorHandle:
    """A registered vector relation: table + dimension, densifiable."""

    __slots__ = ("catalog", "table", "n", "domain")

    def __init__(self, catalog: Catalog, table: Table, n: int, domain: str):
        self.catalog = catalog
        self.table = table
        self.n = n
        self.domain = domain

    @property
    def name(self) -> str:
        return self.table.schema.name

    @property
    def nnz(self) -> int:
        return self.table.num_rows

    def to_vector(self) -> np.ndarray:
        """The vector as a dense length-``n`` numpy array."""
        out = np.zeros(self.n)
        out[np.asarray(self.table.column("i"), dtype=np.int64)] = self.table.column("v")
        return out

    #: alias so matrix- and vector-densification read the same.
    to_dense = to_vector

    def __repr__(self) -> str:
        return f"VectorHandle({self.name!r}, n={self.n}, nnz={self.nnz})"


def random_sparse_coo(
    n: int, nnz: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniform random COO triples (duplicates removed)."""
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    flat = np.unique(rows.astype(np.int64) * n + cols)
    rows, cols = flat // n, flat % n
    values = rng.normal(size=rows.size)
    return rows, cols, values
