"""Matrix kernels over arbitrary commutative semirings (AJAR generality).

The AJAR framework (Section II-C) is not limited to sum-product: any
commutative semiring's ⊕/⊗ can annotate the same trie-backed relations.
These kernels run the generic join directly over matrix tries with a
caller-supplied semiring -- (min, +) matrix "multiplication" is one
relaxation step of all-pairs shortest paths, (max, min) is widest
path, (max, *) most-probable path.  They demonstrate that the engine's
data structures serve the paper's "message passing, and graph queries"
claim beyond SQL's built-in aggregates.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..query.semiring import Semiring
from ..storage.table import AnnotationRequest, Table


def semiring_matmul(a: Table, b: Table, semiring: Semiring) -> Dict[Tuple[int, int], float]:
    """C[i,j] = ⊕_k A[i,k] ⊗ B[k,j] over an arbitrary semiring.

    Uses the same trie structures and MKL-style loop order as the SQL
    path ([i, k, j] with a 1-attribute union), but folds with the
    semiring's operators instead of +/*.  Returns a sparse dict of the
    non-``zero`` results.
    """
    a_trie = a.get_trie(("i", "j"), (AnnotationRequest("v", "v", 1, "first"),))
    b_trie = b.get_trie(("i", "j"), (AnnotationRequest("v", "v", 1, "first"),))
    a_ann = a_trie.annotation("v").values
    b_ann = b_trie.annotation("v").values
    b_level1 = b_trie.level(1)

    # Work in raw index space: each standalone table has its own
    # order-preserving dictionary, so codes are not comparable across
    # tables -- decode once up front (decoded arrays stay sorted).
    a_dict, b_dict = a._domain_dictionary("i"), b._domain_dictionary("i")
    a_level0, a_level1 = a_trie.level(0), a_trie.level(1)
    a_rows_raw = a_dict.decode(a_level0.flat_values)
    a_cols_raw = a_dict.decode(a_level1.flat_values)
    b_rows_raw = b_dict.decode(b_trie.level(0).flat_values)
    b_cols_raw = b_dict.decode(b_level1.flat_values)

    out: Dict[Tuple[int, int], float] = {}
    for parent, i in enumerate(a_rows_raw):
        lo, hi = a_level1.offsets[parent], a_level1.offsets[parent + 1]
        ks = a_cols_raw[lo:hi]
        positions = np.searchsorted(b_rows_raw, ks)
        in_range = positions < b_rows_raw.size
        member = np.zeros(ks.shape, dtype=bool)
        member[in_range] = b_rows_raw[positions[in_range]] == ks[in_range]
        if not member.any():
            continue
        a_vals = a_ann[lo:hi][member]
        b_parents = positions[member]
        accumulator: Dict[int, float] = {}
        for a_val, b_parent in zip(a_vals, b_parents):
            b_lo, b_hi = b_level1.offsets[b_parent], b_level1.offsets[b_parent + 1]
            js = b_cols_raw[b_lo:b_hi]
            products = semiring.mul(a_val, b_ann[b_lo:b_hi])
            for j, value in zip(js, products):
                j = int(j)
                if j in accumulator:
                    accumulator[j] = semiring.add(accumulator[j], value)
                else:
                    accumulator[j] = float(value)
        for j, value in accumulator.items():
            out[(int(i), j)] = value
    return out


def semiring_matvec(a: Table, x: np.ndarray, semiring: Semiring) -> np.ndarray:
    """y[i] = ⊕_k A[i,k] ⊗ x[k]; absent rows yield the semiring zero."""
    a_trie = a.get_trie(("i", "j"), (AnnotationRequest("v", "v", 1, "first"),))
    a_ann = a_trie.annotation("v").values
    level0, level1 = a_trie.level(0), a_trie.level(1)
    a_dict = a._domain_dictionary("i")
    rows_raw = a_dict.decode(level0.flat_values)
    cols_raw = a_dict.decode(level1.flat_values)
    n = x.shape[0]
    out = np.full(n, semiring.zero)
    for parent, i in enumerate(rows_raw):
        if i >= n:
            continue
        lo, hi = level1.offsets[parent], level1.offsets[parent + 1]
        ks = cols_raw[lo:hi]
        in_range = ks < n
        if not in_range.any():
            continue
        products = semiring.mul(a_ann[lo:hi][in_range], x[ks[in_range]])
        out[int(i)] = semiring.fold_add(np.asarray(products))
    return out


def distances_to_target(edges: Table, target: int, n: int) -> np.ndarray:
    """Single-target shortest-path distances via (min, +) relaxations.

    Bellman-Ford expressed as repeated semiring matvecs over the edge
    relation's trie: ``d[i] = min(d[i], min_k w(i,k) + d[k])`` -- the
    AJAR dynamic-programming claim (Section II-C) end to end on the
    engine's own data structures.
    """
    from ..query.semiring import MIN_PLUS

    distances = np.full(n, np.inf)
    distances[target] = 0.0
    for _ in range(n - 1):
        relaxed = semiring_matvec(edges, distances, MIN_PLUS)
        updated = np.minimum(distances, relaxed)
        if np.array_equal(updated, distances):
            break
        distances = updated
    return distances
