"""The four LA benchmark kernels as SQL (Section VI-B2).

Matrix-vector and matrix-matrix multiplication are "simple to express
using joins and aggregations in SQL and are the core operations for
most machine learning algorithms".  Sparse kernels execute as pure
aggregate-join queries; dense ones are routed to the BLAS substrate by
the engine -- callers use the *same* SQL either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a circular import (core.engine -> xcution -> la)
    from ..core.engine import LevelHeadedEngine
    from ..core.result import ResultTable


def matvec_sql(matrix: str = "m", vector: str = "x") -> str:
    """``y = A x`` as an aggregate-join (SMV / DMV)."""
    return (
        f"SELECT {matrix}.i, sum({matrix}.v * {vector}.v) AS v "
        f"FROM {matrix}, {vector} AS {vector} "
        f"WHERE {matrix}.j = {vector}.i GROUP BY {matrix}.i"
    )


def matmul_sql(a: str = "m", b: str | None = None) -> str:
    """``C = A B`` as an aggregate-join (SMM / DMM).

    Like the paper (and [41]) the benchmarks multiply a matrix by
    itself, so ``b`` defaults to a second alias of ``a``.
    """
    if b is None or b == a:
        return (
            f"SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v "
            f"FROM {a} AS m1, {a} AS m2 WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
        )
    return (
        f"SELECT {a}.i, {b}.j, sum({a}.v * {b}.v) AS v "
        f"FROM {a}, {b} WHERE {a}.j = {b}.i GROUP BY {a}.i, {b}.j"
    )


def run_matvec(engine: LevelHeadedEngine, matrix: str = "m", vector: str = "x") -> ResultTable:
    """Execute SMV/DMV through the engine."""
    return engine.query(matvec_sql(matrix, vector))


def run_matmul(engine: LevelHeadedEngine, matrix: str = "m") -> ResultTable:
    """Execute SMM/DMM (matrix times itself) through the engine."""
    return engine.query(matmul_sql(matrix))


def frobenius_norm_sql(matrix: str = "m") -> str:
    """``||A||_F^2`` -- a scan-style LA aggregate."""
    return f"SELECT sum({matrix}.v * {matrix}.v) AS norm2 FROM {matrix}"


def vector_dot_sql(x: str = "x", y: str = "y") -> str:
    """``x . y`` as a 1-attribute aggregate-join."""
    return (
        f"SELECT sum({x}.v * {y}.v) AS dot FROM {x}, {y} "
        f"WHERE {x}.i = {y}.i"
    )
