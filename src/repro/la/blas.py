"""The dense BLAS substrate (the reproduction's Intel MKL stand-in).

The paper calls Intel MKL for the annotation processing of dense LA
kernels because attribute elimination leaves each dense annotation in
a BLAS-compatible buffer (Sections III-D and IV-A).  Here numpy's
``dot``/``einsum`` -- which dispatch to the platform BLAS -- play MKL's
role; see DESIGN.md's substitution table.  The engine treats these
calls as opaque, exactly as LevelHeaded treats MKL.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ExecutionError


def gemv(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Dense matrix-vector multiply (BLAS level 2)."""
    if matrix.ndim != 2 or vector.ndim != 1 or matrix.shape[1] != vector.shape[0]:
        raise ExecutionError(
            f"gemv shape mismatch: {matrix.shape} x {vector.shape}"
        )
    return matrix @ vector


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix-matrix multiply (BLAS level 3)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ExecutionError(f"gemm shape mismatch: {a.shape} x {b.shape}")
    return a @ b


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Dense dot product (BLAS level 1)."""
    if a.shape != b.shape or a.ndim != 1:
        raise ExecutionError(f"dot shape mismatch: {a.shape} x {b.shape}")
    return float(np.dot(a, b))


def contract(spec: str, operands: Sequence[np.ndarray]) -> np.ndarray:
    """General sum-product contraction over dense buffers.

    Two-operand matmul/matvec shapes take the explicit GEMM/GEMV entry
    points; anything else falls through to ``einsum`` (still BLAS-backed
    for the shapes the engine emits).
    """
    inputs, _, output = spec.partition("->")
    specs = inputs.split(",")
    if len(specs) != len(operands):
        raise ExecutionError(f"contract spec '{spec}' expects {len(specs)} operands")
    if len(operands) == 2:
        a_spec, b_spec = specs
        a, b = operands
        if (
            len(a_spec) == 2
            and len(b_spec) == 2
            and a_spec[1] == b_spec[0]
            and output == a_spec[0] + b_spec[1]
        ):
            return gemm(a, b)
        if (
            len(a_spec) == 2
            and len(b_spec) == 1
            and a_spec[1] == b_spec[0]
            and output == a_spec[0]
        ):
            return gemv(a, b)
        if (
            len(a_spec) == 1
            and len(b_spec) == 1
            and a_spec == b_spec
            and output == ""
        ):
            return np.asarray(dot(a, b))
    return np.einsum(spec, *operands)
