"""The q-error feedback loop: measure estimate error, re-rank bad plans.

The optimizer routes every GHD node on *estimates* -- the icost x
weight WCOJ score, the System-R pairwise estimate, and the output-row
estimate in :class:`~repro.optimizer.strategy.StrategyDecision` -- but
estimates built from independence and containment assumptions are
exactly wrong on skewed data.  This module closes the loop
(ROADMAP's "Feedback-driven optimizer"):

* after each execution, the engine pairs every plan node's
  ``est_rows`` with the rows the node actually produced
  (``ExecutionStats.node_rows``, keyed by ``NodePlan.node_key``) and
  computes the **q-error** ``max(est/act, act/est)`` per node
  (:func:`q_error`, :func:`measure`);
* each plan-cache entry carries a :class:`PlanFeedback` record; when
  the observed per-query q-error exceeds ``threshold`` for
  ``drift_runs`` *consecutive* runs the entry is marked **drifted**
  (:meth:`PlanFeedback.record`), exactly parallel to the catalog
  ``domain_version`` invalidation path;
* the next lookup of a drifted entry recompiles with
  **feedback-corrected cardinalities**: the observed per-node actuals
  (:meth:`PlanFeedback.corrections`) override the catalog /
  independence estimates during attribute-order search (child
  pseudo-edge cardinalities feed the relation-score weights) and
  strategy scoring (``est_rows`` is pinned to the observation).

Thresholds follow the q-error literature's convention that factor-of-k
misestimates under ~4 rarely change plan choice, while persistent
larger errors do; one bad run is noise, ``DRIFT_CONSECUTIVE_RUNS``
consecutive bad runs is a lying statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: a cached plan drifts when its per-query q-error exceeds this.
Q_ERROR_DRIFT_THRESHOLD = 4.0

#: ... for this many consecutive runs (one bad run is noise).
DRIFT_CONSECUTIVE_RUNS = 3


def q_error(est_rows: float, actual_rows: float) -> float:
    """The symmetric relative estimate error ``max(est/act, act/est)``.

    Both sides are floored at one row: an estimate of 0 against an
    actual of 0 is a perfect prediction (q-error 1.0), not a 0/0.
    """
    est = max(float(est_rows), 1.0)
    act = max(float(actual_rows), 1.0)
    return max(est / act, act / est)


@dataclass(frozen=True)
class NodeFeedback:
    """One plan node's estimated vs. actual output cardinality."""

    node_key: str
    est_rows: float
    actual_rows: int
    q_error: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "node_key": self.node_key,
            "est_rows": float(self.est_rows),
            "actual_rows": int(self.actual_rows),
            "q_error": float(self.q_error),
        }


@dataclass(frozen=True)
class QueryFeedback:
    """Per-node and per-query q-error of one plan execution."""

    nodes: Tuple[NodeFeedback, ...]
    q_error_max: float
    q_error_root: float

    def node(self, node_key: str) -> Optional[NodeFeedback]:
        for nf in self.nodes:
            if nf.node_key == node_key:
                return nf
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "q_error_max": float(self.q_error_max),
            "q_error_root": float(self.q_error_root),
            "nodes": [nf.as_dict() for nf in self.nodes],
        }


def measure(plan, node_rows: Mapping[str, int]) -> Optional[QueryFeedback]:
    """Pair a join plan's per-node estimates with observed row counts.

    ``plan`` is a :class:`~repro.xcution.plan.PhysicalPlan` (duck-typed
    to avoid a core->optimizer->xcution import cycle); ``node_rows`` is
    ``ExecutionStats.node_rows``.  Returns None when nothing matched
    (scan/BLAS plans, or stats collected without node recording).
    """
    root = getattr(plan, "root", None)
    if root is None or not node_rows:
        return None
    nodes = []
    root_q = 1.0
    stack = [root]
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        sd = node.strategy_decision
        actual = node_rows.get(node.node_key)
        if sd is None or actual is None:
            continue
        qe = q_error(sd.est_rows, actual)
        nodes.append(NodeFeedback(node.node_key, float(sd.est_rows), int(actual), qe))
        if node is root:
            root_q = qe
    if not nodes:
        return None
    return QueryFeedback(
        nodes=tuple(sorted(nodes, key=lambda nf: nf.node_key)),
        q_error_max=max(nf.q_error for nf in nodes),
        q_error_root=root_q,
    )


@dataclass
class PlanFeedback:
    """The drift record attached to one plan-cache entry.

    ``record`` is called after every execution of the cached plan;
    ``corrections`` hands the accumulated observations to the next
    (feedback-driven) recompile.  A drifted record is *sticky*: the
    cache drops the entry on next lookup and seeds the replacement via
    :meth:`successor`.
    """

    threshold: float = Q_ERROR_DRIFT_THRESHOLD
    drift_runs: int = DRIFT_CONSECUTIVE_RUNS
    #: total executions this entry's feedback has seen.
    runs: int = 0
    #: current run of consecutive above-threshold executions.
    bad_streak: int = 0
    #: whether the drift rule has fired (re-optimize on next lookup).
    drifted: bool = False
    #: how many feedback-driven recompiles produced this entry's plan.
    reoptimized: int = 0
    #: the most recent execution's measurement.
    last: Optional[QueryFeedback] = None
    #: latest observed actual rows per node_key (the corrections).
    observed_rows: Dict[str, int] = field(default_factory=dict)

    def record(self, measured: QueryFeedback) -> bool:
        """Fold one execution's measurement in; True when newly drifted."""
        self.runs += 1
        self.last = measured
        for nf in measured.nodes:
            self.observed_rows[nf.node_key] = nf.actual_rows
        if self.drifted:
            return False
        if measured.q_error_max > self.threshold:
            self.bad_streak += 1
        else:
            self.bad_streak = 0
        if self.bad_streak >= self.drift_runs:
            self.drifted = True
            return True
        return False

    def corrections(self) -> Dict[str, int]:
        """Observed per-node actual rows, keyed by ``NodePlan.node_key``."""
        return dict(self.observed_rows)

    def successor(self) -> "PlanFeedback":
        """The feedback record for the re-optimized replacement plan.

        Observations carry over (the data did not change, only the
        plan), the drift state resets, and the reoptimization count
        increments -- a replacement that *still* drifts is visible.
        """
        return PlanFeedback(
            threshold=self.threshold,
            drift_runs=self.drift_runs,
            reoptimized=self.reoptimized + 1,
            observed_rows=dict(self.observed_rows),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "drift_runs": self.drift_runs,
            "runs": self.runs,
            "bad_streak": self.bad_streak,
            "drifted": self.drifted,
            "reoptimized": self.reoptimized,
            "observed_nodes": len(self.observed_rows),
            "q_error_max": (
                float(self.last.q_error_max) if self.last is not None else None
            ),
            "q_error_root": (
                float(self.last.q_error_root) if self.last is not None else None
            ),
        }
