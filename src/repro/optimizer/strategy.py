"""Per-node execution-strategy scoring: WCOJ vs pairwise hash joins.

LevelHeaded's generic join wins where the AGM bound pays off (cyclic
fragments, many-to-many LA shapes) but loses to Selinger-planned
pairwise hash joins on sparse, selective, acyclic fragments -- the
TPC-H-shaped parts of a plan.  Free Join (arXiv 2301.10841) shows the
two are points on one continuum; this module picks a point per GHD
node.

Every join node is scored twice:

* ``wcoj_cost`` -- the icost x weight structural estimate the attribute
  -order search already produced (:class:`OrderDecision.cost`);
* ``binary_cost`` -- a textbook System-R estimate of the total
  intermediate cardinality of the best left-deep pairwise plan over the
  node's relations (independence + containment of value sets, the same
  arithmetic as ``repro.baselines.pairwise.planner``).

The ``auto`` decision rule (documented in docs/hybrid.md):

1. fragments whose total input is **small** (< ``MIN_BINARY_INPUT_ROWS``
   rows) run WCOJ -- vectorized hash-join setup cost dominates tiny
   inputs, and the interpreter is already cheap there;
2. otherwise the fragment runs **binary** iff the estimated sum of
   pairwise intermediates does not exceed a factor times the input the
   trie build would have to scan anyway
   (``binary_cost <= factor * input_rows``) -- i.e. hash joins are
   chosen exactly when selectivity keeps intermediates from blowing up
   past the input.  The factor is ``BINARY_COST_FACTOR`` for acyclic
   fragments; **cyclic** fragments (GYO reduction does not empty the
   hypergraph) lose the AGM guarantee under pairwise plans and their
   independence-based estimates are least trustworthy, so they demand
   the stricter ``CYCLIC_BINARY_COST_FACTOR`` margin.  That keeps
   triangle counting on WCOJ (its intermediates exceed the input) while
   letting TPC-H Q5's cyclic-but-selective core run pairwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: below this many total input rows a fragment always runs WCOJ under
#: ``auto``: per-join vectorization overhead dominates tiny inputs.
MIN_BINARY_INPUT_ROWS = 2048

#: ``auto`` picks binary iff binary_cost <= factor * input_rows.
BINARY_COST_FACTOR = 1.0

#: stricter margin demanded of cyclic fragments before they may leave
#: the AGM-bounded generic join for a pairwise plan.
CYCLIC_BINARY_COST_FACTOR = 0.25

#: schema version of the per-node ``strategy`` block in
#: ``engine.explain(format="json")``.  v2 added ``est_rows`` (the
#: optimizer's output-cardinality estimate, the quantity the q-error
#: feedback loop scores) and ``corrected`` (whether that estimate was
#: overridden by an observed actual from a drifted cache entry).
STRATEGY_SCHEMA_VERSION = 2

#: accepted values of ``EngineConfig.join_strategy``.
JOIN_STRATEGIES = ("auto", "wcoj", "binary")


@dataclass(frozen=True)
class EdgeStats:
    """Cardinality statistics of one relation occurrence in a node."""

    alias: str
    vertices: Tuple[str, ...]
    cardinality: float
    #: per-vertex distinct value counts (capped at ``cardinality``).
    distinct: Dict[str, float]


@dataclass(frozen=True)
class StrategyDecision:
    """The optimizer's per-node engine choice plus both estimates."""

    choice: str  # "wcoj" | "binary"
    wcoj_cost: float  # icost x weight structural estimate
    binary_cost: float  # estimated sum of pairwise intermediate rows
    input_rows: float  # total input cardinality of the fragment
    cyclic: bool
    eligible: bool  # whether binary execution was even considered
    reason: str
    #: estimated output rows (groups) of the fragment -- what the
    #: q-error feedback loop compares against the executed actuals.
    est_rows: float = 1.0
    #: True when ``est_rows`` came from an observed actual (a drifted
    #: plan's feedback-corrected recompile), not the catalog statistics.
    corrected: bool = False

    def as_dict(self) -> Dict:
        """The versioned JSON form pinned by the explain golden test."""
        return {
            "version": STRATEGY_SCHEMA_VERSION,
            "choice": self.choice,
            "wcoj_cost": float(self.wcoj_cost),
            "binary_cost": float(self.binary_cost),
            "input_rows": float(self.input_rows),
            "cyclic": self.cyclic,
            "eligible": self.eligible,
            "reason": self.reason,
            "est_rows": float(self.est_rows),
            "corrected": self.corrected,
        }


def is_acyclic(vertex_sets: Sequence[Sequence[str]]) -> bool:
    """GYO reduction: True iff the edge multiset is alpha-acyclic."""
    edges: List[set] = [set(e) for e in vertex_sets if e]
    if len(edges) <= 1:
        return True
    changed = True
    while changed and len(edges) > 1:
        changed = False
        counts: Dict[str, int] = {}
        for e in edges:
            for v in e:
                counts[v] = counts.get(v, 0) + 1
        stripped = []
        for e in edges:
            kept = {v for v in e if counts[v] > 1}
            if kept != e:
                changed = True
            if kept:
                stripped.append(kept)
            else:
                changed = True
        edges = stripped
        for i, e in enumerate(edges):
            if any(i != j and e <= f for j, f in enumerate(edges)):
                edges.pop(i)
                changed = True
                break
    return len(edges) <= 1


def pairwise_plan(edges: Sequence[EdgeStats]) -> Tuple[float, float]:
    """Best left-deep pairwise plan: ``(cost, output_rows)``.

    The same System-R dynamic program as the pairwise baseline's
    Selinger planner: independence across join predicates, containment
    of value sets per key (divide by the larger distinct count).
    ``cost`` is the sum of intermediate rows (what ``auto`` compares
    against the input); ``output_rows`` is the final joined
    cardinality -- the raw material of the feedback loop's ``est_rows``.
    """
    n = len(edges)
    if n == 0:
        return 0.0, 1.0
    if n == 1:
        return 0.0, float(max(edges[0].cardinality, 1.0))
    by_alias = {e.alias: e for e in edges}
    members: Dict[str, List[str]] = {}
    for e in edges:
        for v in e.vertices:
            members.setdefault(v, []).append(e.alias)

    def join_vertices(subset: FrozenSet[str], alias: str) -> List[str]:
        out = []
        for vertex, aliases in members.items():
            if alias in aliases and any(m in subset for m in aliases if m != alias):
                out.append(vertex)
        return out

    def estimate(card: float, subset: FrozenSet[str], alias: str) -> float:
        est = card * by_alias[alias].cardinality
        for vertex in join_vertices(subset, alias):
            dv_new = by_alias[alias].distinct.get(vertex, 1.0)
            dv_old = min(
                by_alias[m].distinct.get(vertex, 1.0)
                for m in members[vertex]
                if m in subset
            )
            est /= max(1.0, max(dv_new, dv_old))
        return est

    best: Dict[FrozenSet[str], Tuple[float, float]] = {
        frozenset([e.alias]): (0.0, float(e.cardinality)) for e in edges
    }
    aliases = [e.alias for e in edges]
    for size in range(2, n + 1):
        grown: Dict[FrozenSet[str], Tuple[float, float]] = {}
        for subset, (cost, card) in best.items():
            if len(subset) != size - 1:
                continue
            extensions = [a for a in aliases if a not in subset]
            connected = [a for a in extensions if join_vertices(subset, a)]
            for alias in connected or extensions:
                new_subset = subset | {alias}
                new_card = estimate(card, subset, alias)
                new_cost = cost + new_card
                current = grown.get(new_subset)
                if current is None or new_cost < current[0]:
                    grown[new_subset] = (new_cost, new_card)
        best.update(grown)
    full = frozenset(aliases)
    if full not in best:
        return float("inf"), float("inf")
    cost, card = best[full]
    return cost, max(card, 1.0)


def pairwise_cost(edges: Sequence[EdgeStats]) -> float:
    """Best left-deep pairwise plan cost: sum of intermediate rows."""
    return pairwise_plan(edges)[0]


def estimate_output_rows(
    edges: Sequence[EdgeStats],
    materialized: Sequence[str] = (),
    joined_rows: Optional[float] = None,
) -> float:
    """Estimate the rows (groups) a fragment emits after aggregation.

    A GHD node joins its relations and aggregates down to its
    ``materialized`` vertices, so the node's output cardinality is the
    joined cardinality capped by the number of distinct materialized
    tuples -- estimated (independence again) as the product over
    materialized vertices of the smallest per-edge distinct count.  A
    fully aggregated fragment (grand aggregate) emits one group.
    """
    if not materialized:
        return 1.0
    if joined_rows is None:
        joined_rows = pairwise_plan(edges)[1]
    cap = 1.0
    for vertex in materialized:
        distinct = [
            e.distinct.get(vertex, e.cardinality)
            for e in edges
            if vertex in e.vertices
        ]
        if distinct:
            cap *= max(1.0, min(distinct))
    return max(1.0, min(float(joined_rows), cap))


def decide_strategy(
    mode: str,
    edges: Sequence[EdgeStats],
    wcoj_cost: float,
    eligible: bool = True,
    ineligible_reason: str = "",
    materialized: Sequence[str] = (),
    observed_rows: Optional[float] = None,
) -> StrategyDecision:
    """Pick the execution engine for one GHD node.

    ``mode`` is the configured ``join_strategy``; ``edges`` carries the
    node's relation statistics (base relations with post-filter
    cardinalities plus child-result pseudo-edges); ``wcoj_cost`` is the
    attribute-order search's chosen cost.  ``eligible=False`` (with a
    reason) pins the node to WCOJ regardless of mode -- used for the
    ablation configs whose experiments compare WCOJ internals.
    ``materialized`` names the vertices the node emits (its output-row
    estimate is capped by their distinct counts); ``observed_rows``
    pins ``est_rows`` to an actual observed by the q-error feedback
    loop on a drifted cached plan.
    """
    input_rows = float(sum(e.cardinality for e in edges))
    cyclic = not is_acyclic([e.vertices for e in edges])
    binary_cost, joined_rows = pairwise_plan(edges)
    est_rows = estimate_output_rows(edges, materialized, joined_rows)
    corrected = observed_rows is not None
    if corrected:
        est_rows = max(1.0, float(observed_rows))

    def pick(choice: str, reason: str) -> StrategyDecision:
        return StrategyDecision(
            choice=choice,
            wcoj_cost=float(wcoj_cost),
            binary_cost=float(binary_cost),
            input_rows=input_rows,
            cyclic=cyclic,
            eligible=eligible,
            reason=reason,
            est_rows=est_rows,
            corrected=corrected,
        )

    if mode not in JOIN_STRATEGIES:
        raise ValueError(
            f"unknown join_strategy {mode!r} (expected one of {JOIN_STRATEGIES})"
        )
    if not eligible:
        return pick("wcoj", ineligible_reason or "fragment ineligible for binary")
    if mode == "wcoj":
        return pick("wcoj", "join_strategy=wcoj pins the generic join")
    if mode == "binary":
        return pick("binary", "join_strategy=binary pins pairwise hash joins")
    # auto
    if input_rows < MIN_BINARY_INPUT_ROWS:
        return pick(
            "wcoj",
            f"small input ({int(input_rows)} rows "
            f"< {MIN_BINARY_INPUT_ROWS}): hash-join setup dominates",
        )
    factor = CYCLIC_BINARY_COST_FACTOR if cyclic else BINARY_COST_FACTOR
    if binary_cost <= factor * input_rows:
        shape = "cyclic-but-selective" if cyclic else "acyclic"
        return pick(
            "binary",
            f"{shape} fragment: estimated pairwise intermediates "
            f"({binary_cost:.0f}) fit within {factor:g}x the input "
            f"({input_rows:.0f})",
        )
    if cyclic:
        return pick("wcoj", "cyclic fragment: the AGM bound pays off")
    return pick(
        "wcoj",
        f"pairwise intermediates blow up ({binary_cost:.0f} rows "
        f"> {BINARY_COST_FACTOR:g}x input {input_rows:.0f})",
    )
