"""Intersection cost estimation (Section V-A).

The generic WCOJ algorithm's bottleneck is set intersection, and the
cost of an intersection depends on the operand layouts: Figure 5a shows
bs∩bs is ~50x faster than uint∩uint at equal cardinality.  LevelHeaded
therefore assigns

    icost(bs ∩ bs) = 1,  icost(bs ∩ uint) = 10,  icost(uint ∩ uint) = 50.

Tracking the layout of every set is too expensive at compile time, so
Observation 5.1 guesses: the set at a trie's *first* level is likely a
bitset (it holds a whole column) while deeper levels are likely uints.
Multi-way intersections sum pairwise icosts with bitsets processed
first; completely dense relations need no intersection at all and get
icost 0.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..sets.layout import Layout

ICOST = {
    (Layout.BITSET, Layout.BITSET): 1,
    (Layout.BITSET, Layout.UINT): 10,
    (Layout.UINT, Layout.BITSET): 10,
    (Layout.UINT, Layout.UINT): 50,
}


def pairwise_icost(a: Layout, b: Layout) -> int:
    """icost of one pairwise intersection."""
    return ICOST[(a, b)]


def result_layout(a: Layout, b: Layout) -> Layout:
    """Layout of an intersection result: uint unless both sides are bs."""
    if a is Layout.BITSET and b is Layout.BITSET:
        return Layout.BITSET
    return Layout.UINT


def multiway_icost(layouts: Sequence[Layout]) -> int:
    """icost of intersecting N sets, bitsets first (Section V-A1).

    Fewer than two operands need no intersection and cost 0.
    """
    ordered = sorted(layouts, key=lambda l: l is not Layout.BITSET)
    if len(ordered) < 2:
        return 0
    total = 0
    current = ordered[0]
    for layout in ordered[1:]:
        total += pairwise_icost(current, layout)
        current = result_layout(current, layout)
    return total


def guess_layouts(
    vertex: str,
    order_so_far: Sequence[str],
    edges: Iterable,
) -> List[Layout]:
    """Observation 5.1 layout guesses for the edges participating at ``vertex``.

    ``edges`` are hyperedges containing ``vertex``; an edge whose trie
    was already opened by an earlier vertex in the order sits below its
    first level (uint), otherwise this is its first level (bs).  Fully
    dense edges are excluded entirely -- intersecting with a complete
    range is a no-op, which is how dense LA queries reach icost 0.
    """
    earlier = set(order_so_far)
    layouts: List[Layout] = []
    for edge in edges:
        if vertex not in edge.vertex_set:
            continue
        if edge.fully_dense:
            continue
        opened = bool(earlier & edge.vertex_set)
        layouts.append(Layout.UINT if opened else Layout.BITSET)
    return layouts


def vertex_icost(vertex: str, order_so_far: Sequence[str], edges: Iterable) -> int:
    """icost assigned to ``vertex`` at its position in an attribute order."""
    return multiway_icost(guess_layouts(vertex, order_so_far, edges))
