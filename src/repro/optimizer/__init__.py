"""The cost-based WCOJ optimizer (Section V).

The first cost-based optimizer for generic worst-case optimal join
attribute ordering: per-vertex intersection costs (icost, from the
layout guesses of Observation 5.1) weighted by relation cardinality
scores (Observation 5.2's heaviest-first rule), with the Section V-A2
relaxation of the materialized-attributes-first constraint.
"""

from .attribute_order import OrderDecision, candidate_orders, choose_order, order_cost
from .feedback import (
    DRIFT_CONSECUTIVE_RUNS,
    Q_ERROR_DRIFT_THRESHOLD,
    NodeFeedback,
    PlanFeedback,
    QueryFeedback,
    measure,
    q_error,
)
from .strategy import (
    BINARY_COST_FACTOR,
    JOIN_STRATEGIES,
    MIN_BINARY_INPUT_ROWS,
    STRATEGY_SCHEMA_VERSION,
    EdgeStats,
    StrategyDecision,
    decide_strategy,
    estimate_output_rows,
    is_acyclic,
    pairwise_cost,
    pairwise_plan,
)
from .icost import (
    ICOST,
    guess_layouts,
    multiway_icost,
    pairwise_icost,
    result_layout,
    vertex_icost,
)
from .weights import relation_scores, vertex_weight, vertex_weights

__all__ = [
    "ICOST",
    "pairwise_icost",
    "multiway_icost",
    "result_layout",
    "guess_layouts",
    "vertex_icost",
    "relation_scores",
    "vertex_weight",
    "vertex_weights",
    "OrderDecision",
    "candidate_orders",
    "choose_order",
    "order_cost",
    "BINARY_COST_FACTOR",
    "JOIN_STRATEGIES",
    "MIN_BINARY_INPUT_ROWS",
    "STRATEGY_SCHEMA_VERSION",
    "EdgeStats",
    "StrategyDecision",
    "decide_strategy",
    "estimate_output_rows",
    "is_acyclic",
    "pairwise_cost",
    "pairwise_plan",
    "DRIFT_CONSECUTIVE_RUNS",
    "Q_ERROR_DRIFT_THRESHOLD",
    "NodeFeedback",
    "PlanFeedback",
    "QueryFeedback",
    "measure",
    "q_error",
]
