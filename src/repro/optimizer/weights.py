"""Cardinality scores and vertex weights (Section V-B).

Observation 5.2 -- the opposite of pairwise-join wisdom -- says the
*highest* cardinality attributes should be processed first: they then
partake in fewer intersections and sit at upper trie levels where sets
are dense bitsets.  The optimizer encodes this by weighting each vertex
with a relation cardinality score, so that placing heavy vertices early
(where Observation 5.1 predicts cheap bitset intersections) minimizes
``sum icost(v) * weight(v)``.

Each relation scores ``ceil(100 * |r| / |r_heavy|)``.  A vertex takes
the *minimum* score among its relations (an intersection is at most as
large as its smallest operand) -- unless one of its relations carries a
high-selectivity equality constraint, in which case it takes the
*maximum* (that relation's size is the work the selection can
eliminate, so the vertex should come early).
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..storage.stats import cardinality_score
from ..query.hypergraph import Hyperedge


def relation_scores(edges: Iterable[Hyperedge]) -> Dict[str, int]:
    """Score every relation in the query against the heaviest one."""
    edge_list = list(edges)
    if not edge_list:
        return {}
    heaviest = max(edge.cardinality for edge in edge_list)
    if heaviest <= 0:
        return {edge.alias: 0 for edge in edge_list}
    return {
        edge.alias: cardinality_score(edge.cardinality, heaviest) for edge in edge_list
    }


def vertex_weight(
    vertex: str,
    edges: Iterable[Hyperedge],
    scores: Dict[str, int],
) -> int:
    """The weight of one vertex (Example 5.3's min/max rule)."""
    participating = [e for e in edges if vertex in e.vertex_set]
    if not participating:
        return 0
    vertex_scores = [scores[e.alias] for e in participating]
    if any(e.has_equality_selection for e in participating):
        return max(vertex_scores)
    return min(vertex_scores)


def vertex_weights(hypergraph_edges: Iterable[Hyperedge]) -> Dict[str, int]:
    """Weights for every vertex touched by ``hypergraph_edges``."""
    edge_list = list(hypergraph_edges)
    scores = relation_scores(edge_list)
    vertices = sorted({v for e in edge_list for v in e.vertices})
    return {v: vertex_weight(v, edge_list, scores) for v in vertices}
