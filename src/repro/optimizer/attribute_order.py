"""Cost-based attribute ordering for the generic WCOJ algorithm (Section V).

For each GHD node the optimizer enumerates the attribute orders that
satisfy LevelHeaded's ordering rules --

* materialized (output) attributes come before projected-away ones,
* materialized attributes respect one global ordering across nodes,
* plus the Section V-A2 *relaxation*: the final materialized attribute
  may be swapped behind the last projected-away attribute (introducing
  a 1-attribute union) when that lowers the icost --

and picks the order minimizing ``sum_i icost(v_i) * weight(v_i)``.
This is the optimization that turns sparse matrix multiplication's
out-of-memory ``[i,j,k]`` order into MKL's ``[i,k,j]`` loop order
(Figure 5b) and is worth up to 8815x on TPC-H (Table III).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PlanningError
from ..query.hypergraph import Hyperedge
from .icost import vertex_icost
from .weights import vertex_weights


@dataclass
class OrderDecision:
    """A chosen attribute order with its cost breakdown."""

    order: Tuple[str, ...]
    cost: int
    #: True when the Section V-A2 relaxation fired: the penultimate
    #: attribute is projected away and the last is materialized, so the
    #: executor must run a 1-attribute union on the final attribute.
    relaxed: bool
    per_vertex: Dict[str, Tuple[int, int]] = field(default_factory=dict)  # v -> (icost, weight)

    def describe(self) -> str:
        parts = [
            f"{v}(icost={c}, w={w})" for v, (c, w) in self.per_vertex.items()
        ]
        suffix = " [relaxed]" if self.relaxed else ""
        return f"[{', '.join(self.order)}] cost={self.cost}{suffix}"


def order_cost(
    order: Sequence[str],
    edges: Iterable[Hyperedge],
    weights: Optional[Dict[str, int]] = None,
) -> Tuple[int, Dict[str, Tuple[int, int]]]:
    """cost = sum icost(v_i) * weight(v_i) for one attribute order."""
    edge_list = list(edges)
    if weights is None:
        weights = vertex_weights(edge_list)
    total = 0
    breakdown: Dict[str, Tuple[int, int]] = {}
    for position, vertex in enumerate(order):
        icost = vertex_icost(vertex, order[:position], edge_list)
        weight = weights.get(vertex, 0)
        breakdown[vertex] = (icost, weight)
        total += icost * weight
    return total, breakdown


def candidate_orders(
    materialized: Sequence[str],
    aggregated: Sequence[str],
    fixed_materialized_order: Optional[Sequence[str]] = None,
    allow_relaxation: bool = True,
) -> List[Tuple[Tuple[str, ...], bool]]:
    """All orders satisfying the rules; returns (order, relaxed) pairs.

    ``fixed_materialized_order`` constrains the *relative* order of
    materialized attributes (the global ordering rule): when given,
    only the single permutation consistent with it is considered.
    """
    if fixed_materialized_order is not None:
        rank = {v: i for i, v in enumerate(fixed_materialized_order)}
        mat_perms = [tuple(sorted(materialized, key=lambda v: rank[v]))]
    else:
        mat_perms = [tuple(p) for p in itertools.permutations(materialized)]
    agg_perms = [tuple(p) for p in itertools.permutations(aggregated)]

    out: List[Tuple[Tuple[str, ...], bool]] = []
    seen = set()
    for mat in mat_perms:
        for agg in agg_perms:
            base = mat + agg
            if base not in seen:
                seen.add(base)
                out.append((base, False))
            # Relaxation: base orders ending [materialized, aggregated]
            # may swap the final pair (the aggregated attribute then
            # precedes the last materialized one).
            if allow_relaxation and len(agg) == 1 and len(mat) >= 1:
                relaxed = mat[:-1] + (agg[0], mat[-1])
                if relaxed not in seen:
                    seen.add(relaxed)
                    out.append((relaxed, True))
    return out


def choose_order(
    vertices: Sequence[str],
    materialized: Sequence[str],
    edges: Iterable[Hyperedge],
    fixed_materialized_order: Optional[Sequence[str]] = None,
    allow_relaxation: bool = True,
    pick_worst: bool = False,
) -> OrderDecision:
    """Choose the attribute order for one GHD node.

    ``pick_worst`` inverts the objective (used by the Table III
    '-Attr. Ord.' ablation to model an uncosted EmptyHeaded-style
    choice); relaxed orders are excluded there, as EmptyHeaded never
    relaxes the materialized-first rule.
    """
    vertex_set = set(vertices)
    materialized = [v for v in materialized if v in vertex_set]
    aggregated = [v for v in vertices if v not in set(materialized)]
    edge_list = [e for e in edges if set(e.vertices) & vertex_set]
    weights = vertex_weights(edge_list)

    best: Optional[OrderDecision] = None
    for order, relaxed in candidate_orders(
        materialized,
        aggregated,
        fixed_materialized_order=fixed_materialized_order,
        allow_relaxation=allow_relaxation and not pick_worst,
    ):
        cost, breakdown = order_cost(order, edge_list, weights)
        decision = OrderDecision(order, cost, relaxed, breakdown)
        if best is None:
            best = decision
            continue
        better = decision.cost < best.cost or (
            decision.cost == best.cost and decision.order < best.order
        )
        if pick_worst:
            better = decision.cost > best.cost or (
                decision.cost == best.cost and decision.order > best.order
            )
        if better:
            best = decision
    if best is None:
        raise PlanningError("no attribute order candidates (empty vertex set?)")
    return best
