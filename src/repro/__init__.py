"""LevelHeaded reproduction: a unified WCOJ engine for BI and LA querying.

Reproduces *LevelHeaded: A Unified Engine for Business Intelligence and
Linear Algebra Querying* (Aberger, Lamb, Olukotun, Ré -- ICDE 2018).
The engine executes both SQL-style business-intelligence queries and
linear-algebra kernels through a single worst-case optimal join
architecture; see DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced tables and figures.

Quickstart::

    import repro
    from repro import Schema, key, annotation

    engine = repro.connect()
    engine.create_table(
        Schema("matrix", [key("i", domain="dim"), key("j", domain="dim"),
                          annotation("v")]),
        i=[0, 0, 1], j=[0, 2, 0], v=[0.2, 0.4, 0.1],
    )
    result = engine.query(
        "SELECT m1.i, m2.j, sum(m1.v * m2.v) AS v FROM matrix m1, matrix m2 "
        "WHERE m1.j = m2.i GROUP BY m1.i, m2.j"
    )

    # prepared statements + parameter placeholders
    stmt = engine.prepare(
        "SELECT sum(m.v) AS total FROM matrix m WHERE m.v > ?"
    )
    stmt.execute([0.15]).single_value()

Repeated ``engine.query()`` calls transparently reuse compiled plans
through a versioned plan cache; ``engine.explain(sql, analyze=True)``
shows the cache outcome and the executor's work counters.
``engine.query(sql, trace=True)`` attaches a lifecycle span tree as
``result.trace``, and ``engine.metrics`` accumulates serving metrics
(latency percentiles, cache hit rates) across the engine's lifetime.
"""

from .core.engine import LevelHeadedEngine
from .core.governor import CancelToken, Governor, QueryHandle, retry_admission
from .core.plan_cache import PlanCache
from .core.prepared import PreparedStatement
from .core.result import ResultTable
from .errors import (
    AdmissionError,
    BindError,
    ExecutionError,
    OutOfMemoryBudgetError,
    ParseError,
    PlanningError,
    QueryCancelledError,
    QueryKilledError,
    QueryTimeoutError,
    ReproError,
    RetryableAdmissionError,
    SchemaError,
    UnsupportedOnTopology,
    UnsupportedQueryError,
)
from .obs import MetricsRegistry, Span, Tracer
from .storage.catalog import Catalog
from .storage.schema import AttrType, Attribute, Kind, Schema, annotation, key
from .storage.table import Table
from .xcution.plan import EngineConfig

__version__ = "1.0.0"

#: lazily-imported serving layer (keeps ``import repro`` light; the
#: server/client modules pull in socketserver/http machinery).
_LAZY_EXPORTS = {
    "ReproServer": ("repro.server", "ReproServer"),
    "MetricsHTTPServer": ("repro.server", "MetricsHTTPServer"),
    "ReproClient": ("repro.client", "ReproClient"),
    "RemoteStatement": ("repro.client", "RemoteStatement"),
    "ShardCoordinator": ("repro.shard", "ShardCoordinator"),
    "QuerySurface": ("repro.surface", "QuerySurface"),
    "parse_dsn": ("repro.surface", "parse_dsn"),
}


def __getattr__(name):
    entry = _LAZY_EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(entry[0])
    value = getattr(module, entry[1])
    globals()[name] = value
    return value


def __dir__():
    return sorted(list(globals()) + list(_LAZY_EXPORTS))


def connect(
    dsn=None,
    catalog=None,
    plan_cache_capacity: int = 64,
    timeout_ms=None,
    max_concurrency=None,
    global_memory_budget=None,
    governor=None,
    join_strategy=None,
    config=None,
    approx=None,
):
    """The library's front door: one :class:`QuerySurface` per topology.

    ``dsn`` selects where queries run; every return value answers the
    same ``query``/``prepare``/``explain``/``submit``/``debug``/
    ``close`` surface (:class:`repro.surface.QuerySurface`)::

        repro.connect()                              # in-process engine
        repro.connect("tcp://10.0.0.5:7687")         # remote server
        repro.connect("shard://local?workers=4")     # 4-process shard fleet

    For backward compatibility ``dsn`` also accepts an
    :class:`EngineConfig` positionally (the pre-DSN signature); the
    ``config=`` keyword is the explicit spelling.

    Local and shard surfaces take the full engine setup: ``config`` is
    an optional :class:`EngineConfig` of optimizer toggles, ``catalog``
    lets several engines share registered tables, and ``join_strategy``
    (``"auto"`` | ``"wcoj"`` | ``"binary"``) picks the per-node
    execution engine (overriding both the ``REPRO_JOIN_STRATEGY``
    environment default and ``config``'s own setting).  ``timeout_ms``
    sets a default deadline for every query; ``max_concurrency`` and
    ``global_memory_budget`` (bytes) seed a
    :class:`~repro.core.governor.Governor` gating admission (pass an
    existing ``governor`` instead to share one).  On a shard surface
    the governor lives at the coordinator -- admission happens once,
    never per worker -- and ``shard://...?partition=DOMAIN`` overrides
    the automatic partition-domain choice.

    The tcp surface connects to an already-running
    :class:`~repro.server.ReproServer`; only ``timeout_ms`` applies
    (it becomes the client's default deadline).  Engine-construction
    options raise :class:`~repro.errors.UnsupportedOnTopology` there:
    the server owns its catalog and governor.

    ``approx`` (or a ``?approx=`` DSN parameter; the keyword wins when
    both appear) sets the surface's default approximate-query policy --
    ``"never"`` / ``"allow"`` / ``"force"`` (see :mod:`repro.approx`).
    On a local surface it becomes ``EngineConfig.approx``; on tcp it
    becomes the client's session default, sent with every query; shard
    surfaces raise :class:`~repro.errors.UnsupportedOnTopology` because
    samples are not co-partitioned across workers.
    """
    from .surface import parse_dsn

    if isinstance(dsn, EngineConfig):
        # pre-DSN signature: connect(config, catalog=...)
        if config is not None:
            raise ReproError("pass config either positionally or as config=, not both")
        dsn, config = None, dsn
    scheme, options = parse_dsn(dsn)

    if scheme == "tcp":
        from .errors import UnsupportedOnTopology

        refused = {
            "catalog": catalog,
            "config": config,
            "max_concurrency": max_concurrency,
            "global_memory_budget": global_memory_budget,
            "governor": governor,
            "join_strategy": join_strategy,
        }
        for option, value in refused.items():
            if value is not None:
                raise UnsupportedOnTopology(
                    f"{option}= does not apply to a tcp surface: the remote "
                    f"server owns its catalog, config, and governor",
                    option=option,
                    topology="tcp",
                )
        from .client import ReproClient

        client = ReproClient(
            options["host"], options["port"], default_timeout_ms=timeout_ms
        )
        policy = approx if approx is not None else options.get("approx")
        if policy is not None:
            from .approx import normalize_policy

            client.default_approx = normalize_policy(policy, default=None)
        return client

    if join_strategy is not None:
        from dataclasses import replace

        base = config if config is not None else EngineConfig()
        config = replace(base, join_strategy=join_strategy)
    policy = approx if approx is not None else options.pop("approx", None)
    if policy is not None:
        if scheme == "shard":
            from .errors import UnsupportedOnTopology

            raise UnsupportedOnTopology(
                "approx= does not apply to a shard surface: catalog "
                "samples are not co-partitioned across workers",
                option="approx",
                topology="shard",
            )
        from dataclasses import replace

        from .approx import normalize_policy

        base = config if config is not None else EngineConfig()
        config = replace(base, approx=normalize_policy(policy, default=base.approx))
    if governor is None and (
        max_concurrency is not None or global_memory_budget is not None
    ):
        governor = Governor(
            max_concurrency=max_concurrency,
            global_memory_budget_bytes=global_memory_budget,
        )
    engine = LevelHeadedEngine(
        catalog=catalog,
        config=config,
        plan_cache_capacity=plan_cache_capacity,
        governor=governor,
        default_timeout_ms=timeout_ms,
    )
    if scheme == "local":
        return engine
    from .shard import ShardCoordinator

    return ShardCoordinator(
        engine,
        workers=int(options.get("workers", 2)),
        partition=options.get("partition"),
        start_method=options.get("start_method"),
    )


__all__ = [
    "connect",
    "LevelHeadedEngine",
    "PreparedStatement",
    "PlanCache",
    "ResultTable",
    "EngineConfig",
    "Governor",
    "CancelToken",
    "QueryHandle",
    "retry_admission",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Catalog",
    "Table",
    "Schema",
    "Attribute",
    "AttrType",
    "Kind",
    "key",
    "annotation",
    "ReproError",
    "ParseError",
    "BindError",
    "SchemaError",
    "UnsupportedQueryError",
    "PlanningError",
    "ExecutionError",
    "OutOfMemoryBudgetError",
    "QueryKilledError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "AdmissionError",
    "RetryableAdmissionError",
    "UnsupportedOnTopology",
    "ShardCoordinator",
    "QuerySurface",
    "parse_dsn",
    "ReproServer",
    "MetricsHTTPServer",
    "ReproClient",
    "RemoteStatement",
    "__version__",
]
