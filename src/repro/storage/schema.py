"""Schemas: the key/annotation data model (Section III-A).

LevelHeaded classifies every attribute as either a *key* or an
*annotation* via a user-defined schema, much like Google Mesa's
key/value-space split.  Keys are the only attributes that may partake
in joins (they become trie levels and hypergraph vertices); annotations
are everything else and are the only attributes that may be aggregated.
Both support filter predicates and GROUP BY.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError


class AttrType(enum.Enum):
    """Supported attribute types (Section III-A)."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    STRING = "string"
    DATE = "date"

    @property
    def numpy_dtype(self):
        return {
            AttrType.INT: np.int32,
            AttrType.LONG: np.int64,
            AttrType.FLOAT: np.float32,
            AttrType.DOUBLE: np.float64,
            AttrType.STRING: np.str_,
            AttrType.DATE: np.int64,  # proleptic-Gregorian ordinal
        }[self]

    @property
    def is_numeric(self) -> bool:
        return self in (AttrType.INT, AttrType.LONG, AttrType.FLOAT, AttrType.DOUBLE)


#: Types a key attribute may have: keys are dictionary-encoded integers.
KEY_TYPES = (AttrType.INT, AttrType.LONG)


class Kind(enum.Enum):
    KEY = "key"
    ANNOTATION = "annotation"


@dataclass(frozen=True)
class Attribute:
    """One schema attribute.

    ``domain`` names the shared key domain: attributes with the same
    domain (e.g. ``c_custkey`` and ``o_custkey`` both in ``custkey``)
    share one order-preserving dictionary so their encoded values are
    join-compatible.  It defaults to the attribute name and is only
    meaningful for keys.
    """

    name: str
    type: AttrType
    kind: Kind
    domain: Optional[str] = None

    def __post_init__(self):
        if self.kind is Kind.KEY and self.type not in KEY_TYPES:
            raise SchemaError(
                f"key attribute '{self.name}' must be int/long, got {self.type.value}"
            )

    @property
    def domain_name(self) -> str:
        return self.domain if self.domain is not None else self.name

    @property
    def is_key(self) -> bool:
        return self.kind is Kind.KEY


def key(name: str, domain: Optional[str] = None, type: AttrType = AttrType.LONG) -> Attribute:
    """Shorthand for declaring a key attribute."""
    return Attribute(name, type, Kind.KEY, domain=domain)


def annotation(name: str, type: AttrType = AttrType.DOUBLE) -> Attribute:
    """Shorthand for declaring an annotation attribute."""
    return Attribute(name, type, Kind.ANNOTATION)


@dataclass
class Schema:
    """An ordered set of attributes for one relation."""

    name: str
    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self):
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute '{attr.name}' in schema '{self.name}'")
            seen.add(attr.name)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in self.attributes}

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema '{self.name}' has no attribute '{name}'") from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    @property
    def key_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.is_key)

    @property
    def annotation_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes if not a.is_key)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)


def parse_date(text: str) -> int:
    """Parse ``YYYY-MM-DD`` into the stored ordinal representation."""
    return datetime.date.fromisoformat(text.strip()).toordinal()


def format_date(ordinal: int) -> str:
    """Render a stored date ordinal back to ``YYYY-MM-DD``."""
    return datetime.date.fromordinal(int(ordinal)).isoformat()


def coerce_column(attr: Attribute, values: Sequence) -> np.ndarray:
    """Coerce raw ingested values to the attribute's storage dtype."""
    if attr.type is AttrType.STRING:
        return np.asarray(values, dtype=np.str_)
    if attr.type is AttrType.DATE:
        arr = np.asarray(values)
        if arr.dtype.kind in ("U", "S", "O"):
            return np.array([parse_date(str(v)) for v in values], dtype=np.int64)
        return arr.astype(np.int64)
    arr = np.asarray(values)
    target = attr.type.numpy_dtype
    try:
        return arr.astype(target)
    except (ValueError, TypeError) as exc:
        raise SchemaError(f"cannot coerce column '{attr.name}' to {attr.type.value}") from exc
