"""Table statistics summaries for the optimizer and EXPLAIN output."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .table import Table


@dataclass(frozen=True)
class TableStats:
    """Cardinality statistics for one table.

    The cost-based optimizer only needs relation cardinalities
    (Section V-B's scores) plus key-uniqueness for the translator's
    multiplicity rules; distinct counts are included for EXPLAIN.
    """

    name: str
    num_rows: int
    key_distinct: Dict[Tuple[str, ...], int]


def collect_stats(table: Table, key_groups: Sequence[Sequence[str]] = ()) -> TableStats:
    """Summarize ``table``, optionally pre-computing distinct counts."""
    distinct = {tuple(g): table.distinct_count(tuple(g)) for g in key_groups}
    return TableStats(table.name, table.num_rows, distinct)


def cardinality_score(table_rows: int, heaviest_rows: int) -> int:
    """The paper's relation score: ceil(|r| / |r_heavy| * 100).

    Scores are relative to the highest-cardinality relation in the
    query (Section V-B) and feed the attribute weights.
    """
    if heaviest_rows <= 0:
        return 0
    return -(-table_rows * 100 // heaviest_rows)  # ceiling division
