"""Ingestion of structured data from delimited files (Section III).

LevelHeaded ingests delimited files from disk; TPC-H's ``dbgen`` emits
``|``-separated files, which is the default here.  Loading is schema
driven: each column is parsed straight into its storage dtype.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import SchemaError
from .schema import AttrType, Schema, format_date, parse_date
from .table import Table


def load_table(path: str, schema: Schema, delimiter: str = "|") -> Table:
    """Load a delimited file into a :class:`Table` using ``schema``.

    Trailing delimiters (dbgen emits them) are tolerated.  Every row
    must have one field per schema attribute.
    """
    if not os.path.exists(path):
        raise SchemaError(f"no such file: {path}")
    n_attrs = len(schema.attributes)
    fields: list[list[str]] = [[] for _ in range(n_attrs)]
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split(delimiter)
            if parts and parts[-1] == "":
                parts = parts[:-1]
            if len(parts) != n_attrs:
                raise SchemaError(
                    f"{path}:{line_no}: expected {n_attrs} fields, got {len(parts)}"
                )
            for i, part in enumerate(parts):
                fields[i].append(part)

    columns = {}
    for attr, raw in zip(schema.attributes, fields):
        columns[attr.name] = _parse_column(attr, raw, path)
    return Table(schema, columns)


def _parse_column(attr, raw, path):
    try:
        if attr.type is AttrType.STRING:
            return np.asarray(raw, dtype=np.str_)
        if attr.type is AttrType.DATE:
            return np.array([parse_date(v) for v in raw], dtype=np.int64)
        return np.asarray(raw, dtype=attr.type.numpy_dtype)
    except ValueError as exc:
        raise SchemaError(f"{path}: cannot parse column '{attr.name}': {exc}") from exc


def write_table(table: Table, path: str, delimiter: str = "|") -> None:
    """Write ``table`` back to a delimited file (dbgen-compatible)."""
    attrs = table.schema.attributes
    columns = [table.columns[a.name] for a in attrs]
    with open(path, "w", encoding="utf-8") as handle:
        for row in range(table.num_rows):
            parts = []
            for attr, col in zip(attrs, columns):
                value = col[row]
                if attr.type is AttrType.DATE:
                    parts.append(format_date(int(value)))
                elif attr.type in (AttrType.FLOAT, AttrType.DOUBLE):
                    parts.append(repr(float(value)))
                else:
                    parts.append(str(value))
            handle.write(delimiter.join(parts))
            handle.write(delimiter + "\n")


def load_dataframe(frame, schema: Optional[Schema] = None, name: str = "dataframe") -> Table:
    """Ingest a Pandas-style dataframe (``.columns`` + ``__getitem__``).

    The paper's Python front-end accepts Pandas dataframes; this
    reproduction accepts any mapping-of-columns object without
    depending on pandas itself.  When ``schema`` is omitted, integer
    columns become keys and the rest annotations.
    """
    from .schema import Attribute, Kind, coerce_column

    column_names = list(getattr(frame, "columns", frame.keys()))
    if schema is None:
        attributes = []
        for col_name in column_names:
            arr = np.asarray(frame[col_name])
            if np.issubdtype(arr.dtype, np.integer):
                attributes.append(Attribute(col_name, AttrType.LONG, Kind.KEY))
            elif np.issubdtype(arr.dtype, np.floating):
                attributes.append(Attribute(col_name, AttrType.DOUBLE, Kind.ANNOTATION))
            else:
                attributes.append(Attribute(col_name, AttrType.STRING, Kind.ANNOTATION))
        schema = Schema(name, attributes)
    columns = {
        attr.name: coerce_column(attr, np.asarray(frame[attr.name]))
        for attr in schema.attributes
    }
    return Table(schema, columns)
