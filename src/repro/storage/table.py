"""In-memory tables and per-query trie materialization.

A :class:`Table` holds raw columns plus lazily built tries.  Tries are
built *per key order and per annotation subset* -- this is the physical
side of attribute elimination (Section IV-A): a query only ever loads
the key levels and annotation buffers it touches.  Unfiltered tries are
cached (index construction is excluded from query timing, matching the
paper's measurement protocol); filtered builds are part of query cost,
mirroring the selections inside the generated code of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from ..sets.layout import Layout
from ..trie import AnnotationSpec, Dictionary, Trie, build_trie
from .schema import AttrType, Kind, Schema


@dataclass(frozen=True)
class AnnotationRequest:
    """A request for one annotation buffer on a trie.

    ``values`` may be a plain column (identified by ``source`` for cache
    keying) or a computed expression array (``source`` is the expression
    text).  ``level`` counts key attributes the annotation depends on.
    """

    name: str
    source: str
    level: int
    combine: str = "sum"
    values: Optional[np.ndarray] = None
    dictionary: Optional[Dictionary] = None

    def cache_token(self) -> Tuple:
        return (self.name, self.source, self.level, self.combine)


class Table:
    """A relation with raw columnar storage and cached trie indexes."""

    def __init__(self, schema: Schema, columns: Dict[str, np.ndarray]):
        missing = [a.name for a in schema.attributes if a.name not in columns]
        if missing:
            raise SchemaError(f"table '{schema.name}' missing columns: {missing}")
        lengths = {c.shape[0] for c in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"table '{schema.name}' has ragged columns")
        self.schema = schema
        self.columns = {a.name: columns[a.name] for a in schema.attributes}
        self.num_rows = int(next(iter(lengths))) if lengths else 0
        self.catalog = None  # set by Catalog.register
        self._trie_cache: Dict[Tuple, Trie] = {}
        self._cache_domain_versions: Dict[Tuple, Tuple[int, ...]] = {}
        self._distinct_cache: Dict[Tuple[str, ...], int] = {}
        self._string_dicts: Dict[str, Dictionary] = {}

    @classmethod
    def from_columns(cls, schema: Schema, **columns) -> "Table":
        coerced = {}
        from .schema import coerce_column

        for attr in schema.attributes:
            if attr.name not in columns:
                raise SchemaError(f"missing column '{attr.name}'")
            coerced[attr.name] = coerce_column(attr, columns[attr.name])
        return cls(schema, coerced)

    @property
    def name(self) -> str:
        return self.schema.name

    def column(self, name: str) -> np.ndarray:
        self.schema.attribute(name)  # raises on unknown names
        return self.columns[name]

    # -- statistics ---------------------------------------------------------

    def distinct_count(self, attrs: Sequence[str]) -> int:
        """Number of distinct value combinations over ``attrs``."""
        token = tuple(attrs)
        cached = self._distinct_cache.get(token)
        if cached is not None:
            return cached
        if self.num_rows == 0:
            count = 0
        elif len(token) == 1:
            count = int(np.unique(self.columns[token[0]]).size)
        else:
            stacked = np.rec.fromarrays([self.columns[a] for a in token])
            count = int(np.unique(stacked).size)
        self._distinct_cache[token] = count
        return count

    def keys_are_unique(self, attrs: Sequence[str]) -> bool:
        """True when ``attrs`` functionally identify a row.

        The query translator uses this to decide whether a relation
        contributes tuple multiplicities to aggregates (duplicates on
        its in-query keys) -- see Section IV-A's annotation rules.
        """
        if self.num_rows == 0:
            return True
        return self.distinct_count(attrs) == self.num_rows

    # -- string/dictionary support -------------------------------------------

    def string_dictionary(self, column: str) -> Dictionary:
        """Order-preserving per-column dictionary for a string column."""
        d = self._string_dicts.get(column)
        if d is None:
            attr = self.schema.attribute(column)
            if attr.type is not AttrType.STRING:
                raise SchemaError(f"'{column}' is not a string column")
            d = Dictionary.build(self.columns[column])
            self._string_dicts[column] = d
        return d

    def _domain_dictionary(self, attr_name: str) -> Dictionary:
        attr = self.schema.attribute(attr_name)
        if self.catalog is not None:
            return self.catalog.domain_dictionary(attr.domain_name)
        # Standalone tables build private per-domain dictionaries over
        # every key column sharing the domain (i and j of a matrix must
        # encode identically).
        token = ("__domain__", attr.domain_name)
        d = self._string_dicts.get(token)  # reuse the dict cache map
        if d is None:
            domain_columns = [
                self.columns[a.name]
                for a in self.schema.attributes
                if a.is_key and a.domain_name == attr.domain_name
            ]
            d = Dictionary.build(np.concatenate(domain_columns))
            self._string_dicts[token] = d
        return d

    def _domain_version(self, attr_name: str) -> int:
        attr = self.schema.attribute(attr_name)
        if self.catalog is not None:
            return self.catalog.domain_version(attr.domain_name)
        return 0

    # -- tries ---------------------------------------------------------------

    def trie_inputs(
        self,
        key_order: Sequence[str],
        annotations: Sequence[AnnotationRequest] = (),
        row_mask: Optional[np.ndarray] = None,
    ):
        """Resolve encoded builder inputs for ``key_order`` + annotations.

        Returns ``(key_columns, domain_sizes, specs)``: dictionary-coded
        key columns (row-masked), per-level domain sizes, and
        :class:`AnnotationSpec` objects whose values are the raw
        per-row arrays (string columns dictionary-encoded).  Shared by
        trie construction and the hybrid executor's columnar frames, so
        both engines see byte-identical codes.
        """
        key_order = tuple(key_order)
        for attr_name in key_order:
            if self.schema.attribute(attr_name).kind is not Kind.KEY:
                raise SchemaError(f"'{attr_name}' is not a key attribute")
        key_columns = []
        domain_sizes = []
        for attr_name in key_order:
            col = self.columns[attr_name]
            if row_mask is not None:
                col = col[row_mask]
            dictionary = self._domain_dictionary(attr_name)
            key_columns.append(dictionary.encode(col))
            domain_sizes.append(dictionary.size)

        specs = []
        for req in annotations:
            values = req.values
            dictionary = req.dictionary
            if values is None:
                if req.combine != "count":
                    attr = self.schema.attribute(req.source)
                    values = self.columns[req.source]
                    if attr.type is AttrType.STRING:
                        dictionary = self.string_dictionary(req.source)
                        values = dictionary.encode(values)
            if values is not None and row_mask is not None:
                values = values[row_mask]
            specs.append(AnnotationSpec(req.name, values, req.level, req.combine, dictionary))
        return key_columns, domain_sizes, specs

    def get_trie(
        self,
        key_order: Sequence[str],
        annotations: Sequence[AnnotationRequest] = (),
        row_mask: Optional[np.ndarray] = None,
        force_layout: Optional[Layout] = None,
        lazy: bool = False,
    ) -> Trie:
        """Build (or fetch from cache) a trie over ``key_order``.

        Only the requested key attributes and annotation buffers are
        materialized (attribute elimination).  Builds with a
        ``row_mask`` (pushed-down selections) are never cached: their
        cost is part of query execution, as in the paper.  ``lazy=True``
        defers that cost further, to first probe: filtered builds
        return a prunable :class:`repro.trie.LazyTrie` that materializes
        only the sub-tries under probed roots.  Cacheable (unfiltered)
        builds ignore ``lazy`` -- they are shared across queries, built
        once, and excluded from query timing anyway.
        """
        key_order = tuple(key_order)
        cacheable = row_mask is None
        token = None
        if cacheable:
            for attr_name in key_order:
                if self.schema.attribute(attr_name).kind is not Kind.KEY:
                    raise SchemaError(f"'{attr_name}' is not a key attribute")
            token = (key_order, tuple(a.cache_token() for a in annotations), force_layout)
            versions = tuple(self._domain_version(a) for a in key_order)
            if token in self._trie_cache and self._cache_domain_versions.get(token) == versions:
                return self._trie_cache[token]

        key_columns, domain_sizes, specs = self.trie_inputs(
            key_order, annotations, row_mask
        )
        trie = build_trie(
            key_columns,
            key_order,
            specs,
            domain_sizes=domain_sizes,
            force_layout=force_layout,
            lazy=lazy and not cacheable,
            prunable=lazy and not cacheable,
        )
        if cacheable:
            self._trie_cache[token] = trie
            self._cache_domain_versions[token] = tuple(
                self._domain_version(a) for a in key_order
            )
        return trie

    def invalidate_tries(self) -> None:
        """Drop cached tries (called when a shared domain is re-coded)."""
        self._trie_cache.clear()
        self._cache_domain_versions.clear()

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.num_rows})"
