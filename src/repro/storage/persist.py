"""Catalog persistence: schemas + delimited files on disk.

LevelHeaded ingests structured data from delimited files (Section III);
this module round-trips whole catalogs the same way dbgen lays TPC-H
out: one ``<table>.tbl`` per relation plus a ``schema.json`` describing
attribute types, key/annotation kinds, and shared key domains.  Tries
are rebuilt lazily after loading (they are derived state).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..errors import SchemaError
from .catalog import Catalog
from .csv_loader import load_table, write_table
from .schema import Attribute, AttrType, Kind, Schema

SCHEMA_FILE = "schema.json"


def _attribute_to_dict(attribute: Attribute) -> Dict:
    out = {
        "name": attribute.name,
        "type": attribute.type.value,
        "kind": attribute.kind.value,
    }
    if attribute.domain is not None:
        out["domain"] = attribute.domain
    return out


def _attribute_from_dict(data: Dict) -> Attribute:
    try:
        return Attribute(
            name=data["name"],
            type=AttrType(data["type"]),
            kind=Kind(data["kind"]),
            domain=data.get("domain"),
        )
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"malformed attribute entry: {data}") from exc


#: public names for the schema <-> dict codec: the ``register_partition``
#: wire frame ships table schemas in exactly the persisted-catalog form.
attribute_to_dict = _attribute_to_dict
attribute_from_dict = _attribute_from_dict


def save_catalog(catalog: Catalog, directory: str, delimiter: str = "|") -> None:
    """Write every table of ``catalog`` to ``directory``.

    Produces ``schema.json`` plus one delimited ``<name>.tbl`` per
    table, in a format ``load_catalog`` (and dbgen-style tooling) can
    read back.
    """
    os.makedirs(directory, exist_ok=True)
    manifest: List[Dict] = []
    for name in sorted(catalog.names()):
        table = catalog.table(name)
        manifest.append(
            {
                "name": name,
                "attributes": [
                    _attribute_to_dict(a) for a in table.schema.attributes
                ],
            }
        )
        write_table(table, os.path.join(directory, f"{name}.tbl"), delimiter=delimiter)
    document: Dict = {"delimiter": delimiter, "tables": manifest}
    # materialized samples (repro.approx) persist as ordinary tables
    # above; this section re-ties them to their bases on load
    samples = [
        catalog.samples[name].as_dict() for name in sorted(catalog.samples)
    ]
    if samples:
        document["samples"] = samples
    with open(os.path.join(directory, SCHEMA_FILE), "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)


def load_catalog(directory: str) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog`."""
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"no {SCHEMA_FILE} in {directory}")
    with open(schema_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    delimiter = manifest.get("delimiter", "|")
    catalog = Catalog()
    sample_entries = manifest.get("samples", [])
    sample_names = {entry["name"] for entry in sample_entries}
    tables = {}
    for entry in manifest.get("tables", []):
        schema = Schema(
            entry["name"],
            [_attribute_from_dict(a) for a in entry["attributes"]],
        )
        path = os.path.join(directory, f"{entry['name']}.tbl")
        table = load_table(path, schema, delimiter=delimiter)
        tables[entry["name"]] = table
        if entry["name"] not in sample_names:
            catalog.register(table)
    # samples register after every base exists, re-tied to their bases
    for entry in sample_entries:
        table = tables.get(entry["name"])
        if table is None:
            raise SchemaError(
                f"sample '{entry['name']}' has no table entry in {SCHEMA_FILE}"
            )
        catalog.register_sample(
            table,
            base=entry["base"],
            fraction=entry["fraction"],
            kind=entry["kind"],
            strata=tuple(entry.get("strata", ())),
            seed=entry.get("seed", 0),
        )
    return catalog


def load_schemas(directory: str) -> Dict[str, Schema]:
    """Read just the schemas of a saved catalog (no data)."""
    schema_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(schema_path):
        raise SchemaError(f"no {SCHEMA_FILE} in {directory}")
    with open(schema_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    return {
        entry["name"]: Schema(
            entry["name"], [_attribute_from_dict(a) for a in entry["attributes"]]
        )
        for entry in manifest.get("tables", [])
    }
