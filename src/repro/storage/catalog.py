"""The catalog: registered tables and shared key-domain dictionaries.

Key attributes that join with one another must agree on their encoded
values, so the catalog maintains one order-preserving dictionary per
key *domain* (e.g. ``custkey``), extended as tables register.  Extending
a dictionary re-codes existing values, so registration bumps a domain
version and invalidates cached tries built against older codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import SchemaError
from ..trie import Dictionary
from .table import Table


@dataclass
class SampleMeta:
    """Bookkeeping for one materialized sample table.

    A sample is a first-class catalog table (queryable by name) plus
    this record tying it to its base table.  ``base_table`` holds the
    exact :class:`Table` object the sample was drawn from: a sample is
    *usable* only while the catalog still maps ``base`` to that object,
    so replacing the base table (``Catalog.replace``) orphans -- and
    drops -- every sample built over the old rows.
    """

    name: str
    base: str
    fraction: float
    kind: str  # uniform | stratified
    strata: Tuple[str, ...]
    seed: int
    rows: int
    base_table: Optional[Table] = field(default=None, repr=False, compare=False)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "base": self.base,
            "fraction": self.fraction,
            "kind": self.kind,
            "strata": list(self.strata),
            "seed": self.seed,
            "rows": self.rows,
        }


class Catalog:
    """A named collection of tables sharing key-domain dictionaries."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        self._domains: Dict[str, Dictionary] = {}
        self._versions: Dict[str, int] = {}
        #: bumped on every registration and every domain re-code; a cheap
        #: staleness pre-check for cached plans and prepared statements.
        self.version: int = 0
        #: materialized samples by sample-table name (``repro.approx``).
        self.samples: Dict[str, SampleMeta] = {}
        #: bumped whenever the sample set changes (create / drop /
        #: base replacement): approximate plan-cache keys embed this, so
        #: a newly created sample is picked up by the next approximate
        #: query without flushing any cached exact plans.
        self.samples_epoch: int = 0

    def register(self, table: Table) -> Table:
        """Register ``table``, extending the dictionaries of its key domains.

        Extending a dictionary re-codes existing values, so the affected
        ``domain_version`` bumps -- invalidating every cached trie *and*
        every cached :class:`~repro.xcution.plan.PhysicalPlan` built
        against the older codes (prepared statements and the engine's
        plan cache re-validate against these versions).
        """
        if table.name in self.tables:
            raise SchemaError(f"table '{table.name}' already registered")
        for attr in table.schema.attributes:
            if not attr.is_key:
                continue
            domain = attr.domain_name
            column = table.columns[attr.name]
            existing = self._domains.get(domain)
            if existing is None:
                self._domains[domain] = Dictionary.build(column)
                self._versions.setdefault(domain, 0)
            else:
                extended = existing.extend(column)
                if extended.size != existing.size:
                    self._domains[domain] = extended
                    self._versions[domain] = self._versions.get(domain, 0) + 1
                    self._invalidate_domain_users(domain)
        table.catalog = self
        self.tables[table.name] = table
        self.version += 1
        return table

    def replace(self, table: Table) -> Table:
        """Replace an already-registered table with new contents.

        The re-registration contract for mutable bases: the old table is
        dropped, every sample built over it is dropped with it (their
        rows describe data that no longer exists), the versions of every
        key domain the table participates in are bumped -- invalidating
        cached tries, plans, and prepared statements built against the
        old rows -- and the new table registers as usual.
        """
        old = self.tables.pop(table.name, None)
        if old is None:
            raise SchemaError(
                f"table '{table.name}' is not registered; use register()"
            )
        for meta in [m for m in self.samples.values() if m.base == table.name]:
            self.tables.pop(meta.name, None)
            del self.samples[meta.name]
            self.samples_epoch += 1
        # unconditionally bump every key domain the old table used: the
        # dictionary may not grow, but the rows behind the codes changed
        for attr in old.schema.attributes:
            if attr.is_key:
                domain = attr.domain_name
                self._versions[domain] = self._versions.get(domain, 0) + 1
                self._invalidate_domain_users(domain)
        self.version += 1
        return self.register(table)

    def register_sample(
        self,
        table: Table,
        *,
        base: str,
        fraction: float,
        kind: str,
        strata: Tuple[str, ...] = (),
        seed: int = 0,
    ) -> SampleMeta:
        """Register ``table`` as a materialized sample of ``base``."""
        base_table = self.table(base)  # raises on unknown base
        self.register(table)
        meta = SampleMeta(
            name=table.name,
            base=base,
            fraction=float(fraction),
            kind=kind,
            strata=tuple(strata),
            seed=int(seed),
            rows=table.num_rows,
            base_table=base_table,
        )
        self.samples[table.name] = meta
        self.samples_epoch += 1
        return meta

    def drop_sample(self, name: str) -> SampleMeta:
        """Drop one sample (table and metadata) by sample-table name."""
        meta = self.samples.pop(name, None)
        if meta is None:
            raise SchemaError(f"no sample named '{name}'")
        table = self.tables.pop(name, None)
        if table is not None:
            # invalidate cached approximate plans probing the dropped table
            for attr in table.schema.attributes:
                if attr.is_key:
                    domain = attr.domain_name
                    self._versions[domain] = self._versions.get(domain, 0) + 1
                    self._invalidate_domain_users(domain)
        self.version += 1
        self.samples_epoch += 1
        return meta

    def samples_of(self, base: str) -> List[SampleMeta]:
        """Usable samples of ``base``, in registration order.

        A sample is usable while the catalog still holds both the
        sample table *and* the exact base-table object it was drawn
        from; a replaced base orphans its samples.
        """
        return [
            meta
            for meta in self.samples.values()
            if meta.base == base
            and meta.name in self.tables
            and self.tables.get(base) is meta.base_table
        ]

    def sample_bytes(self) -> int:
        """Total bytes held by registered sample tables (the gauge)."""
        total = 0
        for meta in self.samples.values():
            table = self.tables.get(meta.name)
            if table is not None:
                total += sum(int(c.nbytes) for c in table.columns.values())
        return total

    def _invalidate_domain_users(self, domain: str) -> None:
        for table in self.tables.values():
            if any(
                a.is_key and a.domain_name == domain for a in table.schema.attributes
            ):
                table.invalidate_tries()

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named '{name}'") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def domain_dictionary(self, domain: str) -> Dictionary:
        d = self._domains.get(domain)
        if d is None:
            # A domain no registered key uses yet: empty dictionary.
            d = Dictionary.build(np.empty(0, dtype=np.int64))
            self._domains[domain] = d
            self._versions[domain] = 0
        return d

    def domain_size(self, domain: str) -> int:
        return self.domain_dictionary(domain).size

    def domain_version(self, domain: str) -> int:
        return self._versions.get(domain, 0)

    def versions_of(self, domains: Iterable[str]) -> Dict[str, int]:
        """Current versions of the given key domains (plan snapshots)."""
        return {domain: self.domain_version(domain) for domain in domains}

    def names(self) -> Iterable[str]:
        return self.tables.keys()

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __repr__(self) -> str:
        return f"Catalog(tables={sorted(self.tables)})"
