"""The catalog: registered tables and shared key-domain dictionaries.

Key attributes that join with one another must agree on their encoded
values, so the catalog maintains one order-preserving dictionary per
key *domain* (e.g. ``custkey``), extended as tables register.  Extending
a dictionary re-codes existing values, so registration bumps a domain
version and invalidates cached tries built against older codes.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..errors import SchemaError
from ..trie import Dictionary
from .table import Table


class Catalog:
    """A named collection of tables sharing key-domain dictionaries."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        self._domains: Dict[str, Dictionary] = {}
        self._versions: Dict[str, int] = {}
        #: bumped on every registration and every domain re-code; a cheap
        #: staleness pre-check for cached plans and prepared statements.
        self.version: int = 0

    def register(self, table: Table) -> Table:
        """Register ``table``, extending the dictionaries of its key domains.

        Extending a dictionary re-codes existing values, so the affected
        ``domain_version`` bumps -- invalidating every cached trie *and*
        every cached :class:`~repro.xcution.plan.PhysicalPlan` built
        against the older codes (prepared statements and the engine's
        plan cache re-validate against these versions).
        """
        if table.name in self.tables:
            raise SchemaError(f"table '{table.name}' already registered")
        for attr in table.schema.attributes:
            if not attr.is_key:
                continue
            domain = attr.domain_name
            column = table.columns[attr.name]
            existing = self._domains.get(domain)
            if existing is None:
                self._domains[domain] = Dictionary.build(column)
                self._versions.setdefault(domain, 0)
            else:
                extended = existing.extend(column)
                if extended.size != existing.size:
                    self._domains[domain] = extended
                    self._versions[domain] = self._versions.get(domain, 0) + 1
                    self._invalidate_domain_users(domain)
        table.catalog = self
        self.tables[table.name] = table
        self.version += 1
        return table

    def _invalidate_domain_users(self, domain: str) -> None:
        for table in self.tables.values():
            if any(
                a.is_key and a.domain_name == domain for a in table.schema.attributes
            ):
                table.invalidate_tries()

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named '{name}'") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def domain_dictionary(self, domain: str) -> Dictionary:
        d = self._domains.get(domain)
        if d is None:
            # A domain no registered key uses yet: empty dictionary.
            d = Dictionary.build(np.empty(0, dtype=np.int64))
            self._domains[domain] = d
            self._versions[domain] = 0
        return d

    def domain_size(self, domain: str) -> int:
        return self.domain_dictionary(domain).size

    def domain_version(self, domain: str) -> int:
        return self._versions.get(domain, 0)

    def versions_of(self, domains: Iterable[str]) -> Dict[str, int]:
        """Current versions of the given key domains (plan snapshots)."""
        return {domain: self.domain_version(domain) for domain in domains}

    def names(self) -> Iterable[str]:
        return self.tables.keys()

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __repr__(self) -> str:
        return f"Catalog(tables={sorted(self.tables)})"
