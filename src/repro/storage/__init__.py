"""Storage engine: the key/annotation data model, tables, and catalog.

Implements Sections III-A and III-B of the paper: schemas classify
attributes as keys (trie levels, joinable) or annotations (columnar
buffers, aggregatable); tables build tries per key order on demand with
attribute elimination; the catalog shares key-domain dictionaries
across tables so encoded keys are join-compatible.
"""

from .catalog import Catalog
from .csv_loader import load_dataframe, load_table, write_table
from .persist import load_catalog, load_schemas, save_catalog
from .schema import (
    KEY_TYPES,
    AttrType,
    Attribute,
    Kind,
    Schema,
    annotation,
    coerce_column,
    format_date,
    key,
    parse_date,
)
from .stats import TableStats, cardinality_score, collect_stats
from .table import AnnotationRequest, Table

__all__ = [
    "Catalog",
    "Table",
    "AnnotationRequest",
    "Schema",
    "Attribute",
    "AttrType",
    "Kind",
    "KEY_TYPES",
    "key",
    "annotation",
    "coerce_column",
    "parse_date",
    "format_date",
    "load_table",
    "write_table",
    "load_dataframe",
    "save_catalog",
    "load_catalog",
    "load_schemas",
    "TableStats",
    "collect_stats",
    "cardinality_score",
]
