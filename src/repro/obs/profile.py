"""Kernel-level profiling: where execution time goes, per trie level.

The tracer (:mod:`repro.obs.trace`) answers "which phase" at span
granularity; the :class:`KernelProfiler` answers the paper's Section V
question -- *which intersection kernels, at which trie levels, over how
many bytes* -- by hooking the three hot paths of execution:

* :func:`repro.sets.ops.intersect` -- per-kernel call counts, wall
  time, operand bytes, and the set-layout dispatch mix (``bs_bs`` /
  ``bs_uint`` / ``uint_uint``);
* :class:`repro.xcution.generic_join.NodeExecutor` -- inclusive wall
  time per attribute position (trie level) of each GHD node, plus the
  aggregator's approximate memory high-water;
* :func:`repro.trie.build_trie` -- child-result materialization time
  and per-level trie bytes.

Activation uses a module-global slot (:data:`ACTIVE`) rather than
parameter threading for the set/trie hooks: the intersection kernel is
called from deep inside numpy-driven loops (including parfor worker
threads, which all observe the same global), and a single
``is None`` check keeps the unprofiled path free.  The engine activates
a profiler around ``execute_plan`` only, so profiles attribute
execution, not compilation.

All mutating record methods take the profiler's lock -- parfor workers
record concurrently.  The *counter* totals (call counts, bytes, layout
mix) are parallel-invariant: chunking the outer loop changes neither
the set of pairwise intersections nor their operands, so serial and
parallel runs of one plan report identical :meth:`counters`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

#: the currently active profiler (or None); hot paths read this slot.
ACTIVE: Optional["KernelProfiler"] = None

# reentrant so one thread can nest activations (the previous profiler
# is restored on exit); concurrent threads still serialize.
_ACTIVATION_LOCK = threading.RLock()


@contextmanager
def activate(profiler: "KernelProfiler"):
    """Install ``profiler`` as the process-wide :data:`ACTIVE` profiler.

    Nested activations restore the previous profiler on exit.  Parfor
    worker threads inherit the active profiler through the module
    global, which is exactly what per-query profiling wants; two
    *concurrent* profiled queries in one process would interleave, so
    activation is serialized with a lock.
    """
    global ACTIVE
    _ACTIVATION_LOCK.acquire()
    previous = ACTIVE
    ACTIVE = profiler
    try:
        yield profiler
    finally:
        ACTIVE = previous
        _ACTIVATION_LOCK.release()


class KernelProfiler:
    """Accumulates kernel-level execution measurements for one query."""

    def __init__(self):
        self._lock = threading.Lock()
        #: pairwise intersection calls by kernel kind.
        self.kernel_counts: Dict[str, int] = {}
        #: wall seconds inside each kernel kind.
        self.kernel_seconds: Dict[str, float] = {}
        #: operand bytes fed to intersection kernels.
        self.bytes_intersected = 0
        #: values produced by intersection kernels.
        self.intersection_values = 0
        #: operand layout occurrences ("dense" counts direct array scans
        #: of single-participant attributes, which skip set dispatch).
        self.layout_mix: Dict[str, int] = {"bitset": 0, "uint": 0, "dense": 0}
        #: (node label, level index, attr) -> self wall seconds.
        self.level_seconds: Dict[Tuple[str, int, str], float] = {}
        #: non-level execution categories (trie.build, node.setup,
        #: finalize, decode.deferred) -> wall seconds.
        self.category_seconds: Dict[str, float] = {}
        #: node label -> max approximate aggregator bytes observed.
        self.aggregator_bytes: Dict[str, int] = {}
        #: one entry per trie built during execution (child results).
        self.trie_builds: List[Dict] = []
        #: one entry per lazy trie materialized on probe during execution.
        self.lazy_builds: List[Dict] = []
        #: wall seconds of the whole ``execute_plan`` call (set by the
        #: engine after execution; the denominator of attribution).
        self.execute_seconds = 0.0

    # -- recording hooks -----------------------------------------------------

    def record_kernel(
        self, kind: str, seconds: float, bytes_in: int, output_values: int,
        bitset_operands: int,
    ) -> None:
        with self._lock:
            self.kernel_counts[kind] = self.kernel_counts.get(kind, 0) + 1
            self.kernel_seconds[kind] = self.kernel_seconds.get(kind, 0.0) + seconds
            self.bytes_intersected += int(bytes_in)
            self.intersection_values += int(output_values)
            self.layout_mix["bitset"] += bitset_operands
            self.layout_mix["uint"] += 2 - bitset_operands

    def record_scan(self) -> None:
        """One single-participant attribute served by a direct array scan."""
        with self._lock:
            self.layout_mix["dense"] += 1

    def record_node(
        self,
        label: str,
        attrs: Sequence[str],
        inclusive_seconds: Sequence[float],
        aggregator_bytes: int,
    ) -> None:
        """Record one GHD node's per-level times and memory high-water.

        ``inclusive_seconds[p]`` is the wall time spent at attribute
        position ``p`` *and deeper*; self time per level is the
        difference against the next level (clamped at zero -- under
        parallel execution deeper levels accumulate thread time, which
        can exceed any one enclosing wall measurement).
        """
        n = len(attrs)
        with self._lock:
            for p in range(n):
                deeper = inclusive_seconds[p + 1] if p + 1 < n else 0.0
                key = (label, p, attrs[p])
                self.level_seconds[key] = self.level_seconds.get(key, 0.0) + max(
                    0.0, inclusive_seconds[p] - deeper
                )
            previous = self.aggregator_bytes.get(label, 0)
            self.aggregator_bytes[label] = max(previous, int(aggregator_bytes))

    def record_trie_build(
        self, attrs: Sequence[str], tuples: int, level_bytes: Sequence[int],
        seconds: float,
    ) -> None:
        with self._lock:
            self.trie_builds.append(
                {
                    "attrs": list(attrs),
                    "tuples": int(tuples),
                    "level_bytes": [int(b) for b in level_bytes],
                    "seconds": seconds,
                }
            )
            self.category_seconds["trie.build"] = (
                self.category_seconds.get("trie.build", 0.0) + seconds
            )

    def record_lazy_build(
        self,
        attrs: Sequence[str],
        tuples: int,
        level_bytes: Sequence[int],
        seconds: float,
        pruned: bool,
        total_roots: int,
    ) -> None:
        """One lazy trie materialized on probe during execution.

        Self-time lands in the ``trie.lazy_build`` category, separate
        from eager child-result builds, so build-on-probe cost is
        directly visible in the flamegraph.  The *counts* (number of
        lazy builds, whether each was pruned, and their byte
        footprints) are parallel-invariant: each lazy trie builds
        exactly once under its lock, and the probed root set is
        computed on the main thread before parfor chunking.
        """
        with self._lock:
            self.lazy_builds.append(
                {
                    "attrs": list(attrs),
                    "tuples": int(tuples),
                    "level_bytes": [int(b) for b in level_bytes],
                    "seconds": seconds,
                    "pruned": bool(pruned),
                    "total_roots": int(total_roots),
                }
            )
            self.category_seconds["trie.lazy_build"] = (
                self.category_seconds.get("trie.lazy_build", 0.0) + seconds
            )

    def add_category(self, name: str, seconds: float) -> None:
        with self._lock:
            self.category_seconds[name] = (
                self.category_seconds.get(name, 0.0) + seconds
            )

    # -- reading -------------------------------------------------------------

    def attributed_seconds(self) -> float:
        """Execution time the profile accounts for: level self times plus
        the non-level categories (trie builds, node setup, finalize,
        deferred decode).  On a serial run this approaches
        :attr:`execute_seconds`; the gap is dispatch overhead."""
        with self._lock:
            return sum(self.level_seconds.values()) + sum(
                self.category_seconds.values()
            )

    def counters(self) -> Dict:
        """The parallel-invariant totals (counts and bytes, no times).

        Chunking the outermost loop across parfor workers changes
        neither which pairwise intersections run nor their operands, so
        these totals are identical for serial and parallel execution of
        the same plan -- the differential suite asserts exactly that.
        """
        with self._lock:
            return {
                "kernel_counts": dict(sorted(self.kernel_counts.items())),
                "layout_mix": dict(self.layout_mix),
                "bytes_intersected": self.bytes_intersected,
                "intersection_values": self.intersection_values,
                "trie_builds": len(self.trie_builds),
                "trie_bytes": sum(
                    sum(b["level_bytes"]) for b in self.trie_builds
                ),
                "lazy_builds": len(self.lazy_builds),
                "lazy_pruned_builds": sum(
                    1 for b in self.lazy_builds if b["pruned"]
                ),
                "lazy_trie_bytes": sum(
                    sum(b["level_bytes"]) for b in self.lazy_builds
                ),
            }

    def level_rows(self) -> List[Dict]:
        """Per-trie-level attribution rows, stable node/level order."""
        with self._lock:
            items = sorted(self.level_seconds.items())
        return [
            {"node": label, "level": level, "attr": attr, "seconds": seconds}
            for (label, level, attr), seconds in items
        ]

    def as_dict(self) -> Dict:
        with self._lock:
            trie_bytes = sum(sum(b["level_bytes"]) for b in self.trie_builds)
            out = {
                "execute_seconds": self.execute_seconds,
                "kernel_counts": dict(sorted(self.kernel_counts.items())),
                "kernel_seconds": dict(sorted(self.kernel_seconds.items())),
                "bytes_intersected": self.bytes_intersected,
                "intersection_values": self.intersection_values,
                "layout_mix": dict(self.layout_mix),
                "categories": dict(sorted(self.category_seconds.items())),
                "aggregator_bytes": dict(sorted(self.aggregator_bytes.items())),
                "trie_builds": [dict(b) for b in self.trie_builds],
                "trie_bytes": trie_bytes,
                "lazy_builds": [dict(b) for b in self.lazy_builds],
                "lazy_trie_bytes": sum(
                    sum(b["level_bytes"]) for b in self.lazy_builds
                ),
            }
        out["levels"] = self.level_rows()
        out["attributed_seconds"] = self.attributed_seconds()
        return out

    # -- rendering -----------------------------------------------------------

    def collapsed_stacks(self) -> List[str]:
        """Flamegraph collapsed-stack lines (``frame;frame value``).

        Values are integer microseconds of *self* time, so the output
        feeds ``flamegraph.pl`` / speedscope directly: one stack per
        trie level under its GHD node, plus the non-level categories.
        """
        lines: List[str] = []
        for row in self.level_rows():
            lines.append(
                f"execute;node:{row['node']};level{row['level']}:{row['attr']} "
                f"{int(round(row['seconds'] * 1e6))}"
            )
        with self._lock:
            categories = sorted(self.category_seconds.items())
        for name, seconds in categories:
            lines.append(f"execute;{name} {int(round(seconds * 1e6))}")
        return lines

    def render(self) -> str:
        """A printable kernel-profile report (the CLI's ``\\profile``)."""
        snap = self.as_dict()
        execute_ms = snap["execute_seconds"] * 1000
        attributed_ms = snap["attributed_seconds"] * 1000
        coverage = (
            f" ({attributed_ms / execute_ms * 100:.1f}%)" if execute_ms > 0 else ""
        )
        lines = [
            "kernel profile",
            f"  execute: {execute_ms:.3f}ms  attributed: "
            f"{attributed_ms:.3f}ms{coverage}",
            "",
            "collapsed stack (self-time, us):",
        ]
        lines.extend(f"  {line}" for line in self.collapsed_stacks())
        if snap["kernel_counts"]:
            lines.append("")
            lines.append("intersection kernels:")
            for kind in snap["kernel_counts"]:
                lines.append(
                    f"  {kind}: {snap['kernel_counts'][kind]} calls, "
                    f"{snap['kernel_seconds'][kind] * 1000:.3f}ms"
                )
            lines.append(
                f"  bytes intersected: {snap['bytes_intersected']}  "
                f"values out: {snap['intersection_values']}"
            )
        mix = snap["layout_mix"]
        lines.append(
            f"layout mix: bitset={mix['bitset']} uint={mix['uint']} "
            f"dense={mix['dense']}"
        )
        if snap["aggregator_bytes"]:
            lines.append("aggregator high-water (approx bytes):")
            for label, nbytes in snap["aggregator_bytes"].items():
                lines.append(f"  {label}: {nbytes}")
        if snap["trie_builds"]:
            lines.append(
                f"tries built during execution: {len(snap['trie_builds'])} "
                f"({snap['trie_bytes']} bytes)"
            )
            for build in snap["trie_builds"]:
                lines.append(
                    f"  {','.join(build['attrs'])}: {build['tuples']} tuples, "
                    f"{sum(build['level_bytes'])} bytes, "
                    f"{build['seconds'] * 1000:.3f}ms"
                )
        if snap["lazy_builds"]:
            lines.append(
                f"lazy tries materialized on probe: {len(snap['lazy_builds'])} "
                f"({snap['lazy_trie_bytes']} bytes)"
            )
            for build in snap["lazy_builds"]:
                kind = "pruned" if build["pruned"] else "full"
                lines.append(
                    f"  {','.join(build['attrs'])}: {build['tuples']} tuples "
                    f"({kind}, {build['total_roots']} roots), "
                    f"{sum(build['level_bytes'])} bytes, "
                    f"{build['seconds'] * 1000:.3f}ms"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(execute={self.execute_seconds * 1000:.3f}ms, "
            f"levels={len(self.level_seconds)}, "
            f"kernels={sum(self.kernel_counts.values())})"
        )
