"""Process-wide serving metrics (``repro.obs``).

A :class:`MetricsRegistry` hangs off each engine and accumulates
cumulative counters and latency histograms across every query the
engine serves: queries served, plan-cache hit rates, p50/p95 compile
and execute times, groups emitted, bytes materialized.  Counters are
guarded by a lock so background threads (the bench harness, a serving
loop) can record concurrently.

The histograms keep a bounded sample reservoir plus exact count / sum /
min / max, so percentiles stay cheap and memory stays O(1) under heavy
traffic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: bounded per-histogram sample buffer (ring of the most recent values).
_MAX_SAMPLES = 4096

#: fixed bucket boundaries (seconds) for the wire-facing latency
#: histograms.  Buckets are exact and cumulative, so operators can
#: compute arbitrary quantiles server-side from the ``_bucket`` series
#: -- unlike the reservoir quantiles, which approximate once wrapped.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: registry metric names that carry fixed buckets (everything else
#: stays a summary-style reservoir histogram).
BUCKET_BOUNDS: Dict[str, Tuple[float, ...]] = {
    "execute_seconds": DEFAULT_LATENCY_BUCKETS,
    "admission_wait_seconds": DEFAULT_LATENCY_BUCKETS,
}


def _bucket_label(bound: float) -> str:
    return format(bound, ".10g")


class Histogram:
    """Latency/size distribution: exact moments + recent-sample quantiles."""

    __slots__ = ("count", "total", "min", "max", "bounds", "_bucket_counts",
                 "_samples", "_next")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: fixed, sorted upper bounds; None for reservoir-only histograms.
        self.bounds: Optional[Tuple[float, ...]] = (
            tuple(sorted(bounds)) if bounds else None
        )
        self._bucket_counts: Optional[List[int]] = (
            [0] * (len(self.bounds) + 1) if self.bounds else None
        )
        self._samples: List[float] = []
        self._next = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._bucket_counts is not None:
            # le semantics: value lands in the first bucket whose upper
            # bound is >= value (the overflow slot catches the rest)
            self._bucket_counts[bisect_left(self.bounds, value)] += 1
        if len(self._samples) < _MAX_SAMPLES:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % _MAX_SAMPLES

    def buckets(self) -> Optional[List[Tuple[str, int]]]:
        """Cumulative ``(le_label, count)`` pairs ending at ``+Inf``.

        None for histograms constructed without bounds.  Labels are
        pre-formatted strings (``"0.005"`` ... ``"+Inf"``) so exporters
        and JSON snapshots agree byte for byte.
        """
        if self._bucket_counts is None:
            return None
        out: List[Tuple[str, int]] = []
        acc = 0
        for bound, count in zip(self.bounds, self._bucket_counts):
            acc += count
            out.append((_bucket_label(bound), acc))
        out.append(("+Inf", acc + self._bucket_counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def samples(self) -> int:
        """Values currently held in the reservoir (<= ``count``).

        Once ``count`` exceeds the reservoir capacity the ring has
        wrapped: percentiles are computed over the most recent
        ``samples`` observations only and exporters should mark them as
        approximate.
        """
        return len(self._samples)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            # reservoir size: when count > samples the ring wrapped and
            # the quantiles above are approximate (recent window only).
            "samples": self.samples,
        }
        buckets = self.buckets()
        if buckets is not None:
            out["buckets"] = [[label, count] for label, count in buckets]
        return out


class MetricsRegistry:
    """Named cumulative counters and histograms, thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (active connections, queue depth...)."""
        with self._lock:
            self._gauges[name] = value

    def inc_gauge(self, name: str, by: float = 1) -> None:
        """Adjust a gauge by ``by`` (negative to decrement)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + by

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    bounds=BUCKET_BOUNDS.get(name)
                )
            histogram.observe(value)

    def record_query(
        self,
        execute_seconds: float,
        compile_seconds: Optional[float] = None,
        cache_outcome: Optional[str] = None,
        rows: int = 0,
        bytes_materialized: int = 0,
        groups_emitted: Optional[int] = None,
    ) -> None:
        """Record one served query (the engine calls this on every run)."""
        self.inc("queries_served")
        self.observe("execute_seconds", execute_seconds)
        if compile_seconds is not None:
            self.observe("compile_seconds", compile_seconds)
        if cache_outcome is not None:
            self.inc(f"plan_cache_{cache_outcome}")
        self.inc("rows_emitted", rows)
        self.inc("bytes_materialized", bytes_materialized)
        if groups_emitted is not None:
            self.inc("groups_emitted", groups_emitted)

    # -- reading ------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    @property
    def cache_hit_rate(self) -> float:
        """Plan-cache hits over hit+miss lookups (0.0 before any lookup)."""
        with self._lock:
            hits = self._counters.get("plan_cache_hit", 0)
            misses = self._counters.get("plan_cache_miss", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> Dict:
        """Everything, JSON-ready: counters, histograms, derived rates.

        The whole snapshot is taken under one lock acquisition and the
        derived cache hit rate is computed from *that* snapshot's
        counters, so the rate always agrees with the counters it is
        reported next to (re-reading live counters could observe a
        concurrent increment in between).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                name: histogram.as_dict()
                for name, histogram in self._histograms.items()
            }
        hits = counters.get("plan_cache_hit", 0)
        misses = counters.get("plan_cache_miss", 0)
        total = hits + misses
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "cache_hit_rate": hits / total if total else 0.0,
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of this registry.

        Delegates to :func:`repro.obs.export.to_prometheus`; exposed
        here so serving code can scrape ``engine.metrics`` directly.
        """
        from .export import to_prometheus

        return to_prometheus(self)

    def describe(self) -> str:
        """A printable multi-line summary (the CLI's ``\\metrics``)."""
        snap = self.as_dict()
        lines = ["metrics:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name}: {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            lines.append(f"  {name}: {snap['gauges'][name]:g} (gauge)")
        lines.append(f"  cache_hit_rate: {snap['cache_hit_rate']:.3f}")
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            lines.append(
                f"  {name}: n={h['count']} mean={h['mean'] * 1000:.3f}ms "
                f"p50={h['p50'] * 1000:.3f}ms p95={h['p95'] * 1000:.3f}ms "
                f"max={h['max'] * 1000:.3f}ms"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()
