"""Query-lifecycle tracing: nested wall-time spans (``repro.obs``).

A :class:`Tracer` produces one tree of :class:`Span` objects per query
-- parse, bind, translate, GHD decomposition, attribute-order search,
trie builds, per-GHD-node execution, decode -- each carrying its wall
time, an optional :class:`~repro.xcution.stats.ExecutionStats` delta
scoped to that span, and key/value payloads (chosen order and its
icost*weight cost, set-layout mix, plan-cache outcome, ...).

Tracing is opt-in and zero-cost when off: every traced code path takes
an optional tracer and falls back to the module-level :data:`NULL_TRACER`,
whose ``span`` context manager allocates nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class Span:
    """One timed phase of a query, with payload, stats, and children."""

    __slots__ = ("name", "start", "end", "payload", "children", "stats")

    def __init__(self, name: str, start: float = 0.0):
        self.name = name
        self.start = start
        self.end = start
        self.payload: Dict[str, object] = {}
        self.children: List["Span"] = []
        #: ExecutionStats counters scoped to this span (a plain dict of
        #: counter deltas), set by executors that carry stats.
        self.stats: Optional[Dict[str, int]] = None

    @property
    def duration(self) -> float:
        """Wall seconds spent inside this span (children included)."""
        return max(0.0, self.end - self.start)

    def set(self, **payload) -> "Span":
        """Attach key/value payload entries to this span."""
        self.payload.update(payload)
        return self

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> Dict:
        """A JSON-ready rendering of the subtree."""
        out: Dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 4),
        }
        if self.payload:
            out["payload"] = {k: _jsonable(v) for k, v in self.payload.items()}
        if self.stats:
            out["stats"] = {k: v for k, v in self.stats.items() if v}
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """A printable span tree (one line per span, payload inline)."""
        lines: List[str] = []
        self._render_into(lines, indent)
        return "\n".join(lines)

    def _render_into(self, lines: List[str], indent: int) -> None:
        parts = [f"{'  ' * indent}{self.name}: {self.duration * 1000:.3f}ms"]
        if self.payload:
            rendered = ", ".join(
                f"{key}={_render_value(value)}" for key, value in self.payload.items()
            )
            parts.append(f" [{rendered}]")
        if self.stats:
            nonzero = ", ".join(f"{k}={v}" for k, v in self.stats.items() if v)
            if nonzero:
                parts.append(f" {{{nonzero}}}")
        lines.append("".join(parts))
        for child in self.children:
            child._render_into(lines, indent + 1)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, children={len(self.children)})"


class Tracer:
    """Builds one span tree; use ``with tracer.span(name): ...``."""

    active = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.root: Optional[Span] = None
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **payload):
        span = Span(name, self._clock())
        if payload:
            span.payload.update(payload)
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is None:
            self.root = span
        else:
            # A second top-level span: graft it under the existing root
            # so one query always yields one tree.
            self.root.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def annotate(self, **payload) -> None:
        """Attach payload to the innermost open span (no-op when idle)."""
        if self._stack:
            self._stack[-1].payload.update(payload)

    def mark(self, name: str, **payload) -> Optional[Span]:
        """Record a zero-duration event span under the innermost open span.

        Used for point-in-time facts -- "the deadline fired here", "the
        query was cancelled here" -- that have a position in the tree
        but no extent.
        """
        now = self._clock()
        span = Span(name, now)
        span.end = now
        if payload:
            span.payload.update(payload)
        if self._stack:
            self._stack[-1].children.append(span)
        elif self.root is not None:
            self.root.children.append(span)
        else:
            self.root = span
        return span


class _NullSpan:
    """The shared inert span yielded by :data:`NULL_TRACER`."""

    __slots__ = ()

    def set(self, **payload) -> "_NullSpan":
        return self

    stats = None


class NullTracer:
    """A tracer that records nothing (the default for untraced runs)."""

    active = False
    root = None
    current = None

    @contextmanager
    def span(self, name: str, **payload):
        yield _NULL_SPAN

    def annotate(self, **payload) -> None:
        pass

    def mark(self, name: str, **payload):
        return None


_NULL_SPAN = _NullSpan()

#: module-level singleton: ``tracer or NULL_TRACER`` is the idiom every
#: traced code path uses.
NULL_TRACER = NullTracer()


def phase_times(root: Span) -> Dict[str, float]:
    """Aggregate wall seconds by span name across one tree.

    A span's time includes its children's (it is wall time, not self
    time), so summing phases at mixed depths double-counts; callers
    usually aggregate the direct children of the root (the query's
    sequential phases) or a single name like ``node.execute``.
    """
    out: Dict[str, float] = {}
    for span in root.walk():
        out[span.name] = out.get(span.name, 0.0) + span.duration
    return out


def span_to_wire(root: Span) -> Dict:
    """Serialize a span tree for the network, offsets preserved.

    Unlike :meth:`Span.as_dict` (a human-facing rendering that keeps
    only durations), the wire form keeps each span's *start offset*
    relative to the root in microseconds, so the receiving side can
    rebuild a tree whose spans still line up on a timeline --
    :func:`span_from_wire` grafts it under a local parent at an
    arbitrary origin and Chrome trace export keeps working.
    """
    origin = root.start

    def visit(span: Span) -> Dict:
        out: Dict[str, object] = {
            "name": span.name,
            "t0": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
        }
        if span.payload:
            out["payload"] = {k: _jsonable(v) for k, v in span.payload.items()}
        if span.stats:
            out["stats"] = {k: v for k, v in span.stats.items() if v}
        if span.children:
            out["children"] = [visit(child) for child in span.children]
        return out

    return visit(root)


def span_from_wire(payload: Dict, origin: float = 0.0) -> Span:
    """Rebuild a :class:`Span` tree serialized by :func:`span_to_wire`.

    ``origin`` is the absolute start (in the local clock) to anchor the
    remote tree's root at; every descendant keeps its relative offset.
    """
    span = Span(str(payload.get("name", "span")), origin + float(payload.get("t0", 0.0)) / 1e6)
    span.end = span.start + float(payload.get("dur", 0.0)) / 1e6
    data = payload.get("payload")
    if isinstance(data, dict):
        span.payload.update(data)
    stats = payload.get("stats")
    if isinstance(stats, dict):
        span.stats = dict(stats)
    for child in payload.get("children", ()):
        span.children.append(span_from_wire(child, origin))
    return span


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _render_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_value(v) for v in value) + "]"
    return str(value)
