"""Query correlation and the flight recorder (``repro.obs``).

Three small pieces turn individual observability signals (spans,
metrics, log lines, wire errors) into one joinable story per query:

* :func:`next_query_id` mints the process-unique ``query_id`` the
  engine stamps into every span tree, :class:`~repro.xcution.stats
  .ExecutionStats`, JSONL query-log event, flight-recorder entry, and
  wire error -- one grep joins the client, server, governor, and
  executor views of the same query;
* :class:`InflightRegistry` tracks queries between admission and
  completion, powering ``GET /debug/queries`` and the CLI's ``\\top``;
* :class:`FlightRecorder` is an always-on bounded ring of the most
  recent completed/failed/killed queries (``GET /debug/flight``,
  ``\\last``) -- the crash-cheap "what just happened" buffer every
  long-running server needs.

All three are lock-cheap by construction: the hot path takes one short
critical section per query (an append / a dict insert), and snapshots
copy under the lock so readers never observe torn state.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "InflightQuery",
    "InflightRegistry",
    "next_query_id",
    "sql_hash",
]

#: process-wide query-id sequence.  ``itertools.count`` increments
#: atomically in CPython, so minting an id is lock-free.
_COUNTER = itertools.count(1)


def next_query_id() -> str:
    """Mint a process-unique correlation id (``q<pid>-<n>``).

    Ids are minted at admission and never reused within a process; the
    pid prefix keeps them unique across a future multi-process
    deployment without any coordination.
    """
    return f"q{os.getpid()}-{next(_COUNTER)}"


def sql_hash(sql: Optional[str]) -> Optional[str]:
    """A short stable digest of the SQL text (None for plan-only runs)."""
    if not sql:
        return None
    return hashlib.sha1(sql.encode("utf-8")).hexdigest()[:12]


class InflightQuery:
    """Live state of one admitted-but-unfinished query."""

    __slots__ = (
        "query_id",
        "sql",
        "session",
        "started_ts",
        "_t0",
        "phase",
        "stats",
        "admission_wait_seconds",
        "queued",
        "recorded",
    )

    def __init__(self, query_id: str, sql: Optional[str], session: Optional[str]):
        self.query_id = query_id
        self.sql = sql
        self.session = session
        self.started_ts = time.time()
        self._t0 = time.perf_counter()
        #: coarse lifecycle phase: admission -> compile -> execute -> decode.
        self.phase = "admission"
        #: the run's live ExecutionStats once execution starts (reading
        #: its counters mid-flight is racy-but-monotonic, which is all a
        #: progress view needs).
        self.stats = None
        self.admission_wait_seconds = 0.0
        self.queued = False
        #: whether a flight-recorder entry was already written for this
        #: query (kills record eagerly; the failure path must not
        #: double-record).
        self.recorded = False

    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._t0

    def snapshot(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "query_id": self.query_id,
            "session": self.session,
            "sql": self.sql,
            "phase": self.phase,
            "elapsed_ms": round(self.elapsed_seconds() * 1000, 3),
            "started_ts": round(self.started_ts, 6),
            "queued": self.queued,
            "admission_wait_ms": round(self.admission_wait_seconds * 1000, 3),
            "cancel_checks": int(stats.cancel_checks) if stats is not None else 0,
        }


class InflightRegistry:
    """The set of queries currently inside the engine."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[str, InflightQuery] = {}

    def register(
        self, query_id: str, sql: Optional[str], session: Optional[str] = None
    ) -> InflightQuery:
        entry = InflightQuery(query_id, sql, session)
        with self._lock:
            self._entries[query_id] = entry
        return entry

    def finish(self, query_id: str) -> None:
        with self._lock:
            self._entries.pop(query_id, None)

    def snapshot(self) -> List[Dict[str, object]]:
        """Point-in-time views of every in-flight query, oldest first."""
        with self._lock:
            entries = list(self._entries.values())
        return [entry.snapshot() for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class FlightRecorder:
    """A bounded ring of recently finished queries, always on.

    ``record`` is O(1) -- one deque append under a lock -- and the ring
    never exceeds ``capacity`` entries (``deque(maxlen=...)`` drops the
    oldest), so leaving the recorder enabled in production costs one
    dict per query and nothing else.  Entries are plain JSON-ready
    dicts, written once and never mutated afterwards, so ``snapshot``
    can hand them out without copying.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        #: total entries ever recorded (>= len(ring) once wrapped).
        self.recorded = 0

    def record(self, entry: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1

    def snapshot(
        self, n: Optional[int] = None, outcome: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """The most recent entries, newest first, optionally filtered."""
        with self._lock:
            entries = list(self._ring)
        entries.reverse()
        if outcome:
            entries = [e for e in entries if e.get("outcome") == outcome]
        if n is not None:
            entries = entries[: max(0, int(n))]
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
