"""Exporters: getting observability data *out* of the process.

Three export surfaces sit on top of the in-process substrate
(:class:`~repro.obs.MetricsRegistry` and :class:`~repro.obs.Span`):

* :func:`to_prometheus` -- Prometheus text exposition of a metrics
  registry (counters as ``_total``, histograms as summaries with
  ``_count``/``_sum``/``_min``/``_max`` plus quantile gauges);
* :class:`QueryLog` -- a structured JSONL query-event log with a
  configurable slow-query threshold; queries at or above the threshold
  capture the full plan text and lifecycle span tree so the offending
  query can be diagnosed after the fact;
* :func:`to_chrome_trace` -- a ``chrome://tracing`` / Perfetto
  trace-event rendering of one :class:`~repro.obs.Span` tree.

All three are deterministic given their inputs: field order is fixed,
floats are formatted stably, and nothing depends on dict iteration
order beyond insertion order.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Dict, List, Optional, TextIO, Union

from .trace import Span

# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: quantiles exported per histogram (label value, percentile).
_QUANTILES = (("0.5", 50.0), ("0.95", 95.0))


def _fmt(value) -> str:
    """Stable number formatting for exposition lines."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def _metric_name(name: str) -> str:
    """Sanitize a registry key into a Prometheus metric name component."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def to_prometheus(registry, namespace: str = "repro") -> str:
    """Render a :class:`~repro.obs.MetricsRegistry` in Prometheus text format.

    Counters become ``<ns>_<name>_total``; each histogram becomes a
    summary (``_count``, ``_sum``, quantile series) plus ``_min`` /
    ``_max`` gauges and a ``_reservoir_samples`` gauge.  When the
    reservoir has wrapped (``count > samples``) the quantile series are
    marked approximate via a comment, since they then cover only the
    most recent window of observations.  Histograms with fixed bucket
    bounds (:data:`repro.obs.metrics.BUCKET_BOUNDS`) render instead as
    real Prometheus histograms -- cumulative ``_bucket{le="..."}``
    series ending at ``+Inf`` -- so arbitrary quantiles can be computed
    server-side; their reservoir quantile series are dropped (buckets
    are exact, the reservoir is not).  Output is deterministic: metric
    families are sorted by name.
    """
    snap = registry.as_dict()
    out: List[str] = []

    for name in sorted(snap["counters"]):
        metric = f"{namespace}_{_metric_name(name)}_total"
        out.append(f"# HELP {metric} Cumulative counter '{name}'.")
        out.append(f"# TYPE {metric} counter")
        out.append(f"{metric} {_fmt(snap['counters'][name])}")

    # point-in-time gauges (active connections, live sessions, ...);
    # absent from older snapshots, so .get keeps external dicts working
    for name in sorted(snap.get("gauges", {})):
        metric = f"{namespace}_{_metric_name(name)}"
        out.append(f"# HELP {metric} Gauge '{name}'.")
        out.append(f"# TYPE {metric} gauge")
        out.append(f"{metric} {_fmt(snap['gauges'][name])}")

    metric = f"{namespace}_plan_cache_hit_rate"
    out.append(f"# HELP {metric} Plan-cache hits over hit+miss lookups.")
    out.append(f"# TYPE {metric} gauge")
    out.append(f"{metric} {_fmt(snap['cache_hit_rate'])}")

    for name in sorted(snap["histograms"]):
        h = snap["histograms"][name]
        metric = f"{namespace}_{_metric_name(name)}"
        buckets = h.get("buckets")
        out.append(f"# HELP {metric} Distribution of '{name}'.")
        if buckets:
            out.append(f"# TYPE {metric} histogram")
            for label, count in buckets:
                out.append(f'{metric}_bucket{{le="{label}"}} {_fmt(count)}')
        else:
            approximate = h["count"] > h["samples"]
            out.append(f"# TYPE {metric} summary")
            if approximate:
                out.append(
                    f"# NOTE {metric} quantiles are approximate: reservoir wrapped "
                    f"({h['samples']} samples of {h['count']} observations)"
                )
            for label, _ in _QUANTILES:
                key = "p" + label.replace("0.", "").ljust(2, "0")
                out.append(f'{metric}{{quantile="{label}"}} {_fmt(h[key])}')
        out.append(f"{metric}_count {_fmt(h['count'])}")
        out.append(f"{metric}_sum {_fmt(h['sum'])}")
        out.append(f"# TYPE {metric}_min gauge")
        out.append(f"{metric}_min {_fmt(h['min'])}")
        out.append(f"# TYPE {metric}_max gauge")
        out.append(f"{metric}_max {_fmt(h['max'])}")
        out.append(f"# TYPE {metric}_reservoir_samples gauge")
        out.append(f"{metric}_reservoir_samples {_fmt(h['samples'])}")

    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# structured JSONL query-event log
# ---------------------------------------------------------------------------


class QueryLog:
    """A JSONL query-event log with slow-query capture.

    One JSON object per line, one line per served query, with a stable
    field order (so downstream parsers can stream line by line and
    golden tests can pin the schema).  Queries whose execute time
    reaches ``slow_query_seconds`` additionally capture the full plan
    text and the lifecycle span tree -- the engine forces tracing on
    when a slow threshold is configured, so the capture is always
    available for offending queries.

    ``sink`` is a path (opened in append mode, one line flushed per
    event) or any file-like object with ``write``.
    """

    def __init__(
        self,
        sink: Union[str, TextIO],
        slow_query_seconds: Optional[float] = None,
        clock=time.time,
    ):
        self.slow_query_seconds = slow_query_seconds
        self._clock = clock
        self._lock = threading.Lock()
        if isinstance(sink, (str, bytes)) or hasattr(sink, "__fspath__"):
            self._stream: TextIO = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        #: events written since construction (for tests / introspection).
        self.events_written = 0
        self.slow_events_written = 0
        self.killed_events_written = 0

    @property
    def captures_traces(self) -> bool:
        """Whether the engine should trace every query for this log."""
        return self.slow_query_seconds is not None

    def record(
        self,
        *,
        sql: Optional[str],
        mode: str,
        cache_outcome: Optional[str],
        compile_seconds: Optional[float],
        execute_seconds: float,
        rows: int,
        plan_text: Optional[str] = None,
        trace_root: Optional[Span] = None,
        outcome: str = "ok",
        query_id: Optional[str] = None,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one query event; thread-safe, one line per call.

        ``outcome`` is ``"ok"`` for served queries; killed queries pass
        ``"timeout"`` / ``"cancelled"`` / ``"oom"`` and are logged as
        ``killed_query`` events that *always* capture the plan text and
        span tree (a query the governor killed is precisely the one to
        diagnose afterwards).  Extra fields are only emitted for killed
        queries so the ordinary event schema stays unchanged.

        ``annotations`` is emitted on *every* event -- an empty dict
        when the caller has none (killed and rejected queries included),
        so consumers never guard on the key's presence.  The engine puts
        the approximate-execution block (``approx``) here.
        """
        killed = outcome != "ok"
        slow = (
            self.slow_query_seconds is not None
            and execute_seconds >= self.slow_query_seconds
        )
        # Stable field order: parsers and golden tests rely on it.
        event: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "event": "killed_query" if killed else ("slow_query" if slow else "query"),
            "query_id": query_id,
            "sql": sql,
            "mode": mode,
            "cache_outcome": cache_outcome,
            "compile_ms": (
                None if compile_seconds is None else round(compile_seconds * 1000, 4)
            ),
            "execute_ms": round(execute_seconds * 1000, 4),
            "rows": int(rows),
            "slow": slow,
            "annotations": dict(annotations or {}),
        }
        if killed:
            event["outcome"] = outcome
        if slow and not killed:
            event["threshold_ms"] = round(self.slow_query_seconds * 1000, 4)
        if slow or killed:
            event["plan"] = plan_text
            event["trace"] = None if trace_root is None else trace_root.as_dict()
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            flush = getattr(self._stream, "flush", None)
            if flush is not None:
                flush()
            self.events_written += 1
            if slow:
                self.slow_events_written += 1
            if killed:
                self.killed_events_written += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


# ---------------------------------------------------------------------------
# Chrome trace-event export of span trees
# ---------------------------------------------------------------------------


def to_chrome_trace(root: Span, pid: int = 1, tid: int = 1) -> Dict:
    """Render one span tree as Chrome trace-event JSON.

    The result loads directly into ``chrome://tracing`` or Perfetto:
    every span becomes one complete ("X") event with microsecond
    timestamps relative to the root span's start, payload and scoped
    stats carried in ``args``.
    """
    events: List[Dict] = []
    origin = root.start

    def visit(span: Span) -> None:
        event: Dict[str, object] = {
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - origin) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        args: Dict[str, object] = {}
        if span.payload:
            args.update(span.as_dict().get("payload", {}))
        if span.stats:
            args["stats"] = {k: v for k, v in span.stats.items() if v}
        if args:
            event["args"] = args
        events.append(event)
        for child in span.children:
            visit(child)

    visit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(root: Span, path: str) -> str:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    payload = to_chrome_trace(root)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
    return path


def render_chrome_trace(root: Span) -> str:
    """The Chrome trace JSON as a string (for tests and piping)."""
    buffer = io.StringIO()
    json.dump(to_chrome_trace(root), buffer)
    return buffer.getvalue()
