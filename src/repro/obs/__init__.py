"""Observability for the query lifecycle: tracing and serving metrics.

``repro.obs`` is the substrate the paper's cost attribution rests on
(Section V's per-phase accounting, Figure 5b/5c) and the serving
story's measurement layer: a span-based :class:`Tracer` that records
where each query's time goes (parse -> bind -> translate -> decompose
-> order search -> trie build -> per-GHD-node execution -> decode) and
a process-wide :class:`MetricsRegistry` that accumulates cumulative
counters and latency percentiles across queries.

Entry points:

* ``engine.query(sql, trace=True)`` -> ``result.trace`` (a :class:`Span`
  tree);
* ``engine.explain(sql, analyze=True)`` renders the trace as text or
  JSON;
* ``engine.metrics`` -- the engine's :class:`MetricsRegistry`;
* the CLI's ``\\trace SELECT ...`` and ``\\metrics`` commands;
* :func:`phase_times` aggregates a span tree for the bench harness.
"""

from .metrics import Histogram, MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Span, Tracer, phase_times

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "phase_times",
]
