"""Observability for the query lifecycle: tracing and serving metrics.

``repro.obs`` is the substrate the paper's cost attribution rests on
(Section V's per-phase accounting, Figure 5b/5c) and the serving
story's measurement layer: a span-based :class:`Tracer` that records
where each query's time goes (parse -> bind -> translate -> decompose
-> order search -> trie build -> per-GHD-node execution -> decode) and
a process-wide :class:`MetricsRegistry` that accumulates cumulative
counters and latency percentiles across queries.

Entry points:

* ``engine.query(sql, trace=True)`` -> ``result.trace`` (a :class:`Span`
  tree);
* ``engine.query(sql, profile=True)`` -> ``result.profile`` (a
  :class:`KernelProfiler` with per-trie-level kernel attribution);
* ``engine.explain(sql, analyze=True)`` renders the trace as text or
  JSON;
* ``engine.metrics`` -- the engine's :class:`MetricsRegistry`;
  ``engine.metrics.to_prometheus()`` is the scrape endpoint payload;
* :class:`QueryLog` -- a JSONL query-event log with slow-query plan and
  trace capture (``engine.enable_query_log``);
* :func:`to_chrome_trace` / :func:`write_chrome_trace` -- load a span
  tree into ``chrome://tracing``;
* the CLI's ``\\trace``, ``\\profile``, and ``\\metrics`` commands;
* :func:`phase_times` aggregates a span tree for the bench harness.
"""

from .export import (
    QueryLog,
    render_chrome_trace,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
)
from .flight import (
    FlightRecorder,
    InflightQuery,
    InflightRegistry,
    next_query_id,
    sql_hash,
)
from .metrics import Histogram, MetricsRegistry
from .profile import KernelProfiler, activate
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    phase_times,
    span_from_wire,
    span_to_wire,
)

__all__ = [
    "FlightRecorder",
    "Histogram",
    "InflightQuery",
    "InflightRegistry",
    "KernelProfiler",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryLog",
    "Span",
    "Tracer",
    "activate",
    "next_query_id",
    "phase_times",
    "render_chrome_trace",
    "span_from_wire",
    "span_to_wire",
    "sql_hash",
    "to_chrome_trace",
    "to_prometheus",
    "write_chrome_trace",
]
