"""Exception hierarchy for the LevelHeaded reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from planning or resource errors.

The hierarchy is also the server wire contract: :func:`error_to_wire`
flattens any library error into a JSON-ready dict with a stable ``code``
plus the fields a remote caller needs to react (``retry_after_ms`` for
backoff, ``timeout_ms``/``elapsed_ms`` for deadlines, ...), and
:func:`error_from_wire` rebuilds the matching typed exception on the
client so ``except QueryTimeoutError`` and
:func:`repro.core.governor.retry_admission` work identically in-process
and over the network.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query references unknown tables, columns, or types."""


class SchemaError(ReproError):
    """A table schema or ingested data violates the data model.

    Examples: a key attribute with a non-integer type, an annotation
    referenced as a join attribute, or mismatched column lengths.
    """


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the supported subset.

    LevelHeaded (the paper) supports a subset of SQL 2008; this
    reproduction raises this error rather than silently computing a
    wrong answer when a query falls outside that subset.
    """


class PlanningError(ReproError):
    """The query compiler failed to produce a GHD-based plan."""


class UnsupportedOnTopology(ReproError):
    """A query-surface option is not supported by this topology.

    The unified ``repro.connect()`` surface spans three topologies --
    in-process engine, remote ``tcp://`` client, sharded ``shard://``
    coordinator -- with identical ``query/prepare/explain/submit/debug``
    signatures.  Options that cannot be honored on a given topology
    (e.g. ``config=`` overrides or ``profile=`` over the wire) raise
    this error instead of being silently dropped, so callers never get
    an answer computed under different settings than they asked for.
    """

    def __init__(self, message: str, option: str = "", topology: str = ""):
        super().__init__(message)
        self.option = option
        self.topology = topology


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class QueryKilledError(ExecutionError):
    """Base of the governance kills: the query was stopped mid-flight.

    Carries whatever diagnostics the engine had accumulated when the
    kill fired, so a killed query is still fully diagnosable:
    ``partial_stats`` is the merged-so-far
    :class:`~repro.xcution.stats.ExecutionStats`, and ``trace_root`` the
    (partial) lifecycle :class:`~repro.obs.Span` tree when the query was
    traced.
    """

    def __init__(self, message: str):
        super().__init__(message)
        #: ExecutionStats accumulated up to the kill (None if the engine
        #: was not collecting stats for this query).
        self.partial_stats = None
        #: partial lifecycle span tree (None when the query was untraced).
        self.trace_root = None


class QueryTimeoutError(QueryKilledError):
    """The query ran past its deadline and was cancelled cooperatively."""

    def __init__(self, message: str, timeout_ms: float = 0.0, elapsed_ms: float = 0.0):
        super().__init__(message)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms


class QueryCancelledError(QueryKilledError):
    """The query's :class:`~repro.core.governor.CancelToken` was cancelled."""

    def __init__(self, message: str, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason


class AdmissionError(ReproError):
    """The governor refused to start the query."""


class RetryableAdmissionError(AdmissionError):
    """Admission failed transiently: back off and retry.

    Raised for bounded-queue backpressure (every concurrency slot busy
    and the wait queue full), load shedding of non-cached plans, and
    memory-pressure failures attributable to the shared global budget.
    ``retry_after_ms`` is a jittered backoff hint; callers can also use
    :func:`repro.core.governor.retry_admission`.  ``cause`` labels the
    single reason the rejection is attributed to (``shedding``,
    ``queue_full``, or ``queue_timeout``) -- exactly one per rejection,
    so per-cause counters sum to the rejection total.
    """

    def __init__(self, message: str, retry_after_ms: float = 25.0, cause: str = ""):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.cause = cause


class OutOfMemoryBudgetError(ExecutionError):
    """An operator exceeded the configured memory budget.

    The paper reports 'oom' entries for engines whose pairwise join plans
    materialize intermediates beyond physical memory (Table II).  Baseline
    engines in this reproduction enforce an explicit budget so the same
    failure mode is observable deterministically.

    ``partial_stats`` carries the merged-so-far
    :class:`~repro.xcution.stats.ExecutionStats` when the budget blew
    mid-execution (e.g. during a parallel merge), so the work done up to
    the failure is not lost to diagnostics.
    """

    def __init__(self, message: str, requested_bytes: int = 0, budget_bytes: int = 0):
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
        #: ExecutionStats accumulated up to the failure (None if unknown).
        self.partial_stats = None


# ---------------------------------------------------------------------------
# wire serialization (the repro.server / repro.client error contract)
# ---------------------------------------------------------------------------

#: stable wire codes, one per exception class.  Codes are part of the
#: network protocol (docs/server.md): never reuse or renumber them.
_CODE_BY_CLASS = {
    ParseError: "parse",
    BindError: "bind",
    SchemaError: "schema",
    UnsupportedQueryError: "unsupported",
    UnsupportedOnTopology: "unsupported_topology",
    PlanningError: "planning",
    QueryTimeoutError: "timeout",
    QueryCancelledError: "cancelled",
    OutOfMemoryBudgetError: "oom",
    ExecutionError: "execution",
    RetryableAdmissionError: "admission_retry",
    AdmissionError: "admission",
    ReproError: "internal",
}

_CLASS_BY_CODE = {code: cls for cls, code in _CODE_BY_CLASS.items()}

#: extra per-class fields carried across the wire (attribute names map
#: 1:1 onto constructor keywords of the matching class).
_WIRE_FIELDS = {
    "parse": ("position",),
    "unsupported_topology": ("option", "topology"),
    "timeout": ("timeout_ms", "elapsed_ms"),
    "cancelled": ("reason",),
    "oom": ("requested_bytes", "budget_bytes"),
    "admission_retry": ("retry_after_ms",),
}


def error_to_wire(exc: BaseException) -> Dict:
    """Flatten ``exc`` into a JSON-ready dict: ``{"code", "message", ...}``.

    Library errors keep their typed identity (most-derived class wins);
    anything else -- a genuine server bug -- becomes ``code:
    "internal"`` so clients never see a raw traceback frame.
    """
    code = "internal"
    for cls in type(exc).__mro__:
        if cls in _CODE_BY_CLASS:
            code = _CODE_BY_CLASS[cls]
            break
    payload: Dict = {"code": code, "message": str(exc)}
    # the correlation id crosses the wire on *every* error that has one
    # (the engine stamps exc.query_id at failure time), so a remote
    # failure joins the server's flight recorder / JSONL log by grep
    query_id = getattr(exc, "query_id", None)
    if query_id is not None:
        payload["query_id"] = query_id
    for field in _WIRE_FIELDS.get(code, ()):
        value = getattr(exc, field, None)
        if value is not None:
            payload[field] = value
    return payload


def error_from_wire(payload: Dict) -> ReproError:
    """Rebuild the typed exception :func:`error_to_wire` flattened.

    Unknown codes degrade to plain :class:`ReproError` (a newer server
    talking to an older client must still produce a catchable error).
    """
    code = payload.get("code", "internal")
    message = payload.get("message", "unknown server error")
    cls = _CLASS_BY_CODE.get(code, ReproError)
    kwargs = {}
    for field in _WIRE_FIELDS.get(code, ()):
        if field in payload:
            kwargs[field] = payload[field]
    try:
        err = cls(message, **kwargs)
    except TypeError:  # pragma: no cover -- malformed extras from a peer
        err = cls(message)
    if "query_id" in payload:
        err.query_id = payload["query_id"]
    return err
