"""Exception hierarchy for the LevelHeaded reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from planning or resource errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query references unknown tables, columns, or types."""


class SchemaError(ReproError):
    """A table schema or ingested data violates the data model.

    Examples: a key attribute with a non-integer type, an annotation
    referenced as a join attribute, or mismatched column lengths.
    """


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the supported subset.

    LevelHeaded (the paper) supports a subset of SQL 2008; this
    reproduction raises this error rather than silently computing a
    wrong answer when a query falls outside that subset.
    """


class PlanningError(ReproError):
    """The query compiler failed to produce a GHD-based plan."""


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class QueryKilledError(ExecutionError):
    """Base of the governance kills: the query was stopped mid-flight.

    Carries whatever diagnostics the engine had accumulated when the
    kill fired, so a killed query is still fully diagnosable:
    ``partial_stats`` is the merged-so-far
    :class:`~repro.xcution.stats.ExecutionStats`, and ``trace_root`` the
    (partial) lifecycle :class:`~repro.obs.Span` tree when the query was
    traced.
    """

    def __init__(self, message: str):
        super().__init__(message)
        #: ExecutionStats accumulated up to the kill (None if the engine
        #: was not collecting stats for this query).
        self.partial_stats = None
        #: partial lifecycle span tree (None when the query was untraced).
        self.trace_root = None


class QueryTimeoutError(QueryKilledError):
    """The query ran past its deadline and was cancelled cooperatively."""

    def __init__(self, message: str, timeout_ms: float = 0.0, elapsed_ms: float = 0.0):
        super().__init__(message)
        self.timeout_ms = timeout_ms
        self.elapsed_ms = elapsed_ms


class QueryCancelledError(QueryKilledError):
    """The query's :class:`~repro.core.governor.CancelToken` was cancelled."""

    def __init__(self, message: str, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason


class AdmissionError(ReproError):
    """The governor refused to start the query."""


class RetryableAdmissionError(AdmissionError):
    """Admission failed transiently: back off and retry.

    Raised for bounded-queue backpressure (every concurrency slot busy
    and the wait queue full), load shedding of non-cached plans, and
    memory-pressure failures attributable to the shared global budget.
    ``retry_after_ms`` is a jittered backoff hint; callers can also use
    :func:`repro.core.governor.retry_admission`.
    """

    def __init__(self, message: str, retry_after_ms: float = 25.0):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class OutOfMemoryBudgetError(ExecutionError):
    """An operator exceeded the configured memory budget.

    The paper reports 'oom' entries for engines whose pairwise join plans
    materialize intermediates beyond physical memory (Table II).  Baseline
    engines in this reproduction enforce an explicit budget so the same
    failure mode is observable deterministically.

    ``partial_stats`` carries the merged-so-far
    :class:`~repro.xcution.stats.ExecutionStats` when the budget blew
    mid-execution (e.g. during a parallel merge), so the work done up to
    the failure is not lost to diagnostics.
    """

    def __init__(self, message: str, requested_bytes: int = 0, budget_bytes: int = 0):
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
        #: ExecutionStats accumulated up to the failure (None if unknown).
        self.partial_stats = None
