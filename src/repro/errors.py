"""Exception hierarchy for the LevelHeaded reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from planning or resource errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """A parsed query references unknown tables, columns, or types."""


class SchemaError(ReproError):
    """A table schema or ingested data violates the data model.

    Examples: a key attribute with a non-integer type, an annotation
    referenced as a join attribute, or mismatched column lengths.
    """


class UnsupportedQueryError(ReproError):
    """The query is valid SQL but outside the supported subset.

    LevelHeaded (the paper) supports a subset of SQL 2008; this
    reproduction raises this error rather than silently computing a
    wrong answer when a query falls outside that subset.
    """


class PlanningError(ReproError):
    """The query compiler failed to produce a GHD-based plan."""


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class OutOfMemoryBudgetError(ExecutionError):
    """An operator exceeded the configured memory budget.

    The paper reports 'oom' entries for engines whose pairwise join plans
    materialize intermediates beyond physical memory (Table II).  Baseline
    engines in this reproduction enforce an explicit budget so the same
    failure mode is observable deterministically.
    """

    def __init__(self, message: str, requested_bytes: int = 0, budget_bytes: int = 0):
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
