"""The unified query surface: one contract, three topologies, one DSN.

Everything ``repro.connect()`` can return -- the in-process
:class:`~repro.core.engine.LevelHeadedEngine`, the remote
:class:`~repro.client.ReproClient`, the multi-process
:class:`~repro.shard.ShardCoordinator` -- answers the same six calls
with the same signatures:

    ``query(sql, params=, collect_stats=, trace=, timeout_ms=,
    cancel_token=, ...)``, ``prepare(sql)``, ``explain(sql, ...)``,
    ``submit(sql, ...)``, ``debug(what, n=, outcome=)``, ``close()``

Code written against this :class:`QuerySurface` protocol moves between
topologies by changing a connection string, nothing else.  Options a
topology genuinely cannot honor (``profile=`` over the wire, per-query
``config=`` on a shard fleet) raise the typed
:class:`~repro.errors.UnsupportedOnTopology` rather than being
silently dropped.

The DSN grammar (parsed by :func:`parse_dsn`):

    ``local``                      in-process engine (same as no DSN)
    ``local://?approx=POLICY``     in-process with an approx default
    ``tcp://HOST:PORT``            remote frame-protocol server
    ``tcp://HOST:PORT?approx=POLICY``  remote with a session approx default
    ``shard://local?workers=N``    N-worker shard coordinator
    ``shard://local?workers=N&partition=DOMAIN``  explicit partition domain

``approx`` sets the surface's default approximate-query policy
(``never`` / ``allow`` / ``force``, or the CLI spellings ``on`` /
``off`` -- see :mod:`repro.approx`).  Shard DSNs reject it: samples
are not co-partitioned across workers.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple, runtime_checkable
from urllib.parse import parse_qs, urlsplit

from .errors import ReproError

__all__ = ["QuerySurface", "parse_dsn", "SCHEMES"]

SCHEMES = ("local", "tcp", "shard")


@runtime_checkable
class QuerySurface(Protocol):
    """The topology-agnostic query contract behind ``repro.connect()``."""

    def query(self, sql: str, **kwargs): ...

    def prepare(self, sql: str, **kwargs): ...

    def explain(self, sql: str, **kwargs): ...

    def submit(self, sql: str, **kwargs): ...

    def debug(self, what: str, **kwargs) -> Dict: ...

    def close(self) -> None: ...


def parse_dsn(dsn: Optional[str]) -> Tuple[str, Dict[str, object]]:
    """Parse a connection string into ``(scheme, options)``.

    ``None``/``""``/``"local"`` mean the in-process engine.  Raises
    :class:`ReproError` on unknown schemes, malformed addresses, or
    unrecognized query parameters -- a typo'd option must never be
    silently ignored.
    """
    if dsn is None or dsn == "" or dsn == "local":
        return "local", {}
    if "://" not in dsn:
        raise ReproError(
            f"malformed connection string {dsn!r}: expected 'local', "
            f"'tcp://HOST:PORT', or 'shard://local?workers=N'"
        )
    parts = urlsplit(dsn)
    scheme = parts.scheme
    params = {
        name: values[-1] for name, values in parse_qs(parts.query).items()
    }
    if scheme == "local":
        _reject_unknown(params, ("approx",), dsn)
        return "local", _approx_option(params, dsn)
    if scheme == "tcp":
        if not parts.hostname or parts.port is None:
            raise ReproError(
                f"malformed tcp DSN {dsn!r}: expected tcp://HOST:PORT"
            )
        _reject_unknown(params, ("approx",), dsn)
        options: Dict[str, object] = {"host": parts.hostname, "port": parts.port}
        options.update(_approx_option(params, dsn))
        return "tcp", options
    if scheme == "shard":
        if parts.netloc not in ("", "local"):
            raise ReproError(
                f"shard DSN {dsn!r}: only shard://local is supported "
                f"(workers are spawned on this machine)"
            )
        _reject_unknown(params, ("workers", "partition", "start_method"), dsn)
        options: Dict[str, object] = {}
        if "workers" in params:
            try:
                options["workers"] = int(params["workers"])
            except ValueError:
                raise ReproError(
                    f"shard DSN {dsn!r}: workers must be an integer"
                ) from None
            if options["workers"] < 1:
                raise ReproError(f"shard DSN {dsn!r}: workers must be >= 1")
        if "partition" in params:
            options["partition"] = params["partition"]
        if "start_method" in params:
            options["start_method"] = params["start_method"]
        return "shard", options
    raise ReproError(
        f"unknown connection scheme {scheme!r} in {dsn!r} "
        f"(one of: {', '.join(SCHEMES)})"
    )


def _approx_option(params: Dict, dsn: str) -> Dict[str, object]:
    """Validate and normalize a DSN ``approx=`` parameter, if present."""
    if "approx" not in params:
        return {}
    from .approx import APPROX_POLICIES, normalize_policy

    try:
        return {"approx": normalize_policy(params["approx"], default="never")}
    except ReproError:
        raise ReproError(
            f"DSN {dsn!r}: approx must be one of "
            f"{', '.join(APPROX_POLICIES)} (or on/off), "
            f"got {params['approx']!r}"
        ) from None


def _reject_unknown(params: Dict, allowed: Tuple[str, ...], dsn: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ReproError(
            f"unknown DSN parameter(s) {', '.join(unknown)} in {dsn!r}"
            + (f" (allowed: {', '.join(allowed)})" if allowed else "")
        )
