"""SQL front-end: lexer, parser, expression evaluation, and binding.

Implements the SQL 2008 subset of Section III-A.  ``parse`` produces an
AST, ``bind`` resolves it against a catalog into a :class:`BoundQuery`
whose join vertices feed the hypergraph translation of Section IV-A.
"""

from .ast import (
    AGGREGATE_FUNCS,
    AggCall,
    Between,
    BinOp,
    BoolOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    NotOp,
    OrderKey,
    SelectItem,
    SelectStmt,
    TableRef,
    UnaryOp,
    collect_aggregates,
    collect_columns,
    contains_aggregate,
    walk,
)
from .binder import BoundQuery, JoinVertex, bind
from .expressions import evaluate, extract_date_part, like_mask
from .lexer import Token, TokenStream, tokenize
from .parser import parse

__all__ = [
    "parse",
    "bind",
    "BoundQuery",
    "JoinVertex",
    "evaluate",
    "extract_date_part",
    "like_mask",
    "tokenize",
    "Token",
    "TokenStream",
    "AGGREGATE_FUNCS",
    "AggCall",
    "Between",
    "BinOp",
    "BoolOp",
    "CaseExpr",
    "ColumnRef",
    "Comparison",
    "Expr",
    "FuncCall",
    "InList",
    "Like",
    "Literal",
    "NotOp",
    "OrderKey",
    "SelectItem",
    "SelectStmt",
    "TableRef",
    "UnaryOp",
    "collect_aggregates",
    "collect_columns",
    "contains_aggregate",
    "walk",
]
