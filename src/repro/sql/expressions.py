"""Vectorized expression evaluation over numpy columns.

Both engines (the WCOJ engine and the pairwise baseline) evaluate
scalar expressions through this module: filters become boolean masks,
annotation expressions become value arrays, and output expressions map
aggregate slots to result columns.  Aggregate calls are *not* handled
here -- the planner replaces them with slot references first.
"""

from __future__ import annotations

import re
from typing import Callable, Union

import numpy as np

from ..errors import UnsupportedQueryError
from .ast import (
    AggCall,
    Between,
    BinOp,
    BoolOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    NotOp,
    Parameter,
    UnaryOp,
)

Value = Union[np.ndarray, float, int, str, bool]

#: 1970-01-01 as a proleptic-Gregorian ordinal; used to convert stored
#: date ordinals to numpy datetime64 for EXTRACT.
_EPOCH_ORDINAL = 719163


def evaluate(expr: Expr, resolve: Callable[[ColumnRef], Value]) -> Value:
    """Evaluate ``expr``; column references are supplied by ``resolve``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return resolve(expr)
    if isinstance(expr, UnaryOp):
        return -evaluate(expr.operand, resolve)
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, resolve)
        right = evaluate(expr.right, resolve)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return np.true_divide(left, right)
        raise UnsupportedQueryError(f"unknown operator {expr.op}")
    if isinstance(expr, Comparison):
        left = evaluate(expr.left, resolve)
        right = evaluate(expr.right, resolve)
        return _compare(expr.op, left, right)
    if isinstance(expr, Between):
        value = evaluate(expr.expr, resolve)
        low = evaluate(expr.low, resolve)
        high = evaluate(expr.high, resolve)
        mask = (value >= low) & (value <= high)
        return ~mask if expr.negated else mask
    if isinstance(expr, InList):
        value = evaluate(expr.expr, resolve)
        mask = None
        for literal in expr.values:
            hit = _compare("=", value, literal.value)
            mask = hit if mask is None else (mask | hit)
        if mask is None:
            mask = np.zeros(np.shape(value), dtype=bool) if isinstance(value, np.ndarray) else False
        return ~mask if expr.negated else mask
    if isinstance(expr, Like):
        value = evaluate(expr.expr, resolve)
        mask = like_mask(value, expr.pattern)
        return ~mask if expr.negated else mask
    if isinstance(expr, BoolOp):
        parts = [evaluate(op, resolve) for op in expr.operands]
        out = parts[0]
        for part in parts[1:]:
            out = (out & part) if expr.op == "and" else (out | part)
        return out
    if isinstance(expr, NotOp):
        result = evaluate(expr.operand, resolve)
        return ~result if isinstance(result, np.ndarray) else (not result)
    if isinstance(expr, CaseExpr):
        return _evaluate_case(expr, resolve)
    if isinstance(expr, FuncCall):
        return _evaluate_func(expr, resolve)
    if isinstance(expr, AggCall):
        raise UnsupportedQueryError(
            "aggregate encountered during scalar evaluation (planner bug)"
        )
    if isinstance(expr, Parameter):
        raise UnsupportedQueryError(
            f"unbound parameter {expr} reached evaluation -- execute the "
            "statement through engine.prepare(...)/engine.query(sql, params=...)"
        )
    raise UnsupportedQueryError(f"cannot evaluate {type(expr).__name__}")


def _compare(op: str, left: Value, right: Value) -> Value:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise UnsupportedQueryError(f"unknown comparison {op}")


def _evaluate_case(expr: CaseExpr, resolve) -> Value:
    conditions = [evaluate(cond, resolve) for cond, _ in expr.whens]
    results = [evaluate(result, resolve) for _, result in expr.whens]
    default = 0 if expr.else_ is None else evaluate(expr.else_, resolve)
    arrays = [v for v in conditions + results + [default] if isinstance(v, np.ndarray)]
    if not arrays:
        for cond, result in zip(conditions, results):
            if cond:
                return result
        return default
    shape = np.broadcast_shapes(*(a.shape for a in arrays))
    conditions = [np.broadcast_to(np.asarray(c, dtype=bool), shape) for c in conditions]
    results = [np.broadcast_to(np.asarray(r, dtype=np.float64), shape) for r in results]
    default = np.broadcast_to(np.asarray(default, dtype=np.float64), shape)
    return np.select(conditions, results, default)


def _evaluate_func(expr: FuncCall, resolve) -> Value:
    if expr.name in ("extract_year", "extract_month", "extract_day"):
        value = evaluate(expr.args[0], resolve)
        return extract_date_part(value, expr.name.split("_", 1)[1])
    if expr.name == "abs":
        return np.abs(evaluate(expr.args[0], resolve))
    raise UnsupportedQueryError(f"unknown function '{expr.name}'")


def extract_date_part(ordinals: Value, part: str) -> Value:
    """EXTRACT(YEAR/MONTH/DAY FROM date) over stored ordinals."""
    scalar = not isinstance(ordinals, np.ndarray)
    arr = np.asarray(ordinals, dtype=np.int64)
    days = (arr - _EPOCH_ORDINAL).astype("datetime64[D]")
    if part == "year":
        out = days.astype("datetime64[Y]").astype(np.int64) + 1970
    elif part == "month":
        out = days.astype("datetime64[M]").astype(np.int64) % 12 + 1
    else:  # day of month
        month_start = days.astype("datetime64[M]").astype("datetime64[D]")
        out = (days - month_start).astype(np.int64) + 1
    return int(out) if scalar else out


def like_mask(values: Value, pattern: str) -> Value:
    """SQL LIKE over a string array/scalar (``%`` and ``_`` wildcards).

    Common shapes (contains / prefix / suffix / exact) use vectorized
    ``numpy.char`` operations; everything else falls back to a compiled
    regular expression.
    """
    scalar = not isinstance(values, np.ndarray)
    arr = np.asarray(values, dtype=np.str_)
    body = pattern.strip("%")
    simple = "_" not in pattern and "%" not in body
    if simple and pattern.startswith("%") and pattern.endswith("%") and body:
        mask = np.char.find(arr, body) >= 0
    elif simple and pattern.endswith("%"):
        mask = np.char.startswith(arr, body)
    elif simple and pattern.startswith("%"):
        mask = np.char.endswith(arr, body)
    elif simple:
        mask = arr == body
    else:
        regex = re.compile(_like_to_regex(pattern))
        mask = np.array([bool(regex.fullmatch(v)) for v in arr.ravel()]).reshape(arr.shape)
    return bool(mask) if scalar else mask


def _like_to_regex(pattern: str) -> str:
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return "".join(out)
