"""Name resolution and semantic analysis of parsed queries.

The binder resolves table aliases against the catalog, qualifies every
column reference, validates the key/annotation discipline of the data
model (only keys join, only annotations aggregate -- Section III-A),
partitions the WHERE conjuncts into equi-join conditions and per-table
filters, and unions join-connected key columns into *join vertices*,
the attribute equivalence classes that become hypergraph vertices
(Rule 1 of Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import BindError, UnsupportedQueryError
from ..storage.catalog import Catalog
from ..storage.schema import Kind
from ..storage.table import Table
from .ast import (
    AggCall,
    Between,
    BinOp,
    BoolOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    NotOp,
    OrderKey,
    Parameter,
    SelectItem,
    SelectStmt,
    UnaryOp,
    collect_columns,
    contains_aggregate,
)


@dataclass
class JoinVertex:
    """An equivalence class of equi-joined key columns (one hypergraph vertex)."""

    name: str
    members: List[Tuple[str, str]]  # (alias, attribute name)
    domain: str

    def aliases(self) -> List[str]:
        return [alias for alias, _ in self.members]


@dataclass
class BoundQuery:
    """A fully resolved query, ready for hypergraph translation."""

    stmt: SelectStmt
    tables: Dict[str, Table]  # alias -> table, in FROM order
    vertices: List[JoinVertex]
    vertex_of: Dict[Tuple[str, str], str]  # (alias, attr) -> vertex name
    filters: Dict[str, List[Expr]]  # alias -> single-table predicates
    select_items: List[SelectItem]  # qualified
    group_by: List[Expr]  # qualified
    has_equality_selection: Dict[str, bool] = field(default_factory=dict)
    #: post-aggregation clauses; ``having``/order expressions are
    #: qualified, except bare references to select-item aliases which
    #: stay unqualified (they resolve against the output columns).
    having: Optional[Expr] = None
    order_by: List = field(default_factory=list)  # List[OrderKey]
    limit: Optional[int] = None

    @property
    def is_aggregate(self) -> bool:
        return any(contains_aggregate(item.expr) for item in self.select_items)

    def vertex(self, name: str) -> JoinVertex:
        for vertex in self.vertices:
            if vertex.name == name:
                return vertex
        raise KeyError(name)

    def alias_keys(self, alias: str) -> List[str]:
        """In-query key attributes of ``alias`` in schema order."""
        table = self.tables[alias]
        return [
            attr for attr in table.schema.key_names if (alias, attr) in self.vertex_of
        ]

    def edge_vertices(self, alias: str) -> Tuple[str, ...]:
        """The hypergraph vertices of ``alias``'s edge, in schema key order."""
        return tuple(self.vertex_of[(alias, attr)] for attr in self.alias_keys(alias))


def bind(stmt: SelectStmt, catalog: Catalog) -> BoundQuery:
    """Resolve and validate ``stmt`` against ``catalog``."""
    tables = _resolve_tables(stmt, catalog)
    qualify = _make_qualifier(tables)

    select_items = [SelectItem(qualify(item.expr), item.alias) for item in stmt.items]
    group_by = [qualify(expr) for expr in stmt.group_by]
    where = [qualify(expr) for expr in stmt.where]

    join_pairs, filters = _classify_where(where, tables)
    vertices, vertex_of = _build_vertices(
        join_pairs, tables, select_items, group_by, filters
    )
    _validate_output_shape(select_items, group_by)

    output_aliases = {item.output_name for item in select_items}
    qualify_output = _make_qualifier(tables, passthrough=output_aliases)
    having = None
    if stmt.having is not None:
        if not group_by and not any(
            contains_aggregate(item.expr) for item in select_items
        ):
            raise BindError("HAVING requires GROUP BY or aggregates")
        having = qualify_output(stmt.having)
    order_by = [
        OrderKey(qualify_output(key_.expr), key_.descending)
        for key_ in stmt.order_by
    ]

    has_eq = {alias: _has_equality_filter(preds) for alias, preds in filters.items()}
    return BoundQuery(
        stmt=stmt,
        tables=tables,
        vertices=vertices,
        vertex_of=vertex_of,
        filters=filters,
        select_items=select_items,
        group_by=group_by,
        has_equality_selection=has_eq,
        having=having,
        order_by=order_by,
        limit=stmt.limit,
    )


# -- table and column resolution ---------------------------------------------


def _resolve_tables(stmt: SelectStmt, catalog: Catalog) -> Dict[str, Table]:
    tables: Dict[str, Table] = {}
    for ref in stmt.tables:
        if ref.alias in tables:
            raise BindError(f"duplicate table alias '{ref.alias}'")
        if not catalog.has_table(ref.table):
            raise BindError(f"unknown table '{ref.table}'")
        tables[ref.alias] = catalog.table(ref.table)
    return tables


def _make_qualifier(tables: Dict[str, Table], passthrough=frozenset()):
    def resolve_ref(ref: ColumnRef) -> ColumnRef:
        if ref.qualifier is None and ref.name in passthrough:
            return ref  # a select-item alias: resolves against the output
        if ref.qualifier is not None:
            if ref.qualifier not in tables:
                raise BindError(f"unknown table alias '{ref.qualifier}'")
            if not tables[ref.qualifier].schema.has(ref.name):
                raise BindError(
                    f"table '{ref.qualifier}' has no column '{ref.name}'"
                )
            return ref
        owners = [alias for alias, t in tables.items() if t.schema.has(ref.name)]
        if not owners:
            raise BindError(f"unknown column '{ref.name}'")
        if len(owners) > 1:
            raise BindError(f"ambiguous column '{ref.name}' (in {owners})")
        return ColumnRef(owners[0], ref.name)

    def qualify(expr: Expr) -> Expr:
        return _rewrite(expr, resolve_ref)

    return qualify


def _rewrite(expr: Expr, on_column) -> Expr:
    """Rebuild an expression tree, transforming every ColumnRef."""
    if isinstance(expr, ColumnRef):
        return on_column(expr)
    if isinstance(expr, (Literal, Parameter)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.left, on_column), _rewrite(expr.right, on_column))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite(expr.operand, on_column))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(_rewrite(a, on_column) for a in expr.args))
    if isinstance(expr, AggCall):
        arg = None if expr.arg is None else _rewrite(expr.arg, on_column)
        return AggCall(expr.func, arg)
    if isinstance(expr, CaseExpr):
        whens = tuple(
            (_rewrite(c, on_column), _rewrite(r, on_column)) for c, r in expr.whens
        )
        else_ = None if expr.else_ is None else _rewrite(expr.else_, on_column)
        return CaseExpr(whens, else_)
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, _rewrite(expr.left, on_column), _rewrite(expr.right, on_column)
        )
    if isinstance(expr, Between):
        return Between(
            _rewrite(expr.expr, on_column),
            _rewrite(expr.low, on_column),
            _rewrite(expr.high, on_column),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(_rewrite(expr.expr, on_column), expr.values, expr.negated)
    if isinstance(expr, Like):
        return Like(_rewrite(expr.expr, on_column), expr.pattern, expr.negated)
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, tuple(_rewrite(o, on_column) for o in expr.operands))
    if isinstance(expr, NotOp):
        return NotOp(_rewrite(expr.operand, on_column))
    raise UnsupportedQueryError(f"cannot bind {type(expr).__name__}")


# -- WHERE classification ------------------------------------------------------


def _classify_where(where, tables):
    """Split conjuncts into key equi-join pairs and per-alias filters."""
    join_pairs: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
    filters: Dict[str, List[Expr]] = {alias: [] for alias in tables}
    for predicate in where:
        pair = _as_join_condition(predicate, tables)
        if pair is not None:
            join_pairs.append(pair)
            continue
        aliases = {ref.qualifier for ref in collect_columns(predicate)}
        if len(aliases) == 0:
            raise UnsupportedQueryError(f"constant predicate not supported: {predicate}")
        if len(aliases) > 1:
            raise UnsupportedQueryError(
                f"non-equi-join predicate across tables not supported: {predicate}"
            )
        filters[aliases.pop()].append(predicate)
    return join_pairs, filters


def _as_join_condition(predicate, tables):
    if not isinstance(predicate, Comparison) or predicate.op != "=":
        return None
    left, right = predicate.left, predicate.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    if left.qualifier == right.qualifier:
        return None
    left_attr = tables[left.qualifier].schema.attribute(left.name)
    right_attr = tables[right.qualifier].schema.attribute(right.name)
    if left_attr.kind is Kind.KEY and right_attr.kind is Kind.KEY:
        if left_attr.domain_name != right_attr.domain_name:
            raise BindError(
                f"cannot join '{left}' with '{right}': key domains differ "
                f"({left_attr.domain_name} vs {right_attr.domain_name}); declare a "
                "shared domain on both key attributes"
            )
        return ((left.qualifier, left.name), (right.qualifier, right.name))
    if left_attr.kind is Kind.KEY or right_attr.kind is Kind.KEY:
        raise BindError(
            f"cannot join key with annotation: {predicate} "
            "(only keys may partake in joins)"
        )
    raise UnsupportedQueryError(
        f"equality between annotations of different tables not supported: {predicate}"
    )


# -- join vertices ---------------------------------------------------------------


def _build_vertices(join_pairs, tables, select_items, group_by, filters):
    """Union-find over key columns; every in-query key becomes a vertex."""
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def add(member):
        alias, attr_name = member
        attribute = tables[alias].schema.attribute(attr_name)
        if attribute.kind is not Kind.KEY:
            return False
        if member not in parent:
            parent[member] = member
        return True

    for left, right in join_pairs:
        add(left)
        add(right)
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[left_root] = right_root

    # Rule 1: every key referenced anywhere in the query is a vertex.
    referenced: List[ColumnRef] = []
    for item in select_items:
        referenced.extend(collect_columns(item.expr))
    for expr in group_by:
        referenced.extend(collect_columns(expr))
    for predicates in filters.values():
        for predicate in predicates:
            referenced.extend(collect_columns(predicate))
    for ref in referenced:
        add((ref.qualifier, ref.name))

    classes: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
    for member in parent:
        classes.setdefault(find(member), []).append(member)

    vertices: List[JoinVertex] = []
    vertex_of: Dict[Tuple[str, str], str] = {}
    used_names: Dict[str, int] = {}
    for root in sorted(classes, key=lambda m: (m[0], m[1])):
        members = sorted(classes[root])
        domain = tables[members[0][0]].schema.attribute(members[0][1]).domain_name
        base = _suffix_name(members)
        count = used_names.get(base, 0)
        used_names[base] = count + 1
        name = base if count == 0 else f"{base}_{count + 1}"
        vertex = JoinVertex(name, members, domain)
        vertices.append(vertex)
        for member in members:
            vertex_of[member] = name
    return vertices, vertex_of


def _suffix_name(members) -> str:
    """Readable vertex name: the common suffix of member column names.

    TPC-H columns share suffixes (``c_custkey``/``o_custkey`` ->
    ``custkey``); otherwise the first member's column name is used.
    """
    suffixes = {attr.split("_", 1)[1] if "_" in attr else attr for _, attr in members}
    if len(suffixes) == 1:
        return suffixes.pop()
    return members[0][1]


# -- output validation -----------------------------------------------------------


def _validate_output_shape(select_items, group_by):
    has_aggregates = any(contains_aggregate(item.expr) for item in select_items)
    group_strings = {str(expr) for expr in group_by}
    for item in select_items:
        if contains_aggregate(item.expr):
            continue
        if group_by and str(item.expr) not in group_strings:
            raise BindError(
                f"non-aggregate select item '{item.expr}' missing from GROUP BY"
            )
        if not group_by and has_aggregates:
            raise BindError(
                f"select item '{item.expr}' mixes with aggregates but no GROUP BY"
            )
    for expr in group_by:
        if contains_aggregate(expr):
            raise BindError("aggregates are not allowed in GROUP BY")


def _has_equality_filter(predicates) -> bool:
    for predicate in predicates:
        if isinstance(predicate, Comparison) and predicate.op == "=":
            return True
        if isinstance(predicate, InList) and not predicate.negated:
            return True
        if isinstance(predicate, Like) and not predicate.negated:
            if "%" not in predicate.pattern and "_" not in predicate.pattern:
                return True
    return False
