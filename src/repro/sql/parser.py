"""Recursive-descent parser for the supported SQL 2008 subset.

The subset matches what the paper's engine accepts (Section III-A):
SELECT with expressions/aliases, FROM with table aliases (self-joins),
a conjunctive WHERE of equi-joins and filter predicates (comparisons,
BETWEEN, IN, [NOT] LIKE, date and interval literals), GROUP BY, the
aggregates SUM/COUNT/AVG/MIN/MAX, CASE WHEN, and EXTRACT.  HAVING,
ORDER BY, and LIMIT are supported as post-aggregation result operators
(the paper's TPC-H runs omit ORDER BY, and the benchmark queries here
do too).  Subqueries, outer joins, and DISTINCT are rejected.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ParseError, UnsupportedQueryError
from ..storage.schema import parse_date
from .ast import (
    AGGREGATE_FUNCS,
    AggCall,
    Between,
    BinOp,
    BoolOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    NotOp,
    OrderKey,
    Parameter,
    SelectItem,
    SelectStmt,
    TableRef,
    UnaryOp,
)
from .lexer import TokenStream, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_INTERVAL_UNITS = {"day": 1, "month": 30, "year": 365}


def parse(sql: str) -> SelectStmt:
    """Parse one SELECT statement (placeholders allowed; see ``prepare``)."""
    stream = TokenStream(tokenize(sql))
    params = _ParamSlots()
    stream.params = params
    # the optional APPROXIMATE prefix ("APPROXIMATE SELECT ...") opts the
    # statement into sample-based execution (repro.approx); it is not a
    # reserved keyword, so it lexes as a plain identifier
    token = stream.peek()
    if token.kind == "IDENT" and token.value == "approximate":
        stream.next()
    stmt = _parse_select(stream)
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"unexpected trailing input: {token.value!r}", token.position)
    stmt.parameters = params.slots
    return stmt


class _ParamSlots:
    """Assigns statement-wide parameter slots during one parse."""

    def __init__(self):
        self.slots: List[Parameter] = []
        self._named: dict = {}
        self._style: str = ""  # "positional" | "named" once known

    def make(self, text: str, position: int) -> Parameter:
        style = "named" if text.startswith(":") else "positional"
        if self._style and style != self._style:
            raise ParseError(
                "cannot mix positional (?) and named (:name) parameters "
                "in one statement",
                position,
            )
        self._style = style
        if style == "positional":
            slot = Parameter(len(self.slots))
            self.slots.append(slot)
            return slot
        name = text[1:]
        if name not in self._named:
            slot = Parameter(len(self.slots), name)
            self._named[name] = slot
            self.slots.append(slot)
        return self._named[name]


def _parse_select(ts: TokenStream) -> SelectStmt:
    ts.expect_keyword("select")
    if ts.accept_keyword("distinct"):
        raise UnsupportedQueryError("SELECT DISTINCT is not supported")
    items = [_parse_select_item(ts)]
    while ts.accept_op(","):
        items.append(_parse_select_item(ts))

    ts.expect_keyword("from")
    tables = [_parse_table_ref(ts)]
    join_conjuncts: List[Expr] = []
    while True:
        if ts.accept_op(","):
            tables.append(_parse_table_ref(ts))
            continue
        if ts.peek().is_keyword("join") or ts.peek().is_keyword("inner"):
            ts.accept_keyword("inner")
            ts.expect_keyword("join")
            tables.append(_parse_table_ref(ts))
            ts.expect_keyword("on")
            # JOIN ... ON folds into the conjunctive WHERE.
            join_conjuncts.extend(_split_conjuncts(_parse_bool_expr(ts)))
            continue
        break

    where: List[Expr] = join_conjuncts
    if ts.accept_keyword("where"):
        where.extend(_split_conjuncts(_parse_bool_expr(ts)))

    group_by: List[Expr] = []
    if ts.accept_keyword("group"):
        ts.expect_keyword("by")
        group_by.append(_parse_expr(ts))
        while ts.accept_op(","):
            group_by.append(_parse_expr(ts))

    having = None
    if ts.accept_keyword("having"):
        having = _parse_bool_expr(ts)

    order_by: List[OrderKey] = []
    if ts.accept_keyword("order"):
        ts.expect_keyword("by")
        order_by.append(_parse_order_key(ts))
        while ts.accept_op(","):
            order_by.append(_parse_order_key(ts))

    limit = None
    if ts.accept_keyword("limit"):
        token = ts.peek()
        if token.kind != "NUMBER" or "." in token.value:
            raise ParseError("LIMIT requires an integer", token.position)
        ts.next()
        limit = int(token.value)

    return SelectStmt(
        items=items,
        tables=tables,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
    )


def _parse_order_key(ts: TokenStream) -> OrderKey:
    expr = _parse_expr(ts)
    descending = False
    if ts.peek().kind == "IDENT" and ts.peek().value in ("asc", "desc"):
        descending = ts.next().value == "desc"
    return OrderKey(expr, descending)


def _parse_select_item(ts: TokenStream) -> SelectItem:
    expr = _parse_expr(ts)
    alias = None
    if ts.accept_keyword("as"):
        alias = ts.expect_ident().value
    elif ts.peek().kind == "IDENT":
        alias = ts.next().value
    return SelectItem(expr, alias)


def _parse_table_ref(ts: TokenStream) -> TableRef:
    name = ts.expect_ident().value
    alias = name
    if ts.accept_keyword("as"):
        alias = ts.expect_ident().value
    elif ts.peek().kind == "IDENT":
        alias = ts.next().value
    return TableRef(name, alias)


def _split_conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: List[Expr] = []
        for operand in expr.operands:
            out.extend(_split_conjuncts(operand))
        return out
    return [expr]


# -- boolean expressions -----------------------------------------------------


def _parse_bool_expr(ts: TokenStream) -> Expr:
    return _parse_or(ts)


def _parse_or(ts: TokenStream) -> Expr:
    operands = [_parse_and(ts)]
    while ts.accept_keyword("or"):
        operands.append(_parse_and(ts))
    if len(operands) == 1:
        return operands[0]
    return BoolOp("or", tuple(operands))


def _parse_and(ts: TokenStream) -> Expr:
    operands = [_parse_not(ts)]
    while ts.accept_keyword("and"):
        operands.append(_parse_not(ts))
    if len(operands) == 1:
        return operands[0]
    return BoolOp("and", tuple(operands))


def _parse_not(ts: TokenStream) -> Expr:
    if ts.accept_keyword("not"):
        return NotOp(_parse_not(ts))
    return _parse_predicate(ts)


def _parse_predicate(ts: TokenStream) -> Expr:
    left = _parse_expr(ts)
    token = ts.peek()
    if token.kind == "OP" and token.value in _COMPARISON_OPS:
        op = ts.next().value
        if op == "!=":
            op = "<>"
        right = _parse_expr(ts)
        return Comparison(op, left, right)
    negated = False
    if token.is_keyword("not"):
        ts.next()
        negated = True
        token = ts.peek()
    if token.is_keyword("between"):
        ts.next()
        low = _parse_expr(ts)
        ts.expect_keyword("and")
        high = _parse_expr(ts)
        return Between(left, low, high, negated=negated)
    if token.is_keyword("in"):
        ts.next()
        ts.expect_op("(")
        values = [_parse_literal_strict(ts)]
        while ts.accept_op(","):
            values.append(_parse_literal_strict(ts))
        ts.expect_op(")")
        return InList(left, tuple(values), negated=negated)
    if token.is_keyword("like"):
        ts.next()
        pattern = ts.peek()
        if pattern.kind != "STRING":
            raise ParseError("LIKE requires a string pattern", pattern.position)
        ts.next()
        return Like(left, pattern.value, negated=negated)
    if token.is_keyword("is"):
        raise UnsupportedQueryError("IS [NOT] NULL is not supported (no NULLs)")
    if negated:
        raise ParseError("expected BETWEEN/IN/LIKE after NOT", token.position)
    return left


def _parse_literal_strict(ts: TokenStream) -> Literal:
    expr = _parse_expr(ts)
    if not isinstance(expr, Literal):
        raise UnsupportedQueryError("IN lists may only contain literals")
    return expr


# -- arithmetic expressions ----------------------------------------------------


def _parse_expr(ts: TokenStream) -> Expr:
    return _parse_additive(ts)


def _parse_additive(ts: TokenStream) -> Expr:
    left = _parse_multiplicative(ts)
    while True:
        if ts.accept_op("+"):
            left = BinOp("+", left, _parse_multiplicative(ts))
        elif ts.accept_op("-"):
            left = BinOp("-", left, _parse_multiplicative(ts))
        else:
            return left


def _parse_multiplicative(ts: TokenStream) -> Expr:
    left = _parse_unary(ts)
    while True:
        if ts.accept_op("*"):
            left = BinOp("*", left, _parse_unary(ts))
        elif ts.accept_op("/"):
            left = BinOp("/", left, _parse_unary(ts))
        else:
            return left


def _parse_unary(ts: TokenStream) -> Expr:
    if ts.accept_op("-"):
        return UnaryOp("-", _parse_unary(ts))
    if ts.accept_op("+"):
        return _parse_unary(ts)
    return _parse_primary(ts)


def _parse_primary(ts: TokenStream) -> Expr:
    token = ts.peek()

    if token.kind == "NUMBER":
        ts.next()
        value = float(token.value) if "." in token.value else int(token.value)
        return Literal(value, "number")

    if token.kind == "STRING":
        ts.next()
        return Literal(token.value, "string")

    if token.kind == "PARAM":
        ts.next()
        slots = getattr(ts, "params", None)
        if slots is None:
            raise ParseError("parameter placeholder outside a statement", token.position)
        return slots.make(token.value, token.position)

    if token.is_keyword("date"):
        ts.next()
        text = ts.peek()
        if text.kind != "STRING":
            raise ParseError("DATE requires a 'YYYY-MM-DD' string", text.position)
        ts.next()
        try:
            ordinal = parse_date(text.value)
        except ValueError as exc:
            raise ParseError(f"bad date literal: {text.value}", text.position) from exc
        return Literal(ordinal, "date")

    if token.is_keyword("interval"):
        ts.next()
        amount = ts.peek()
        if amount.kind == "STRING":
            ts.next()
            quantity = int(amount.value)
        elif amount.kind == "NUMBER":
            ts.next()
            quantity = int(amount.value)
        else:
            raise ParseError("INTERVAL requires a quantity", amount.position)
        unit = ts.peek()
        if unit.kind != "KEYWORD" or unit.value not in _INTERVAL_UNITS:
            raise ParseError("INTERVAL unit must be DAY/MONTH/YEAR", unit.position)
        ts.next()
        return Literal(quantity * _INTERVAL_UNITS[unit.value], "interval")

    if token.is_keyword("case"):
        return _parse_case(ts)

    if token.is_keyword("extract"):
        ts.next()
        ts.expect_op("(")
        part = ts.peek()
        if part.kind != "KEYWORD" or part.value not in ("year", "month", "day"):
            raise ParseError("EXTRACT part must be YEAR/MONTH/DAY", part.position)
        ts.next()
        ts.expect_keyword("from")
        inner = _parse_expr(ts)
        ts.expect_op(")")
        return FuncCall(f"extract_{part.value}", (inner,))

    if token.kind == "KEYWORD" and token.value in AGGREGATE_FUNCS:
        ts.next()
        ts.expect_op("(")
        if token.value == "count" and ts.accept_op("*"):
            ts.expect_op(")")
            return AggCall("count", None)
        if ts.accept_keyword("distinct"):
            raise UnsupportedQueryError("aggregate DISTINCT is not supported")
        inner = _parse_expr(ts)
        ts.expect_op(")")
        return AggCall(token.value, inner)

    if token.is_keyword("year"):
        ts.next()
        ts.expect_op("(")
        inner = _parse_expr(ts)
        ts.expect_op(")")
        return FuncCall("extract_year", (inner,))

    if token.kind == "IDENT":
        ts.next()
        if ts.accept_op("("):
            args = []
            if not ts.accept_op(")"):
                args.append(_parse_expr(ts))
                while ts.accept_op(","):
                    args.append(_parse_expr(ts))
                ts.expect_op(")")
            return FuncCall(token.value, tuple(args))
        if ts.accept_op("."):
            column = ts.expect_ident().value
            return ColumnRef(token.value, column)
        return ColumnRef(None, token.value)

    if token.kind == "OP" and token.value == "(":
        ts.next()
        inner = _parse_bool_expr(ts)
        ts.expect_op(")")
        return inner

    raise ParseError(f"unexpected token {token.value!r}", token.position)


def _parse_case(ts: TokenStream) -> Expr:
    ts.expect_keyword("case")
    whens: List[Tuple[Expr, Expr]] = []
    while ts.accept_keyword("when"):
        condition = _parse_bool_expr(ts)
        ts.expect_keyword("then")
        result = _parse_expr(ts)
        whens.append((condition, result))
    if not whens:
        raise ParseError("CASE requires at least one WHEN", ts.peek().position)
    else_ = None
    if ts.accept_keyword("else"):
        else_ = _parse_expr(ts)
    ts.expect_keyword("end")
    return CaseExpr(tuple(whens), else_)
