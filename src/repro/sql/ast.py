"""Abstract syntax tree for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

AGGREGATE_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference: ``alias.column``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, or date (stored as an ordinal int)."""

    value: object
    type_hint: str = "number"  # number | string | date | interval | null

    def __str__(self) -> str:
        if self.type_hint == "string":
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Parameter:
    """A prepared-statement placeholder: positional ``?`` or named ``:x``.

    ``index`` is the statement-wide parameter slot (0-based).  For
    positional parameters every occurrence gets a fresh slot; every
    occurrence of the same ``:name`` shares one slot.  Parameters are
    replaced by :class:`Literal` values at execution time -- one must
    never survive into plan execution.
    """

    index: int
    name: Optional[str] = None

    def __str__(self) -> str:
        return f":{self.name}" if self.name is not None else "?"


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # -
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class FuncCall:
    """Scalar function call; ``extract_year(x)`` etc."""

    name: str
    args: Tuple["Expr", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class AggCall:
    """Aggregate function; ``arg`` is None for COUNT(*)."""

    func: str
    arg: Optional["Expr"]

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class CaseExpr:
    whens: Tuple[Tuple["Expr", "Expr"], ...]  # (condition, result)
    else_: Optional["Expr"]

    def __str__(self) -> str:
        parts = " ".join(f"when {c} then {r}" for c, r in self.whens)
        tail = f" else {self.else_}" if self.else_ is not None else ""
        return f"case {parts}{tail} end"


@dataclass(frozen=True)
class Comparison:
    op: str  # = <> < <= > >=
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False

    def __str__(self) -> str:
        neg = "not " if self.negated else ""
        return f"({self.expr} {neg}between {self.low} and {self.high})"


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    values: Tuple[Literal, ...]
    negated: bool = False

    def __str__(self) -> str:
        neg = "not " if self.negated else ""
        inner = ", ".join(map(str, self.values))
        return f"({self.expr} {neg}in ({inner}))"


@dataclass(frozen=True)
class Like:
    expr: "Expr"
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        neg = "not " if self.negated else ""
        return f"({self.expr} {neg}like '{self.pattern}')"


@dataclass(frozen=True)
class BoolOp:
    op: str  # and | or
    operands: Tuple["Expr", ...]

    def __str__(self) -> str:
        return "(" + f" {self.op} ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class NotOp:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(not {self.operand})"


Expr = Union[
    ColumnRef,
    Literal,
    Parameter,
    BinOp,
    UnaryOp,
    FuncCall,
    AggCall,
    CaseExpr,
    Comparison,
    Between,
    InList,
    Like,
    BoolOp,
    NotOp,
]


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str

    def __str__(self) -> str:
        return self.table if self.table == self.alias else f"{self.table} as {self.alias}"


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key: an expression (or output alias) + direction."""

    expr: "Expr"
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} {'desc' if self.descending else 'asc'}"


@dataclass
class SelectStmt:
    """A parsed SELECT: items, tables, conjunctive WHERE, GROUP BY,
    plus the post-aggregation clauses HAVING / ORDER BY / LIMIT."""

    items: List[SelectItem]
    tables: List[TableRef]
    where: List[Expr] = field(default_factory=list)
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderKey] = field(default_factory=list)
    limit: Optional[int] = None
    #: prepared-statement placeholders in slot order (one entry per
    #: distinct slot; positional ``?`` markers each get their own slot).
    parameters: List[Parameter] = field(default_factory=list)


# -- tree walking helpers ----------------------------------------------------


def children(expr: Expr) -> Sequence[Expr]:
    """The direct sub-expressions of ``expr``."""
    if isinstance(expr, BinOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, FuncCall):
        return expr.args
    if isinstance(expr, AggCall):
        return (expr.arg,) if expr.arg is not None else ()
    if isinstance(expr, CaseExpr):
        parts: List[Expr] = []
        for cond, result in expr.whens:
            parts.extend((cond, result))
        if expr.else_ is not None:
            parts.append(expr.else_)
        return tuple(parts)
    if isinstance(expr, Comparison):
        return (expr.left, expr.right)
    if isinstance(expr, Between):
        return (expr.expr, expr.low, expr.high)
    if isinstance(expr, InList):
        return (expr.expr,) + expr.values
    if isinstance(expr, Like):
        return (expr.expr,)
    if isinstance(expr, BoolOp):
        return expr.operands
    if isinstance(expr, NotOp):
        return (expr.operand,)
    return ()


def walk(expr: Expr):
    """Yield ``expr`` and every descendant, pre-order."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def collect_columns(expr: Expr) -> List[ColumnRef]:
    """All column references in ``expr``, in traversal order."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]


def collect_aggregates(expr: Expr) -> List[AggCall]:
    """All aggregate calls in ``expr``."""
    return [node for node in walk(expr) if isinstance(node, AggCall)]


def collect_parameters(expr: Expr) -> List[Parameter]:
    """All prepared-statement placeholders in ``expr``."""
    return [node for node in walk(expr) if isinstance(node, Parameter)]


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggCall) for node in walk(expr))
