"""Post-aggregation result operators: HAVING, ORDER BY, LIMIT.

These act on the final result columns, after grouping and output
expression evaluation, so they are shared verbatim by the WCOJ engine
and the pairwise baseline.  Sorting is stable and supports mixed
numeric/string keys via factorized sort codes (descending negates the
codes, preserving stability).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from .ast import Expr
from .expressions import evaluate


def _sort_codes(values: np.ndarray, descending: bool) -> np.ndarray:
    """Factorize values into integer codes usable by lexsort."""
    arr = np.asarray(values)
    _uniques, codes = np.unique(arr, return_inverse=True)
    return -codes if descending else codes


def result_row_index(
    resolve: Callable,
    n_rows: int,
    having: Optional[Expr],
    order_keys: Sequence[Tuple[Expr, bool]],
    limit: Optional[int],
) -> Optional[np.ndarray]:
    """The row selection/order the clauses imply, or None for identity.

    ``resolve`` maps column references (aggregate/group refs and output
    aliases) to full-length result arrays.
    """
    if having is None and not order_keys and limit is None:
        return None
    index = np.arange(n_rows)
    if having is not None:
        mask = np.asarray(evaluate(having, resolve), dtype=bool)
        if mask.ndim == 0:
            mask = np.full(n_rows, bool(mask))
        index = index[mask]
    if order_keys:
        code_columns = []
        for expr, descending in order_keys:
            values = np.asarray(evaluate(expr, resolve))
            if values.ndim == 0:
                values = np.full(n_rows, values)
            code_columns.append(_sort_codes(values, descending)[index])
        # lexsort treats the LAST key as primary; reverse for SQL order
        index = index[np.lexsort(tuple(reversed(code_columns)))]
    if limit is not None:
        index = index[: max(0, limit)]
    return index


def make_result_resolver(env: dict, outputs: dict) -> Callable:
    """Resolver for HAVING/ORDER BY: internal refs first, then aliases."""

    def resolve(ref):
        if ref.qualifier is None:
            if ref.name in env:
                return env[ref.name]
            if ref.name in outputs:
                return outputs[ref.name]
        text = str(ref)
        if text in env:
            return env[text]
        raise ExecutionError(
            f"ORDER BY/HAVING reference '{ref}' is neither an output column "
            "nor a group/aggregate of this query"
        )

    return resolve
