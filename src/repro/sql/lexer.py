"""SQL tokenizer for the supported SQL 2008 subset (Section III-A)."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

KEYWORDS = frozenset(
    """
    select from where group by as and or not between in like case when then
    else end sum count avg min max date extract year month day interval is
    null join inner on order limit having distinct
    """.split()
)


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, KEYWORD, NUMBER, STRING, PARAM, OP, EOF
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<param>\?|:[A-Za-z_][A-Za-z_0-9]*)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|\.|\+|-|\*|/)
    """,
    re.VERBOSE,
)


def tokenize(sql: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on unknown input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r}", position=pos)
        if match.lastgroup == "ws":
            pos = match.end()
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token("NUMBER", text, pos))
        elif match.lastgroup == "param":
            # ``?`` (positional) or ``:name`` (named) parameter markers
            # for prepared statements; the value keeps the literal text.
            tokens.append(Token("PARAM", text.lower(), pos))
        elif match.lastgroup == "string":
            tokens.append(Token("STRING", text[1:-1].replace("''", "'"), pos))
        elif match.lastgroup == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("KEYWORD", lowered, pos))
            else:
                tokens.append(Token("IDENT", lowered, pos))
        else:
            tokens.append(Token("OP", text, pos))
        pos = match.end()
    tokens.append(Token("EOF", "", len(sql)))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.next()
            return True
        return False

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "OP" and token.value == op:
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()}, got {token.value!r}", token.position)
        return self.next()

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if token.kind != "OP" or token.value != op:
            raise ParseError(f"expected {op!r}, got {token.value!r}", token.position)
        return self.next()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "IDENT":
            raise ParseError(f"expected identifier, got {token.value!r}", token.position)
        return self.next()

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"


def iter_tokens(sql: str) -> Iterator[Token]:
    return iter(tokenize(sql))
