"""Prepared-statement parameters: typed slots, binding, substitution.

A parsed statement may contain :class:`~repro.sql.ast.Parameter`
placeholders (``?`` positional or ``:name`` named).  This module turns
them into *typed parameter slots* at bind time -- the expected type is
inferred from the column each placeholder compares against -- and, at
execution time, substitutes caller-supplied values back into the AST as
properly typed :class:`~repro.sql.ast.Literal` constants.  It also
provides the token-level SQL normalization the plan cache keys on.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import BindError, UnsupportedQueryError
from ..storage.schema import AttrType, parse_date
from .ast import (
    Between,
    BinOp,
    BoolOp,
    CaseExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    Like,
    Literal,
    NotOp,
    OrderKey,
    Parameter,
    SelectItem,
    SelectStmt,
    UnaryOp,
    collect_columns,
    collect_parameters,
    walk,
)
from .lexer import tokenize


@dataclass(frozen=True)
class ParamSlot:
    """One typed parameter slot of a prepared statement."""

    index: int
    name: Optional[str]  # None for positional slots
    type_hint: str  # number | string | date

    @property
    def display(self) -> str:
        return f":{self.name}" if self.name is not None else f"?{self.index + 1}"


ParamValues = Union[Sequence, Mapping[str, object], None]


# ---------------------------------------------------------------------------
# slot typing (bind time)
# ---------------------------------------------------------------------------

_TYPE_OF_ATTR = {
    AttrType.STRING: "string",
    AttrType.DATE: "date",
}


def infer_param_slots(bound) -> Tuple[ParamSlot, ...]:
    """Type every placeholder of a bound query from its comparison partner.

    Placeholders are selection constants: they may appear only inside
    single-table WHERE predicates (and join-key positions make no sense
    for them).  Each slot's expected type comes from the column on the
    other side of its comparison; placeholders in pure arithmetic
    contexts default to ``number``.
    """
    slots: Dict[int, ParamSlot] = {}
    for predicates in bound.filters.values():
        for predicate in predicates:
            _type_predicate_params(predicate, bound, slots)
    _reject_params_outside_filters(bound, slots)
    return tuple(slots[i] for i in sorted(slots))


def _column_type(bound, ref: ColumnRef) -> str:
    attribute = bound.tables[ref.qualifier].schema.attribute(ref.name)
    return _TYPE_OF_ATTR.get(attribute.type, "number")


def _partner_type(bound, exprs: Sequence[Expr]) -> str:
    for expr in exprs:
        columns = collect_columns(expr)
        if columns:
            return _column_type(bound, columns[0])
    return "number"


def _type_predicate_params(expr: Expr, bound, slots: Dict[int, ParamSlot]) -> None:
    if isinstance(expr, Comparison):
        _assign(slots, expr.left, _partner_type(bound, [expr.right]))
        _assign(slots, expr.right, _partner_type(bound, [expr.left]))
        return
    if isinstance(expr, Between):
        bound_type = _partner_type(bound, [expr.expr])
        _assign(slots, expr.low, bound_type)
        _assign(slots, expr.high, bound_type)
        _assign(slots, expr.expr, _partner_type(bound, [expr.low, expr.high]))
        return
    if isinstance(expr, BoolOp):
        for operand in expr.operands:
            _type_predicate_params(operand, bound, slots)
        return
    if isinstance(expr, NotOp):
        _type_predicate_params(expr.operand, bound, slots)
        return
    # CASE / standalone function predicate: parameters inside default
    # to numeric slots.
    _assign(slots, expr, "number")


def _assign(slots: Dict[int, ParamSlot], expr: Expr, type_hint: str) -> None:
    """Type every still-untyped parameter inside ``expr`` as ``type_hint``.

    The partner type propagates through arithmetic: in
    ``o_orderdate < ? + 5`` the placeholder compares against a date
    column and gets the ``date`` slot type.
    """
    for node in walk(expr):
        if isinstance(node, Parameter) and node.index not in slots:
            slots[node.index] = ParamSlot(node.index, node.name, type_hint)


def _reject_params_outside_filters(bound, slots: Dict[int, ParamSlot]) -> None:
    """Placeholders are only supported as WHERE selection constants."""
    clauses: List[Tuple[str, Optional[Expr]]] = [
        ("HAVING", bound.having),
    ]
    clauses.extend(("SELECT", item.expr) for item in bound.select_items)
    clauses.extend(("GROUP BY", expr) for expr in bound.group_by)
    clauses.extend(("ORDER BY", key.expr) for key in bound.order_by)
    for clause, expr in clauses:
        if expr is None:
            continue
        if collect_parameters(expr):
            raise UnsupportedQueryError(
                f"parameter placeholders are only supported in WHERE "
                f"predicates, not in {clause}"
            )
    declared = {p.index for p in bound.stmt.parameters}
    if declared - set(slots):
        missing = sorted(declared - set(slots))
        raise UnsupportedQueryError(
            f"parameter slot(s) {missing} appear outside WHERE predicates "
            "(only selection constants may be parameterized)"
        )


# ---------------------------------------------------------------------------
# value binding (execution time)
# ---------------------------------------------------------------------------


def bind_param_values(
    params: ParamValues, slots: Sequence[ParamSlot]
) -> Dict[int, Literal]:
    """Coerce caller-supplied values into typed literals, one per slot."""
    if not slots:
        if params:
            raise BindError("statement takes no parameters")
        return {}
    named = any(slot.name is not None for slot in slots)
    if params is None:
        raise BindError(
            f"statement has {len(slots)} parameter(s) but none were supplied"
        )
    out: Dict[int, Literal] = {}
    if named:
        if not isinstance(params, Mapping):
            raise BindError("named parameters require a mapping of values")
        unknown = set(params) - {slot.name for slot in slots}
        if unknown:
            raise BindError(f"unknown parameter name(s): {sorted(unknown)}")
        for slot in slots:
            if slot.name not in params:
                raise BindError(f"missing value for parameter :{slot.name}")
            out[slot.index] = _coerce(params[slot.name], slot)
        return out
    if isinstance(params, Mapping):
        raise BindError("positional parameters require a sequence of values")
    values = list(params)
    if len(values) != len(slots):
        raise BindError(
            f"statement has {len(slots)} parameter(s), got {len(values)} value(s)"
        )
    for slot, value in zip(slots, values):
        out[slot.index] = _coerce(value, slot)
    return out


def _coerce(value, slot: ParamSlot) -> Literal:
    if slot.type_hint == "string":
        if not isinstance(value, str):
            raise BindError(
                f"parameter {slot.display} expects a string, got {type(value).__name__}"
            )
        return Literal(value, "string")
    if slot.type_hint == "date":
        if isinstance(value, datetime.date):
            return Literal(value.toordinal(), "date")
        if isinstance(value, str):
            try:
                return Literal(parse_date(value), "date")
            except ValueError as exc:
                raise BindError(
                    f"parameter {slot.display} expects a 'YYYY-MM-DD' date: {value!r}"
                ) from exc
        if isinstance(value, (int,)) and not isinstance(value, bool):
            return Literal(int(value), "date")  # a pre-computed ordinal
        raise BindError(
            f"parameter {slot.display} expects a date, got {type(value).__name__}"
        )
    # number
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BindError(
            f"parameter {slot.display} expects a number, got {type(value).__name__}"
        )
    return Literal(value, "number")


def param_cache_token(literals: Dict[int, Literal]) -> Tuple:
    """A hashable token of bound parameter values, for plan-cache keys."""
    return tuple(
        (index, literals[index].type_hint, literals[index].value)
        for index in sorted(literals)
    )


# ---------------------------------------------------------------------------
# substitution
# ---------------------------------------------------------------------------


def substitute_parameters(stmt: SelectStmt, literals: Dict[int, Literal]) -> SelectStmt:
    """A copy of ``stmt`` with every placeholder replaced by its literal."""

    def sub(expr: Optional[Expr]) -> Optional[Expr]:
        return None if expr is None else _substitute_expr(expr, literals)

    return SelectStmt(
        items=[SelectItem(sub(item.expr), item.alias) for item in stmt.items],
        tables=list(stmt.tables),
        where=[sub(expr) for expr in stmt.where],
        group_by=[sub(expr) for expr in stmt.group_by],
        having=sub(stmt.having),
        order_by=[OrderKey(sub(key.expr), key.descending) for key in stmt.order_by],
        limit=stmt.limit,
        parameters=[],
    )


def _substitute_expr(expr: Expr, literals: Dict[int, Literal]) -> Expr:
    if isinstance(expr, Parameter):
        try:
            return literals[expr.index]
        except KeyError:
            raise BindError(f"no value bound for parameter {expr}") from None
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute_expr(expr.left, literals),
            _substitute_expr(expr.right, literals),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _substitute_expr(expr.operand, literals))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_substitute_expr(a, literals) for a in expr.args)
        )
    if isinstance(expr, CaseExpr):
        whens = tuple(
            (_substitute_expr(c, literals), _substitute_expr(r, literals))
            for c, r in expr.whens
        )
        else_ = None if expr.else_ is None else _substitute_expr(expr.else_, literals)
        return CaseExpr(whens, else_)
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            _substitute_expr(expr.left, literals),
            _substitute_expr(expr.right, literals),
        )
    if isinstance(expr, Between):
        return Between(
            _substitute_expr(expr.expr, literals),
            _substitute_expr(expr.low, literals),
            _substitute_expr(expr.high, literals),
            expr.negated,
        )
    if isinstance(expr, InList):
        return InList(_substitute_expr(expr.expr, literals), expr.values, expr.negated)
    if isinstance(expr, Like):
        return Like(_substitute_expr(expr.expr, literals), expr.pattern, expr.negated)
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op, tuple(_substitute_expr(o, literals) for o in expr.operands)
        )
    if isinstance(expr, NotOp):
        return NotOp(_substitute_expr(expr.operand, literals))
    from .ast import AggCall

    if isinstance(expr, AggCall):
        arg = None if expr.arg is None else _substitute_expr(expr.arg, literals)
        return AggCall(expr.func, arg)
    return expr


# ---------------------------------------------------------------------------
# SQL normalization (plan-cache keys)
# ---------------------------------------------------------------------------


def normalize_sql(sql: str) -> str:
    """A whitespace/case-insensitive canonical form of ``sql``.

    Re-serializes the token stream: keywords and identifiers are already
    lower-cased by the lexer, string literals keep their case, comments
    and whitespace differences disappear.  Two queries with the same
    normalized form compile to the same plan (given equal catalog
    versions and engine config), which is exactly what the plan cache
    keys on.
    """
    parts: List[str] = []
    for token in tokenize(sql):
        if token.kind == "EOF":
            continue
        if token.kind == "STRING":
            parts.append("'" + token.value.replace("'", "''") + "'")
        else:
            parts.append(token.value)
    return " ".join(parts)
