"""The engine's public core: :class:`LevelHeadedEngine`, results, governance."""

from .engine import LevelHeadedEngine
from .governor import (
    CancelToken,
    Governor,
    QueryHandle,
    cancel_scope,
    current_cancel,
    retry_admission,
)
from .result import ResultTable

__all__ = [
    "LevelHeadedEngine",
    "ResultTable",
    "CancelToken",
    "Governor",
    "QueryHandle",
    "cancel_scope",
    "current_cancel",
    "retry_admission",
]
