"""The engine's public core: :class:`LevelHeadedEngine` and results."""

from .engine import LevelHeadedEngine
from .result import ResultTable

__all__ = ["LevelHeadedEngine", "ResultTable"]
