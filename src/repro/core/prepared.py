"""Prepared statements: compile once, execute many times.

``engine.prepare(sql)`` front-loads the compile pipeline: the SQL is
parsed and bound immediately (catching syntax and name errors at
prepare time), parameter placeholders become typed slots, and -- for
statements without parameters -- the physical plan is built eagerly and
captured together with the catalog key-domain versions it encodes.

``execute(params)`` then substitutes values into the selection
constants and runs the plan.  Plans are shared with the engine's
:class:`~repro.core.plan_cache.PlanCache` (same keys), so a prepared
statement and an ad-hoc ``engine.query()`` of the same SQL reuse each
other's compilations.  When a catalog registration bumps a domain
version, the captured plan is invalidated and the next execution
re-validates and recompiles automatically against the re-coded
dictionaries -- counted in :attr:`recompiles`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from ..obs import NULL_TRACER, Tracer, next_query_id
from ..query.translate import translate
from ..sql.binder import bind
from ..sql.params import (
    ParamValues,
    bind_param_values,
    infer_param_slots,
    normalize_sql,
    param_cache_token,
    substitute_parameters,
)
from ..sql.parser import parse
from ..xcution.plan import EngineConfig, PhysicalPlan, build_plan
from .governor import CancelToken, cancel_scope, current_admission_session
from .plan_cache import INVALIDATED, MISS, REOPTIMIZED


class PreparedStatement:
    """One compiled statement bound to an engine.

    Create through :meth:`LevelHeadedEngine.prepare`, not directly.
    """

    def __init__(self, engine, sql: str, config: Optional[EngineConfig] = None):
        self._engine = engine
        self.sql = sql
        self.normalized_sql = normalize_sql(sql)
        self.config = config if config is not None else engine.config
        self._stmt = parse(sql)
        bound = bind(self._stmt, engine.catalog)
        #: typed parameter slots in statement order (empty when the SQL
        #: has no placeholders).
        self.param_slots = infer_param_slots(bound)
        #: total ``execute`` calls.
        self.executions = 0
        #: compiles beyond the first for a given parameter set --
        #: eviction refills plus catalog-version invalidations.
        self.recompiles = 0
        self._seen_keys = set()
        self._last_plan: Optional[PhysicalPlan] = None
        #: per-policy sibling statements minted by ``execute(approx=...)``
        #: overrides, so one prepared handle serves both exact and
        #: approximate runs without recompiling per call.
        self._approx_variants: dict = {}
        if not self.param_slots:
            # No placeholders: capture the compiled plan (and the domain
            # versions it was built against) right now.
            self._plan_for({})

    # -- compilation ---------------------------------------------------------

    def _cache_key(self, literals) -> Tuple:
        key = (
            self.normalized_sql,
            param_cache_token(literals),
            self.config.fingerprint(),
        )
        if self.config.approx == "force":
            # match the engine's keying: sample creation/drop re-keys
            # approximate plans without flushing exact ones
            key = key + (self._engine.catalog.samples_epoch,)
        return key

    def _plan_for(
        self, literals, tracer=NULL_TRACER
    ) -> Tuple[PhysicalPlan, str, Tuple]:
        engine = self._engine
        key = self._cache_key(literals)
        with tracer.span("plan_cache.lookup") as span:
            plan, outcome = engine.plan_cache.lookup(key, engine.catalog)
            span.set(outcome=outcome)
        if plan is None:
            corrections = (
                engine.plan_cache.corrections(key) if outcome == REOPTIMIZED else {}
            )
            with tracer.span("parse"):
                stmt = (
                    substitute_parameters(self._stmt, literals)
                    if self._stmt.parameters
                    else self._stmt
                )
            approx_spec = None
            if self.config.approx == "force":
                from ..approx import maybe_rewrite

                with tracer.span("approx.rewrite"):
                    stmt, approx_spec = maybe_rewrite(stmt, engine.catalog)
            with tracer.span("bind"):
                bound = bind(stmt, engine.catalog)
            with tracer.span("translate"):
                compiled = translate(bound)
            with tracer.span("physical_plan"):
                plan = build_plan(
                    compiled, self.config, tracer=tracer, feedback=corrections
                )
            plan.approx = approx_spec
            engine.plan_cache.store(key, plan)
            if outcome == REOPTIMIZED:
                engine.metrics.inc("plan_reoptimizations")
            if key in self._seen_keys:
                self.recompiles += 1
        self._seen_keys.add(key)
        self._last_plan = plan
        return plan, outcome, key

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        params: ParamValues = None,
        collect_stats: bool = False,
        trace: bool = False,
        profile: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
        partial: bool = False,
        query_id: Optional[str] = None,
        approx=None,
    ):
        """Run the statement with ``params`` bound to its placeholders.

        ``params`` is a sequence for positional (``?``) placeholders or
        a mapping for named (``:name``) ones; omit it for statements
        without placeholders.  Returns a
        :class:`~repro.core.result.ResultTable`; with
        ``collect_stats=True`` its ``.stats`` attribute carries the
        executor counters plus this call's plan-cache outcome, with
        ``trace=True`` its ``.trace`` carries the lifecycle span tree,
        and with ``profile=True`` its ``.profile`` carries the
        per-trie-level kernel profile.  ``timeout_ms`` /
        ``cancel_token`` govern the run exactly like
        :meth:`LevelHeadedEngine.query`, including admission when the
        engine has a governor.

        ``approx`` overrides this statement's configured policy for one
        call: ``"force"``/``True`` runs on samples, ``"never"``/``False``
        pins exact.  (The governor's degrade-to-approximate rung applies
        to ad-hoc ``engine.query`` calls, not prepared executions.)
        """
        if approx is not None:
            from ..approx import normalize_policy

            policy = normalize_policy(approx, default=self.config.approx)
            if policy != self.config.approx:
                variant = self._approx_variants.get(policy)
                if variant is None:
                    import dataclasses

                    variant = PreparedStatement(
                        self._engine,
                        self.sql,
                        config=dataclasses.replace(self.config, approx=policy),
                    )
                    self._approx_variants[policy] = variant
                return variant.execute(
                    params,
                    collect_stats=collect_stats,
                    trace=trace,
                    profile=profile,
                    timeout_ms=timeout_ms,
                    cancel_token=cancel_token,
                    partial=partial,
                    query_id=query_id,
                )
        literals = bind_param_values(params, self.param_slots)
        engine = self._engine
        token = engine._make_token(timeout_ms, cancel_token)
        cached = engine.governor is not None and engine.plan_cache.peek(
            self._cache_key(literals), engine.catalog
        )
        tracer = (
            Tracer()
            if (trace or token is not None or engine._forces_trace())
            else NULL_TRACER
        )
        query_id = query_id or next_query_id()
        entry = engine.inflight.register(
            query_id, self.sql, session=current_admission_session()
        )
        slot = None
        try:
            with cancel_scope(token), tracer.span("query") as qspan:
                qspan.set(query_id=query_id)
                with tracer.span("admission.wait") as aspan:
                    slot = engine._admit(cached=cached, token=token, entry=entry)
                    if slot is not None:
                        aspan.set(
                            queued=slot.queued,
                            waited_ms=round(slot.waited_seconds * 1000, 3),
                        )
                entry.phase = "compile"
                t0 = time.perf_counter()
                with tracer.span("compile"):
                    plan, outcome, key = self._plan_for(literals, tracer)
                compile_seconds = (
                    time.perf_counter() - t0
                    if outcome in (MISS, INVALIDATED, REOPTIMIZED)
                    else None
                )
                self.executions += 1
                return engine._run_plan(
                    plan,
                    outcome,
                    collect_stats=collect_stats,
                    tracer=tracer,
                    compile_seconds=compile_seconds,
                    profile=profile,
                    sql=self.sql,
                    expose_trace=trace,
                    cancel=token,
                    slot=slot,
                    cache_key=key,
                    query_id=query_id,
                    inflight=entry,
                    partial=partial,
                )
        except BaseException as exc:
            engine._note_query_failure(exc, entry)
            raise
        finally:
            engine.inflight.finish(query_id)
            engine._release(slot)

    __call__ = execute

    def explain(
        self,
        params: ParamValues = None,
        analyze: bool = False,
        format: str = "text",
    ):
        """Describe (and with ``analyze=True`` run) the statement's plan."""
        literals = bind_param_values(params, self.param_slots)
        plan, outcome, _ = self._plan_for(literals)
        return self._engine._explain_plan(plan, outcome, analyze=analyze, format=format)

    # -- introspection -------------------------------------------------------

    @property
    def plan(self) -> Optional[PhysicalPlan]:
        """The most recently compiled plan (None before first param bind)."""
        return self._last_plan

    @property
    def is_current(self) -> bool:
        """Whether the captured plan is still valid against the catalog."""
        return self._last_plan is not None and self._last_plan.is_current(
            self._engine.catalog
        )

    def __repr__(self) -> str:
        return (
            f"PreparedStatement({self.sql!r}, params={len(self.param_slots)}, "
            f"executions={self.executions}, recompiles={self.recompiles})"
        )
