"""A versioned LRU cache of compiled physical plans.

LevelHeaded's compile pipeline (parse → bind → translate → GHD → cost
-ordered WCOJ plan, Sections III-IV) is pure given three inputs: the
SQL text, the engine configuration, and the catalog's key-domain
dictionaries.  Repeated queries -- TPC-H refresh runs, iterated LA
kernels like PageRank's SpMV loop -- therefore recompile the exact same
plan over and over.  The :class:`PlanCache` memoizes plans keyed on

* the **normalized SQL** (token-level canonical form: case and
  whitespace insensitive),
* the bound **parameter values** (selection constants are baked into
  trie row-masks, so each distinct value set is its own plan), and
* the **config fingerprint** (every optimizer toggle).

Catalog state is handled by *validation* rather than keying: each plan
snapshots the ``domain_version`` of every key domain it encodes
(:attr:`~repro.xcution.plan.PhysicalPlan.domain_versions`), and a
lookup of a stale plan counts as an **invalidation** -- the entry is
dropped and the caller recompiles.  Hits, misses, invalidations, and
evictions are all counted, and surfaced per-query through
:class:`~repro.xcution.stats.ExecutionStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..xcution.plan import PhysicalPlan

#: lookup outcomes
HIT = "hit"
MISS = "miss"
INVALIDATED = "invalidated"


@dataclass
class PlanCacheStats:
    """Cumulative counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def describe(self) -> str:
        return (
            f"plan cache: hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations}, evictions={self.evictions}"
        )


@dataclass
class PlanCache:
    """An LRU mapping of (sql, params, config) keys to physical plans."""

    capacity: int = 64
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self._entries: "OrderedDict[Tuple, PhysicalPlan]" = OrderedDict()
        # one engine's cache is shared by every serving thread; the LRU
        # reorder + counter pairs below must be atomic under concurrency
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: Tuple, catalog) -> Tuple[Optional[PhysicalPlan], str]:
        """Return ``(plan, outcome)``; outcome is hit/miss/invalidated.

        A cached plan whose domain versions no longer match ``catalog``
        is dropped (its tries hold codes from superseded dictionaries)
        and the lookup reports ``invalidated`` so the caller recompiles.
        """
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None, MISS
            if not plan.is_current(catalog):
                del self._entries[key]
                self.stats.invalidations += 1
                return None, INVALIDATED
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan, HIT

    def peek(self, key: Tuple, catalog) -> bool:
        """Whether ``key`` would hit, without touching counters or LRU order.

        Admission control uses this to classify a query as plan-cached
        *before* deciding whether to admit it (load shedding rejects
        non-cached work first); the real ``lookup`` still happens after
        admission and owns the hit/miss accounting.
        """
        with self._lock:
            plan = self._entries.get(key)
            return plan is not None and plan.is_current(catalog)

    def shed_lru(self, fraction: float = 0.5, keep: int = 1) -> int:
        """Drop the least-recently-used ``fraction`` of entries.

        The governor's memory-pressure signal calls this to give cached
        plan state (tries, annotation buffers) back before queries start
        failing admission.  Shed entries count as evictions.  Returns
        the number of entries dropped.
        """
        with self._lock:
            n_drop = min(
                max(0, len(self._entries) - max(0, keep)),
                int(len(self._entries) * fraction),
            )
            for _ in range(n_drop):
                self._entries.popitem(last=False)
            self.stats.evictions += n_drop
            return n_drop

    def store(self, key: Tuple, plan: PhysicalPlan) -> None:
        """Insert ``plan``, evicting the least recently used beyond capacity."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_stale(self, catalog) -> int:
        """Proactively drop every entry stale against ``catalog``."""
        with self._lock:
            stale = [k for k, p in self._entries.items() if not p.is_current(catalog)]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"PlanCache(size={len(self._entries)}/{self.capacity}, "
            f"{self.stats.describe()})"
        )
