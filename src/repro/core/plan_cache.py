"""A versioned LRU cache of compiled physical plans.

LevelHeaded's compile pipeline (parse → bind → translate → GHD → cost
-ordered WCOJ plan, Sections III-IV) is pure given three inputs: the
SQL text, the engine configuration, and the catalog's key-domain
dictionaries.  Repeated queries -- TPC-H refresh runs, iterated LA
kernels like PageRank's SpMV loop -- therefore recompile the exact same
plan over and over.  The :class:`PlanCache` memoizes plans keyed on

* the **normalized SQL** (token-level canonical form: case and
  whitespace insensitive),
* the bound **parameter values** (selection constants are baked into
  trie row-masks, so each distinct value set is its own plan), and
* the **config fingerprint** (every optimizer toggle).

Catalog state is handled by *validation* rather than keying: each plan
snapshots the ``domain_version`` of every key domain it encodes
(:attr:`~repro.xcution.plan.PhysicalPlan.domain_versions`), and a
lookup of a stale plan counts as an **invalidation** -- the entry is
dropped and the caller recompiles.

Cached plans are also validated against *their own estimates*: every
entry carries a :class:`~repro.optimizer.feedback.PlanFeedback` record
fed by the engine after each execution.  When the observed q-error
exceeds the threshold for ``drift_runs`` consecutive runs the entry is
marked drifted, and its next lookup counts as a **reoptimization**:
the entry is dropped, its accumulated per-node observations are parked
under the key (:meth:`corrections`), and the caller recompiles with
feedback-corrected cardinalities.

Hits, misses, invalidations, reoptimizations, capacity evictions, and
memory-pressure sheds are counted separately -- conflating sheds with
evictions (or counting one rejection twice) corrupts the very signals
the feedback loop reads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..optimizer.feedback import (
    DRIFT_CONSECUTIVE_RUNS,
    Q_ERROR_DRIFT_THRESHOLD,
    PlanFeedback,
    QueryFeedback,
)
from ..xcution.plan import PhysicalPlan

#: lookup outcomes
HIT = "hit"
MISS = "miss"
INVALIDATED = "invalidated"
REOPTIMIZED = "reoptimized"


@dataclass
class PlanCacheStats:
    """Cumulative counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: entries dropped by the capacity LRU policy (``store`` overflow).
    evictions: int = 0
    #: entries dropped by memory-pressure shedding (``shed_lru``) --
    #: deliberately separate from ``evictions``: shedding is a
    #: governance decision, not a working-set signal.
    shed: int = 0
    #: drifted entries dropped for a feedback-corrected recompile.
    reoptimizations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "shed": self.shed,
            "reoptimizations": self.reoptimizations,
        }

    def describe(self) -> str:
        return (
            f"plan cache: hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations}, evictions={self.evictions}, "
            f"shed={self.shed}, reoptimizations={self.reoptimizations}"
        )


@dataclass
class _CacheEntry:
    """One cached plan plus the drift record scoring its estimates."""

    plan: PhysicalPlan
    feedback: PlanFeedback
    #: lookup hits served by this entry (per-entry, unlike the cache's
    #: cumulative ``stats.hits``; the ``/debug/plans`` view shows both).
    hits: int = 0


@dataclass
class PlanCache:
    """An LRU mapping of (sql, params, config) keys to physical plans."""

    capacity: int = 64
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    #: drift rule: q_error_max > threshold for drift_runs consecutive
    #: executions marks the entry for re-optimization.
    q_error_threshold: float = Q_ERROR_DRIFT_THRESHOLD
    drift_runs: int = DRIFT_CONSECUTIVE_RUNS

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        #: feedback parked between a REOPTIMIZED lookup and the store of
        #: the corrected recompile (keyed like the entries).
        self._pending: Dict[Tuple, PlanFeedback] = {}
        # one engine's cache is shared by every serving thread; the LRU
        # reorder + counter pairs below must be atomic under concurrency
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: Tuple, catalog) -> Tuple[Optional[PhysicalPlan], str]:
        """Return ``(plan, outcome)``: hit/miss/invalidated/reoptimized.

        A cached plan whose domain versions no longer match ``catalog``
        is dropped (its tries hold codes from superseded dictionaries)
        and the lookup reports ``invalidated``.  A plan whose feedback
        record has drifted is dropped the same way and reports
        ``reoptimized`` -- the caller recompiles, and
        :meth:`corrections` supplies the observed cardinalities to
        recompile with.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None, MISS
            if not entry.plan.is_current(catalog):
                del self._entries[key]
                self._pending.pop(key, None)
                self.stats.invalidations += 1
                return None, INVALIDATED
            if entry.feedback.drifted:
                del self._entries[key]
                self._pending[key] = entry.feedback
                self.stats.reoptimizations += 1
                return None, REOPTIMIZED
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry.hits += 1
            return entry.plan, HIT

    def peek(self, key: Tuple, catalog) -> bool:
        """Whether ``key`` would hit, without touching counters or LRU order.

        Admission control uses this to classify a query as plan-cached
        *before* deciding whether to admit it (load shedding rejects
        non-cached work first); the real ``lookup`` still happens after
        admission and owns the hit/miss accounting.  A drifted entry
        does not count as cached: its lookup triggers a recompile.
        """
        with self._lock:
            entry = self._entries.get(key)
            return (
                entry is not None
                and entry.plan.is_current(catalog)
                and not entry.feedback.drifted
            )

    def corrections(self, key: Tuple) -> Dict[str, int]:
        """Observed per-node actuals for a pending reoptimization of ``key``."""
        with self._lock:
            pending = self._pending.get(key)
            return pending.corrections() if pending is not None else {}

    def record_feedback(self, key: Tuple, measured: QueryFeedback) -> bool:
        """Fold one execution's q-error measurement into ``key``'s entry.

        Returns True when the measurement *newly* marked the entry as
        drifted (the engine counts those as ``plans_drifted``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            return entry.feedback.record(measured)

    def debug_snapshot(self) -> List[Dict[str, object]]:
        """Per-entry cache state for live introspection (``/debug/plans``).

        One dict per cached plan, LRU order (least recently used
        first): the normalized SQL, plan mode, per-entry hit count, and
        the feedback drift record.  Built entirely under the cache lock
        from immutable values, so concurrent lookups never tear it.
        """
        with self._lock:
            out = []
            for key, entry in self._entries.items():
                out.append(
                    {
                        "sql": key[0],
                        "params": repr(key[1]) if key[1] else None,
                        "mode": entry.plan.mode,
                        "hits": entry.hits,
                        "feedback": entry.feedback.as_dict(),
                    }
                )
            return out

    def feedback_snapshot(self) -> List[Dict[str, object]]:
        """Per-entry feedback summaries (the CLI's ``\\feedback`` view)."""
        with self._lock:
            out = []
            for key, entry in self._entries.items():
                summary = entry.feedback.as_dict()
                summary["sql"] = key[0]
                out.append(summary)
            return out

    def shed_lru(self, fraction: float = 0.5, keep: int = 1) -> int:
        """Drop the least-recently-used ``fraction`` of entries.

        The governor's memory-pressure signal calls this to give cached
        plan state (tries, annotation buffers) back before queries start
        failing admission.  Shed entries are counted in ``stats.shed``
        (not ``evictions``: this is load shedding, not capacity
        pressure).  Returns the number of entries dropped.
        """
        with self._lock:
            n_drop = min(
                max(0, len(self._entries) - max(0, keep)),
                int(len(self._entries) * fraction),
            )
            for _ in range(n_drop):
                self._entries.popitem(last=False)
            self.stats.shed += n_drop
            return n_drop

    def store(self, key: Tuple, plan: PhysicalPlan) -> None:
        """Insert ``plan``, evicting the least recently used beyond capacity.

        A store that answers a pending reoptimization re-attaches the
        accumulated observations (via
        :meth:`~repro.optimizer.feedback.PlanFeedback.successor`) so
        the corrected plan keeps being scored; any other store starts a
        fresh feedback record under the cache's drift rule.
        """
        with self._lock:
            pending = self._pending.pop(key, None)
            feedback = (
                pending.successor()
                if pending is not None
                else PlanFeedback(
                    threshold=self.q_error_threshold, drift_runs=self.drift_runs
                )
            )
            self._entries[key] = _CacheEntry(plan=plan, feedback=feedback)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_stale(self, catalog) -> int:
        """Proactively drop every entry stale against ``catalog``."""
        with self._lock:
            stale = [
                k for k, e in self._entries.items() if not e.plan.is_current(catalog)
            ]
            for key in stale:
                del self._entries[key]
                self._pending.pop(key, None)
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pending.clear()

    def __repr__(self) -> str:
        return (
            f"PlanCache(size={len(self._entries)}/{self.capacity}, "
            f"{self.stats.describe()})"
        )
