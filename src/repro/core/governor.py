"""Query governance: deadlines, cooperative cancellation, admission control.

A serving engine cannot let one runaway query (a bad attribute order on
a cyclic join is the canonical case -- exactly what the Section VI icost
optimizer exists to avoid) block the process, nor let concurrent
callers blow a memory budget that is only enforced per query.  This
module is the resource-governance layer threaded through the whole
execute path:

* :class:`CancelToken` -- a deadline plus a cancellation flag that the
  generic-join node loop, the Yannakakis passes, the trie builder, and
  ``parfor`` workers poll at chunk granularity.  A fired token raises
  :class:`~repro.errors.QueryTimeoutError` or
  :class:`~repro.errors.QueryCancelledError`; the engine attaches the
  partial :class:`~repro.xcution.stats.ExecutionStats` and span tree so
  the killed query stays fully diagnosable.
* :class:`Governor` -- process-wide admission control: a query starts
  only once it holds a concurrency slot and its reserved share of the
  global memory budget (the share is then apportioned across parfor
  workers by the executor).  Waiters queue FIFO up to a bound; beyond
  it, callers get :class:`~repro.errors.RetryableAdmissionError`
  backpressure.  A load-shedding mode rejects non-cached plans first.
* :class:`QueryHandle` -- ``engine.submit(sql)``'s future-like handle:
  ``cancel()`` from any thread, ``result(timeout=...)`` to join.
* :func:`retry_admission` -- jittered exponential backoff around a
  callable that may raise :class:`RetryableAdmissionError`.

The degradation ladder under memory pressure (see docs/governance.md):
shed plan-cache LRU entries, spill aggregator state to sorted-sparse
runs, shed non-cached admissions, and only then fail the query.
"""

from __future__ import annotations

import random
import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from ..errors import (
    QueryCancelledError,
    QueryTimeoutError,
    RetryableAdmissionError,
)

__all__ = [
    "CancelToken",
    "Governor",
    "AdmissionSlot",
    "QueryHandle",
    "retry_admission",
    "cancel_scope",
    "current_cancel",
    "admission_scope",
    "current_admission_session",
]


# ---------------------------------------------------------------------------
# cooperative cancellation
# ---------------------------------------------------------------------------

#: operations between deadline clock reads (``tick`` granularity).  A
#: cancelled flag is checked on *every* tick; only the monotonic clock
#: read is amortized.
_TICK_STRIDE = 256


class CancelToken:
    """A deadline + cancellation flag polled cooperatively by executors.

    The token is cheap to poll: :meth:`tick` is an attribute compare per
    call and reads the clock only every ``stride`` accumulated
    operations, so hot loops can tick per value without measurable
    overhead.  :meth:`check` always reads the clock (used at phase
    boundaries).  Both raise :class:`QueryCancelledError` /
    :class:`QueryTimeoutError` once the token fires; the token is
    one-shot and shared safely across parfor worker threads
    (``cancel()`` is a single attribute store).
    """

    __slots__ = ("started", "_deadline", "_timeout_ms", "_reason", "_clock", "_ops", "_stride")

    def __init__(
        self,
        timeout_ms: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        stride: int = _TICK_STRIDE,
    ):
        self._clock = clock
        self.started = clock()
        self._timeout_ms = timeout_ms
        self._deadline = None if timeout_ms is None else self.started + timeout_ms / 1000.0
        self._reason: Optional[str] = None
        self._ops = 0
        self._stride = max(1, int(stride))

    # -- firing ---------------------------------------------------------------

    def cancel(self, reason: str = "cancelled by caller") -> bool:
        """Request cancellation; returns False if already fired."""
        if self._reason is not None:
            return False
        self._reason = reason
        return True

    @property
    def cancelled(self) -> bool:
        return self._reason is not None

    @property
    def timeout_ms(self) -> Optional[float]:
        return self._timeout_ms

    def elapsed_ms(self) -> float:
        return (self._clock() - self.started) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (None when no deadline set)."""
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - self._clock()) * 1000.0)

    # -- polling --------------------------------------------------------------

    def check(self) -> None:
        """Raise if the token has fired; always reads the clock."""
        if self._reason is not None:
            raise QueryCancelledError(
                f"query cancelled: {self._reason}", reason=self._reason
            )
        if self._deadline is not None and self._clock() > self._deadline:
            elapsed = self.elapsed_ms()
            raise QueryTimeoutError(
                f"query exceeded its {self._timeout_ms:g}ms deadline "
                f"({elapsed:.1f}ms elapsed)",
                timeout_ms=self._timeout_ms,
                elapsed_ms=elapsed,
            )

    def tick(self, ops: int = 1) -> None:
        """Amortized poll: count ``ops`` units of work, check periodically."""
        if self._reason is not None:
            self.check()
        self._ops += ops
        if self._ops >= self._stride:
            self._ops = 0
            self.check()


# A query's token is also visible through a thread-local scope so deep
# compile-phase code (the trie builder under ``build_plan``) can poll
# without plumbing a parameter through every storage call.  Thread-local
# on purpose: concurrent queries on different threads must not see each
# other's tokens (parfor workers receive the token explicitly instead).
_SCOPE = threading.local()


@contextmanager
def cancel_scope(token: Optional[CancelToken]):
    """Make ``token`` the ambient cancel token for this thread."""
    previous = getattr(_SCOPE, "token", None)
    _SCOPE.token = token
    try:
        yield token
    finally:
        _SCOPE.token = previous


def current_cancel() -> Optional[CancelToken]:
    """The ambient :class:`CancelToken` of this thread (None outside a scope)."""
    return getattr(_SCOPE, "token", None)


# A serving layer tags every admission with the client session it acts
# for, again through a thread-local scope so the tag never has to be
# plumbed through ``engine.query`` / ``PreparedStatement.execute``:
# the server wraps each request in ``admission_scope(session_id)`` and
# :meth:`Governor.admit` picks the tag up ambiently.
_ADMISSION_SCOPE = threading.local()


@contextmanager
def admission_scope(session: Optional[str]):
    """Attribute this thread's admissions to ``session`` (a label)."""
    previous = getattr(_ADMISSION_SCOPE, "session", None)
    _ADMISSION_SCOPE.session = session
    try:
        yield session
    finally:
        _ADMISSION_SCOPE.session = previous


def current_admission_session() -> Optional[str]:
    """This thread's ambient admission-session label (None outside)."""
    return getattr(_ADMISSION_SCOPE, "session", None)


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class AdmissionSlot:
    """One granted admission: a concurrency slot + a memory reservation.

    ``memory_share_bytes`` is this query's reserved share of the
    governor's global memory budget (None when no global budget is
    configured); the executor apportions it further across parfor
    workers.  ``session`` is the admission-session label the grant was
    attributed to (see :func:`admission_scope`; None for untagged
    callers).  Release through :meth:`Governor.release` (the engine
    does this in a ``finally``).
    """

    __slots__ = ("memory_share_bytes", "waited_seconds", "queued", "session", "_released")

    def __init__(
        self,
        memory_share_bytes: Optional[int],
        waited_seconds: float,
        queued: bool,
        session: Optional[str] = None,
    ):
        self.memory_share_bytes = memory_share_bytes
        self.waited_seconds = waited_seconds
        self.queued = queued
        self.session = session
        self._released = False


class _Waiter:
    __slots__ = ("event", "granted")

    def __init__(self):
        self.event = threading.Event()
        self.granted = False


class Governor:
    """Process-wide admission control over concurrency and memory.

    ``max_concurrency`` bounds simultaneously executing queries;
    ``global_memory_budget_bytes`` is split into equal per-slot shares
    so concurrent queries can never jointly exceed it;``max_queue``
    bounds how many callers may wait for a slot before backpressure
    (:class:`RetryableAdmissionError`) kicks in, and
    ``queue_timeout_ms`` bounds how long any one caller waits.  The
    FIFO grant order makes admission fair: a slot freed by a finishing
    query always goes to the longest waiter.

    A single governor can be shared by several engines (pass it to
    ``LevelHeadedEngine``/``repro.connect``); each engine mirrors the
    governor's decisions into its own metrics registry, and registered
    pressure listeners (plan caches, ...) are notified on
    :meth:`note_memory_pressure`.
    """

    def __init__(
        self,
        max_concurrency: Optional[int] = None,
        global_memory_budget_bytes: Optional[int] = None,
        max_queue: int = 32,
        queue_timeout_ms: Optional[float] = 10_000.0,
    ):
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = max_concurrency
        self.global_memory_budget_bytes = global_memory_budget_bytes
        self.max_queue = max_queue
        self.queue_timeout_ms = queue_timeout_ms
        self._lock = threading.Lock()
        self._active = 0
        self._waiters: deque[_Waiter] = deque()
        #: active slots per admission-session label (serving layers tag
        #: admissions via :func:`admission_scope`; untagged slots are
        #: not tracked here).
        self._session_active: Dict[str, int] = {}
        self._shedding = False
        self._pressure_listeners: List[Callable[[], None]] = []
        self._rng = random.Random(0x1eaded)
        #: cumulative decision counters (also mirrored per-engine into
        #: ``engine.metrics`` -- these are the cross-engine totals).
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "queued": 0,
            "rejected_queue_full": 0,
            "rejected_shedding": 0,
            "rejected_timeout": 0,
            # queue-full rejections that hit *uncompiled* work -- an
            # annotation on rejected_queue_full, deliberately not
            # prefixed rejected_ so that summing rejected_* counts each
            # turned-away query exactly once.
            "queue_full_uncached": 0,
            "memory_pressure_events": 0,
        }

    # -- configuration --------------------------------------------------------

    @property
    def load_shedding(self) -> bool:
        """Whether non-cached plans are currently being rejected."""
        return self._shedding

    def set_load_shedding(self, enabled: bool) -> None:
        self._shedding = bool(enabled)

    @property
    def memory_share_bytes(self) -> Optional[int]:
        """Each admitted query's reserved share of the global budget."""
        if self.global_memory_budget_bytes is None:
            return None
        slots = self.max_concurrency or 1
        return max(1, self.global_memory_budget_bytes // slots)

    def add_pressure_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired on :meth:`note_memory_pressure`."""
        self._pressure_listeners.append(listener)

    # -- admission ------------------------------------------------------------

    def _retry_hint_ms(self, base: float = 25.0) -> float:
        """A jittered backoff hint (uniform in [base, 2*base))."""
        with self._lock:
            jitter = self._rng.random()
        return base * (1.0 + jitter)

    def admit(
        self,
        cached: bool = False,
        token: Optional[CancelToken] = None,
        session: Optional[str] = None,
    ) -> AdmissionSlot:
        """Block until a slot is free; returns the granted slot.

        ``cached`` marks a query whose plan is already compiled (load
        shedding rejects non-cached plans first -- a cached plan costs
        no compile work and frees its slot sooner).  ``token`` bounds
        the wait by the query's own deadline.  ``session`` attributes
        the grant to a serving session (defaults to the thread's
        ambient :func:`admission_scope` label); per-session active
        counts appear in :meth:`snapshot` so a leaked slot is traceable
        to the client that leaked it.  Raises
        :class:`RetryableAdmissionError` on backpressure.
        """
        if session is None:
            session = current_admission_session()
        t0 = time.monotonic()
        waiter: Optional[_Waiter] = None
        with self._lock:
            if self._shedding and not cached:
                self.counters["rejected_shedding"] += 1
                raise RetryableAdmissionError(
                    "governor is load-shedding non-cached queries",
                    retry_after_ms=self._retry_hint_ms_locked(),
                    cause="shedding",
                )
            if self.max_concurrency is None or self._active < self.max_concurrency:
                # no contention (or unbounded): grant immediately, but
                # never overtake earlier FIFO waiters
                if not self._waiters or self.max_concurrency is None:
                    self._active += 1
                    self.counters["admitted"] += 1
                    return self._grant_locked(session, 0.0, queued=False)
            if len(self._waiters) >= self.max_queue:
                # one rejection, one rejected_* increment: the cause is
                # the full queue.  That it hit uncompiled work is an
                # annotation (queue_full_uncached), not a second
                # rejected_shedding count -- double-booking here made
                # rejection totals exceed the queries actually refused.
                self.counters["rejected_queue_full"] += 1
                if not cached:
                    self.counters["queue_full_uncached"] += 1
                raise RetryableAdmissionError(
                    f"admission queue full ({self.max_queue} waiting, "
                    f"{self._active} active)",
                    retry_after_ms=self._retry_hint_ms_locked(),
                    cause="queue_full",
                )
            waiter = _Waiter()
            self._waiters.append(waiter)
            self.counters["queued"] += 1

        deadline_ms = self.queue_timeout_ms
        if token is not None:
            remaining = token.remaining_ms()
            if remaining is not None:
                deadline_ms = (
                    remaining if deadline_ms is None else min(deadline_ms, remaining)
                )
        granted = waiter.event.wait(
            timeout=None if deadline_ms is None else deadline_ms / 1000.0
        )
        waited = time.monotonic() - t0
        if granted:
            with self._lock:
                return self._grant_locked(session, waited, queued=True)
        # timed out (or the token's deadline elapsed while queued):
        # withdraw from the queue -- unless a grant raced the timeout.
        with self._lock:
            if waiter.granted:
                return self._grant_locked(session, waited, queued=True)
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass
            self.counters["rejected_timeout"] += 1
        if token is not None:
            token.check()  # prefer the query's own timeout error
        raise RetryableAdmissionError(
            f"timed out waiting {waited * 1000:.0f}ms for an admission slot",
            retry_after_ms=self._retry_hint_ms(),
            cause="queue_timeout",
        )

    def _retry_hint_ms_locked(self, base: float = 25.0) -> float:
        return base * (1.0 + self._rng.random())

    def _grant_locked(
        self, session: Optional[str], waited: float, queued: bool
    ) -> AdmissionSlot:
        """Build the granted slot and book its session (lock held)."""
        if session is not None:
            self._session_active[session] = self._session_active.get(session, 0) + 1
        return AdmissionSlot(
            self.memory_share_bytes, waited, queued=queued, session=session
        )

    def release(self, slot: AdmissionSlot) -> None:
        """Free one slot, handing it to the longest waiter (FIFO)."""
        if slot is None or slot._released:
            return
        slot._released = True
        with self._lock:
            if slot.session is not None:
                remaining = self._session_active.get(slot.session, 0) - 1
                if remaining > 0:
                    self._session_active[slot.session] = remaining
                else:
                    self._session_active.pop(slot.session, None)
            # hand the slot straight to the next waiter: active count is
            # unchanged and the grant order is strictly FIFO
            while self._waiters:
                waiter = self._waiters.popleft()
                if not waiter.event.is_set():
                    waiter.granted = True
                    self.counters["admitted"] += 1
                    waiter.event.set()
                    return
            self._active -= 1

    # -- pressure -------------------------------------------------------------

    def note_memory_pressure(self) -> None:
        """Record a memory-pressure event and notify listeners.

        The engine calls this when a query dies on its memory budget;
        listeners implement the shedding side of the degradation ladder
        (the plan cache drops LRU entries, ...).
        """
        with self._lock:
            self.counters["memory_pressure_events"] += 1
            listeners = list(self._pressure_listeners)
        for listener in listeners:
            listener()

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_concurrency": self.max_concurrency,
                "global_memory_budget_bytes": self.global_memory_budget_bytes,
                "memory_share_bytes": self.memory_share_bytes,
                "max_queue": self.max_queue,
                "active": self._active,
                "waiting": len(self._waiters),
                "load_shedding": self._shedding,
                "sessions": dict(self._session_active),
                "counters": dict(self.counters),
            }

    def describe(self) -> str:
        """A printable status block (the CLI's ``\\governor``)."""
        snap = self.snapshot()
        lines = [
            "governor:",
            f"  max_concurrency: {snap['max_concurrency'] or 'unbounded'}",
            f"  global_memory_budget: "
            f"{snap['global_memory_budget_bytes'] or 'unbounded'}",
            f"  memory_share_per_query: {snap['memory_share_bytes'] or 'unbounded'}",
            f"  active: {snap['active']}  waiting: {snap['waiting']}"
            f"  (queue bound {snap['max_queue']})",
            f"  load_shedding: {'on' if snap['load_shedding'] else 'off'}",
        ]
        if snap["sessions"]:
            active = ", ".join(
                f"{name}={count}" for name, count in sorted(snap["sessions"].items())
            )
            lines.append(f"  sessions: {active}")
        for name in sorted(snap["counters"]):
            lines.append(f"  {name}: {snap['counters'][name]}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"Governor(active={snap['active']}, waiting={snap['waiting']}, "
            f"max_concurrency={self.max_concurrency}, "
            f"shedding={snap['load_shedding']})"
        )


def retry_admission(
    fn: Callable[[], object],
    attempts: int = 6,
    base_ms: float = 10.0,
    cap_ms: float = 250.0,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn``, retrying :class:`RetryableAdmissionError` with backoff.

    The delay doubles per attempt (capped at ``cap_ms``) and honours the
    error's own jittered ``retry_after_ms`` hint when it is larger, so
    a fleet of rejected callers does not stampede back in lockstep.
    The final attempt's error propagates.
    """
    delay_ms = base_ms
    for attempt in range(attempts):
        try:
            return fn()
        except RetryableAdmissionError as exc:
            if attempt == attempts - 1:
                raise
            sleep(max(delay_ms, exc.retry_after_ms) / 1000.0)
            delay_ms = min(cap_ms, delay_ms * 2)


# ---------------------------------------------------------------------------
# asynchronous handles
# ---------------------------------------------------------------------------


def _abandon_handle(token: CancelToken, done: threading.Event) -> None:
    """Finalizer for a garbage-collected, still-running QueryHandle.

    Module-level on purpose: a ``weakref.finalize`` callback must not
    hold a reference back to the handle it guards.
    """
    if not done.is_set():
        token.cancel("QueryHandle abandoned without result(), cancel(), or close()")


class QueryHandle:
    """A future-like handle over one in-flight query.

    Returned by ``engine.submit(sql, ...)``; the query runs on a
    background thread under its own :class:`CancelToken`.  ``cancel()``
    fires the token from any thread -- the executors notice at their
    next poll and the query dies with
    :class:`~repro.errors.QueryCancelledError` (re-raised from
    :meth:`result`).

    A handle owns a governor slot for as long as its query runs, so an
    abandoned handle must not pin the slot forever: :meth:`close`
    cancels a still-running query and waits for the slot to come back,
    handles work as context managers, and a handle that is simply
    dropped is caught by a ``weakref`` finalizer that fires the cancel
    token on garbage collection.  The serving layer relies on this for
    client-disconnect cleanup.
    """

    def __init__(self, token: CancelToken, sql: str):
        self.token = token
        self.sql = sql
        self._done = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None
        self._finalizer = weakref.finalize(self, _abandon_handle, token, self._done)

    # -- driver side ----------------------------------------------------------

    def _run(self, fn: Callable[[], object]) -> None:
        try:
            self._result = fn()
        except BaseException as exc:  # noqa: BLE001 -- handed to .result()
            self._exception = exc
        finally:
            self._done.set()

    # -- caller side ----------------------------------------------------------

    def cancel(self, reason: str = "cancelled via QueryHandle") -> bool:
        """Request cooperative cancellation; False if already finished."""
        if self._done.is_set():
            return False
        return self.token.cancel(reason)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._done.wait(timeout):
            raise TimeoutError(f"query still running: {self.sql!r}")
        return self._exception

    def result(self, timeout: Optional[float] = None):
        """Join the query: its :class:`ResultTable`, or its raised error."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"query still running: {self.sql!r}")
        if self._exception is not None:
            raise self._exception
        return self._result

    def close(self, timeout: Optional[float] = None) -> None:
        """Release the handle: cancel if still running, reclaim the slot.

        Safe to call any number of times and after ``result()``.  A
        still-running query is cancelled (reason ``"query handle
        closed"``) and ``close`` waits up to ``timeout`` seconds
        (default: forever) for the background thread to finish -- at
        which point its governor slot is guaranteed released.  The
        query's outcome (result or error) stays readable afterwards.
        """
        self._finalizer.detach()
        if not self._done.is_set():
            self.token.cancel("query handle closed")
        self._done.wait(timeout)

    def __enter__(self) -> "QueryHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"QueryHandle({self.sql!r}, {state})"
