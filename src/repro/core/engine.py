"""The LevelHeaded engine: the library's main entry point.

``LevelHeadedEngine`` ties the whole pipeline of Figure 2 together:
ingest structured data (delimited files, column dicts, dataframes) into
the catalog, then ``query(sql)`` parses, binds, translates to an AJAR
hypergraph, picks a GHD and attribute orders, and executes the generic
WCOJ plan (or the scan / BLAS fast paths), returning a result table.

The query surface is intentionally small:

* ``query(sql, params=None, config=None, collect_stats=False)`` -- run
  one statement; ``params`` fills ``?``/``:name`` placeholders, and
  ``collect_stats=True`` attaches executor counters as ``result.stats``.
* ``explain(sql, params=None, analyze=False, format="text"|"json")`` --
  describe the chosen plan; ``analyze=True`` also executes and reports
  the deterministic work counters.
* ``prepare(sql)`` -- compile once, execute many times
  (:class:`~repro.core.prepared.PreparedStatement`).

Plain ``query()`` calls transparently reuse compiled plans through a
versioned LRU :class:`~repro.core.plan_cache.PlanCache`; a catalog
registration that re-codes a key domain invalidates affected entries.

The :class:`~repro.xcution.plan.EngineConfig` toggles reproduce the
paper's ablations: attribute elimination, cost-based attribute
ordering, the relaxation rule, and BLAS routing can each be disabled.
"""

from __future__ import annotations

import dataclasses
import re
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..approx import (
    apply_estimation,
    build_sample,
    default_sample_name,
    has_usable_sample,
    maybe_rewrite,
    normalize_policy,
)
from ..errors import (
    AdmissionError,
    OutOfMemoryBudgetError,
    QueryCancelledError,
    QueryKilledError,
    QueryTimeoutError,
    ReproError,
    RetryableAdmissionError,
    UnsupportedQueryError,
)
from ..obs import (
    NULL_TRACER,
    FlightRecorder,
    InflightQuery,
    InflightRegistry,
    KernelProfiler,
    MetricsRegistry,
    QueryLog,
    Tracer,
    next_query_id,
    sql_hash,
)
from ..obs import activate as _activate_profiler
from ..optimizer.feedback import QueryFeedback, measure
from ..query.translate import CompiledQuery, translate
from ..sql.binder import bind
from ..sql.params import ParamValues, normalize_sql
from ..sql.parser import parse
from ..storage.catalog import Catalog
from ..storage.csv_loader import load_dataframe, load_table
from ..storage.schema import Schema
from ..storage.table import Table
from ..xcution.finalize import finalize_result
from ..xcution.plan import EngineConfig, PhysicalPlan, build_plan
from ..xcution.stats import ExecutionStats
from ..xcution.yannakakis import RawResult, execute_plan
from .governor import (
    AdmissionSlot,
    CancelToken,
    Governor,
    QueryHandle,
    cancel_scope,
    current_admission_session,
)
from .plan_cache import HIT, INVALIDATED, MISS, REOPTIMIZED, PlanCache
from .prepared import PreparedStatement
from .result import ResultTable

#: explain(format="json") schema: 2 added the top-level ``approx`` block
#: (schema 1 was the unversioned dict without this key).
EXPLAIN_SCHEMA_VERSION = 2

#: the textual APPROXIMATE prefix ("APPROXIMATE SELECT ...") -- detected
#: before parsing so the plan-cache key and config reflect the policy.
_APPROX_PREFIX = re.compile(r"^\s*approximate\b", re.IGNORECASE)


class LevelHeadedEngine:
    """An in-memory WCOJ query engine for BI and LA workloads."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        config: Optional[EngineConfig] = None,
        plan_cache_capacity: int = 64,
        governor: Optional[Governor] = None,
        default_timeout_ms: Optional[float] = None,
        flight_capacity: int = 256,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        self.config = config if config is not None else EngineConfig()
        self.plan_cache = PlanCache(plan_cache_capacity)
        #: always-on bounded ring of recently finished queries
        #: (:class:`~repro.obs.FlightRecorder`; ``/debug/flight``,
        #: the CLI's ``\\last``).
        self.flight = FlightRecorder(flight_capacity)
        #: queries currently inside the engine
        #: (:class:`~repro.obs.InflightRegistry`; ``/debug/queries``,
        #: the CLI's ``\\top``).
        self.inflight = InflightRegistry()
        #: engine-lifetime query metrics: queries served, p50/p95
        #: compile/execute latencies, cache hit rates, rows and bytes
        #: produced (:class:`~repro.obs.MetricsRegistry`).
        self.metrics = MetricsRegistry()
        #: optional :class:`~repro.obs.QueryLog`: when attached, every
        #: served query appends one JSONL event; with a slow-query
        #: threshold configured, ``query()`` forces tracing so slow
        #: events capture the plan and span tree.
        self.query_log: Optional[QueryLog] = None
        #: optional process-wide :class:`~repro.core.governor.Governor`
        #: gating query start on a concurrency slot and a share of the
        #: global memory budget; may be shared by several engines.
        self.governor = governor
        #: deadline applied to every query that does not pass its own
        #: ``timeout_ms`` (None: no default deadline).
        self.default_timeout_ms = default_timeout_ms
        if governor is not None:
            # the engine's contribution to the degradation ladder: under
            # memory pressure, give cached plan state (tries, annotation
            # buffers) back before queries start failing admission
            governor.add_pressure_listener(self._on_memory_pressure)

    # -- data ingestion ---------------------------------------------------------

    def register_table(self, table: Table) -> Table:
        """Register an existing table with the engine's catalog."""
        return self.catalog.register(table)

    def create_table(self, schema: Schema, **columns) -> Table:
        """Build a table from keyword columns and register it."""
        return self.register_table(Table.from_columns(schema, **columns))

    def load_csv(self, path: str, schema: Schema, delimiter: str = "|") -> Table:
        """Ingest a delimited file (dbgen-style) and register it."""
        return self.register_table(load_table(path, schema, delimiter=delimiter))

    def from_dataframe(self, frame, schema: Optional[Schema] = None, name: str = "dataframe") -> Table:
        """Ingest a Pandas-style dataframe (the paper's Python front-end)."""
        return self.register_table(load_dataframe(frame, schema=schema, name=name))

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def replace_table(self, table: Table) -> Table:
        """Re-register ``table`` under its existing name (new contents).

        Invalidates every cached plan, trie, and prepared statement
        built against the old rows -- and drops every materialized
        sample of the old table (:meth:`create_sample`), since their
        rows no longer describe the base.
        """
        replaced = self.catalog.replace(table)
        self.metrics.set_gauge("sample_bytes", self.catalog.sample_bytes())
        return replaced

    # -- approximate query processing (repro.approx) -----------------------------

    def create_sample(
        self,
        table: Union[str, Table],
        fraction: float,
        kind: str = "uniform",
        strata=(),
        seed: int = 0,
        name: Optional[str] = None,
    ) -> Table:
        """Materialize a deterministic sample of ``table`` into the catalog.

        The sample is a first-class catalog table (queryable by name,
        persisted by :func:`repro.storage.persist.save_catalog`) tied to
        the exact base-table object it was drawn from: replacing the
        base (:meth:`replace_table`) drops its samples.  ``kind`` is
        ``"uniform"`` (seeded Bernoulli row selection) or
        ``"stratified"`` (per-group sampling over ``strata`` columns,
        preserving every stratum key).  Identical arguments always
        produce a byte-identical sample.
        """
        base = table if isinstance(table, str) else table.name
        base_table = self.catalog.table(base)
        sample_name = name or default_sample_name(base, fraction, kind)
        sample = build_sample(
            base_table, sample_name, fraction,
            kind=kind, strata=tuple(strata), seed=seed,
        )
        self.catalog.register_sample(
            sample, base=base, fraction=fraction,
            kind=kind, strata=tuple(strata), seed=seed,
        )
        self.metrics.inc("samples_created")
        self.metrics.set_gauge("sample_bytes", self.catalog.sample_bytes())
        return sample

    def drop_sample(self, name: str):
        """Drop one materialized sample by its sample-table name."""
        meta = self.catalog.drop_sample(name)
        self.metrics.set_gauge("sample_bytes", self.catalog.sample_bytes())
        return meta

    def samples(self) -> List[Dict]:
        """Metadata for every registered sample, JSON-ready."""
        return [meta.as_dict() for meta in self.catalog.samples.values()]

    def register_matrix(
        self,
        name: str,
        array: Optional[np.ndarray] = None,
        *,
        rows: Optional[np.ndarray] = None,
        cols: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        n: Optional[int] = None,
        domain: Optional[str] = None,
    ):
        """Register a matrix as an annotated ``(i, j, v)`` relation.

        Two forms: ``register_matrix(name, array)`` stores a dense
        square numpy array cell by cell (enabling BLAS routing), and
        ``register_matrix(name, rows=..., cols=..., values=..., n=...)``
        stores sparse COO triples over an ``n``-sized dimension domain.
        ``domain`` names the shared dimension (default ``{name}_dim``);
        matrices and vectors sharing a domain are join-compatible.
        Returns a :class:`~repro.la.MatrixHandle` -- reference it in SQL
        by name, densify with ``.to_dense()``.
        """
        from ..la.matrix import MatrixHandle, _register_coo, _register_dense

        if array is not None:
            if rows is not None or cols is not None or values is not None:
                raise ValueError("pass either a dense array or COO triples, not both")
            array = np.asarray(array, dtype=np.float64)
            table = _register_dense(self.catalog, name, array, domain)
            size = array.shape[0]
        else:
            if rows is None or cols is None or values is None or n is None:
                raise ValueError(
                    "COO registration needs rows=, cols=, values=, and n="
                )
            table = _register_coo(self.catalog, name, rows, cols, values, n, domain)
            size = n
        return MatrixHandle(self.catalog, table, size, domain or f"{name}_dim")

    def register_vector(
        self,
        name: str,
        values: np.ndarray,
        *,
        domain: str,
        indices: Optional[np.ndarray] = None,
        n: Optional[int] = None,
    ):
        """Register a vector as an annotated ``(i, v)`` relation.

        ``domain`` must name an existing dimension domain (usually one
        a matrix was registered over).  Dense when ``indices`` is
        omitted; ``n`` overrides the dimension size for sparse vectors
        (defaults to the number of values).  Returns a
        :class:`~repro.la.VectorHandle`; densify with ``.to_vector()``.
        """
        from ..la.matrix import VectorHandle, _register_vector

        values = np.asarray(values, dtype=np.float64)
        table = _register_vector(self.catalog, name, values, domain, indices)
        size = n if n is not None else int(values.size)
        return VectorHandle(self.catalog, table, size, domain)

    # -- querying -----------------------------------------------------------------

    def prepare(self, sql: str, config: Optional[EngineConfig] = None) -> PreparedStatement:
        """Compile ``sql`` into a reusable :class:`PreparedStatement`.

        Placeholders (``?`` positional, ``:name`` named) become typed
        parameter slots filled at ``execute(params)`` time.  The
        compiled plan is captured together with the catalog domain
        versions it was built against and recompiles automatically when
        a registration invalidates it.
        """
        return PreparedStatement(self, sql, config=config)

    def compile(self, sql: str, config: Optional[EngineConfig] = None) -> PhysicalPlan:
        """Parse, bind, translate, and physically plan one query.

        Always compiles fresh (no cache) -- use this for plan
        inspection; ``query``/``prepare`` are the cached paths.
        """
        cfg = config or self.config
        stmt = parse(sql)
        approx_spec = None
        if cfg.approx == "force":
            stmt, approx_spec = maybe_rewrite(stmt, self.catalog)
        compiled = translate(bind(stmt, self.catalog))
        plan = build_plan(compiled, cfg)
        plan.approx = approx_spec
        return plan

    def execute(
        self,
        plan: PhysicalPlan,
        collect_stats: bool = False,
        trace: bool = False,
        profile: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
        partial: bool = False,
        query_id: Optional[str] = None,
    ) -> ResultTable:
        """Execute a compiled plan and decode its result.

        ``partial=True`` skips result finalization and returns raw
        partial aggregates (shard-worker mode; see
        :mod:`repro.xcution.finalize`).  ``query_id`` overrides the
        minted correlation id so a coordinator can stamp one id end to
        end across every shard's flight entry.
        """
        token = self._make_token(timeout_ms, cancel_token)
        tracer = Tracer() if trace else NULL_TRACER
        query_id = query_id or next_query_id()
        entry = self.inflight.register(
            query_id, None, session=current_admission_session()
        )
        slot: Optional[AdmissionSlot] = None
        try:
            with cancel_scope(token), tracer.span("query") as qspan:
                qspan.set(query_id=query_id)
                with tracer.span("admission.wait") as aspan:
                    slot = self._admit(cached=True, token=token, entry=entry)
                    if slot is not None:
                        aspan.set(
                            queued=slot.queued,
                            waited_ms=round(slot.waited_seconds * 1000, 3),
                        )
                return self._run_plan(
                    plan,
                    outcome=None,
                    collect_stats=collect_stats,
                    tracer=tracer,
                    profile=profile,
                    cancel=token,
                    slot=slot,
                    query_id=query_id,
                    inflight=entry,
                    partial=partial,
                )
        except BaseException as exc:
            self._note_query_failure(exc, entry)
            raise
        finally:
            self.inflight.finish(query_id)
            self._release(slot)

    def query(
        self,
        sql: str,
        params: ParamValues = None,
        config: Optional[EngineConfig] = None,
        collect_stats: bool = False,
        trace: bool = False,
        profile: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
        partial: bool = False,
        query_id: Optional[str] = None,
        approx=None,
    ) -> ResultTable:
        """Run one SQL query end to end.

        ``params`` fills ``?``/``:name`` placeholders (sequence or
        mapping).  Repeated queries reuse compiled plans through the
        engine's plan cache; with ``collect_stats=True`` the returned
        table's ``.stats`` carries the executor counters plus this
        call's cache outcome.  With ``trace=True`` the returned table's
        ``.trace`` is the root :class:`~repro.obs.Span` of a lifecycle
        trace (parse -> plan -> per-node execution -> decode), each span
        carrying wall time, scoped counters, and key payloads.  With
        ``profile=True`` the returned table's ``.profile`` is a
        :class:`~repro.obs.KernelProfiler` attributing execution per
        trie level and intersection kernel.

        ``timeout_ms`` (or the engine's ``default_timeout_ms``) sets a
        deadline covering compile *and* execute: the executors poll
        cooperatively at chunk granularity and the query dies with
        :class:`~repro.errors.QueryTimeoutError` carrying the partial
        stats and span tree.  ``cancel_token`` supplies an external
        :class:`~repro.core.governor.CancelToken` instead (fire it from
        any thread).  With a governor attached, the query first acquires
        an admission slot (and its share of the global memory budget) --
        see :class:`~repro.core.governor.Governor`.

        ``partial=True`` returns raw partial aggregates without
        finalization (shard-worker mode) and ``query_id`` overrides the
        minted correlation id -- see :meth:`execute`.

        ``approx`` opts the query into sample-based approximation
        (``repro.approx``): ``"force"``/``True`` runs on materialized
        samples whenever one covers a touched table (error bars on
        ``result.approx``), ``"allow"`` runs exact but degrades to
        approximate instead of failing when the governor rejects the
        query at admission, ``"never"``/``False`` pins exact execution.
        Default (None): the config's ``approx`` policy.  The SQL prefix
        ``APPROXIMATE SELECT ...`` is equivalent to ``approx="force"``.
        """
        cfg = config or self.config
        if _APPROX_PREFIX.match(sql or ""):
            policy = "force"
        else:
            policy = normalize_policy(approx, default=cfg.approx)
        if cfg.approx != policy:
            cfg = dataclasses.replace(cfg, approx=policy)
        if params is not None:
            return self.prepare(sql, config=cfg).execute(
                params,
                collect_stats=collect_stats,
                trace=trace,
                profile=profile,
                timeout_ms=timeout_ms,
                cancel_token=cancel_token,
                partial=partial,
                query_id=query_id,
            )
        token = self._make_token(timeout_ms, cancel_token)
        cached = self.governor is not None and self.plan_cache.peek(
            self._plan_key(sql, cfg), self.catalog
        )
        # a deadlined/cancellable query is always traced: if it is
        # killed, the error must carry the span tree of what ran
        tracer = (
            Tracer()
            if (trace or token is not None or self._forces_trace())
            else NULL_TRACER
        )
        query_id = query_id or next_query_id()
        entry = self.inflight.register(
            query_id, sql, session=current_admission_session()
        )
        slot: Optional[AdmissionSlot] = None
        degraded = False
        admission_error: Optional[RetryableAdmissionError] = None
        try:
            with cancel_scope(token), tracer.span("query") as qspan:
                qspan.set(query_id=query_id)
                with tracer.span("admission.wait") as aspan:
                    try:
                        slot = self._admit(
                            cached=cached, token=token, entry=entry,
                            count_rejected=policy != "allow",
                        )
                    except RetryableAdmissionError as exc:
                        # the shedding rung before queue_full rejection:
                        # an opted-in query with sample coverage runs
                        # approximately instead of failing retryable
                        if policy != "allow" or not self._approx_covers(sql):
                            if policy == "allow":
                                self._count_rejection(exc)
                            raise
                        degraded = True
                        admission_error = exc
                        cfg = dataclasses.replace(cfg, approx="force")
                        self.metrics.inc("degraded_to_approx")
                        aspan.set(degraded_to_approx=True, cause=exc.cause)
                    if slot is not None:
                        aspan.set(
                            queued=slot.queued,
                            waited_ms=round(slot.waited_seconds * 1000, 3),
                        )
                entry.phase = "compile"
                t0 = time.perf_counter()
                with tracer.span("compile"):
                    plan, outcome, key = self._cached_plan(sql, cfg, tracer)
                if degraded and plan.approx is None:
                    # coverage disappeared between the pre-check and the
                    # compile (a concurrent drop): the rejection stands
                    self._count_rejection(admission_error)
                    raise admission_error
                compile_seconds = (
                    time.perf_counter() - t0
                    if outcome in (MISS, INVALIDATED, REOPTIMIZED)
                    else None
                )
                return self._run_plan(
                    plan,
                    outcome,
                    collect_stats=collect_stats,
                    tracer=tracer,
                    compile_seconds=compile_seconds,
                    profile=profile,
                    sql=sql,
                    expose_trace=trace,
                    cancel=token,
                    slot=slot,
                    cache_key=key,
                    query_id=query_id,
                    inflight=entry,
                    partial=partial,
                    degraded=degraded,
                )
        except BaseException as exc:
            self._note_query_failure(exc, entry)
            raise
        finally:
            self.inflight.finish(query_id)
            self._release(slot)

    def submit(
        self,
        sql: str,
        params: ParamValues = None,
        config: Optional[EngineConfig] = None,
        collect_stats: bool = False,
        trace: bool = False,
        timeout_ms: Optional[float] = None,
        cancel_token: Optional[CancelToken] = None,
    ) -> QueryHandle:
        """Run ``query(sql, ...)`` on a background thread.

        Returns a :class:`~repro.core.governor.QueryHandle` immediately:
        ``handle.cancel()`` fires the query's cancel token from any
        thread (the executors notice at their next poll),
        ``handle.result(timeout=...)`` joins and returns the
        :class:`ResultTable` or re-raises the query's error.
        ``cancel_token`` shares an external token (a serving session's,
        say) instead of minting a fresh one.

        The handle owns its governor slot for as long as the query
        runs: release it deterministically with ``handle.close()`` (or
        a ``with`` block).  A handle that is dropped without
        ``result()``/``cancel()``/``close()`` is caught by a finalizer
        that cancels the query on garbage collection, so abandoned
        handles cannot pin admission slots.
        """
        token = self._make_token(timeout_ms, cancel_token) or CancelToken()
        handle = QueryHandle(token, sql)
        thread = threading.Thread(
            target=handle._run,
            args=(
                lambda: self.query(
                    sql,
                    params=params,
                    config=config,
                    collect_stats=collect_stats,
                    trace=trace,
                    cancel_token=token,
                ),
            ),
            name="repro-query",
            daemon=True,
        )
        thread.start()
        return handle

    def explain(
        self,
        sql: str,
        params: ParamValues = None,
        config: Optional[EngineConfig] = None,
        analyze: bool = False,
        format: str = "text",
    ) -> Union[str, Dict]:
        """Describe the chosen plan: GHD, attribute orders, costs.

        With ``analyze=True`` the query also executes and the output
        includes the executor's deterministic work counters
        (intersections performed, values iterated in Python loops,
        kernel invocations, ...) plus the plan-cache outcome.
        ``format`` is ``"text"`` (one printable block) or ``"json"``
        (a plain dict, ready for ``json.dumps``).
        """
        cfg = config or self.config
        if _APPROX_PREFIX.match(sql or "") and cfg.approx != "force":
            cfg = dataclasses.replace(cfg, approx="force")
        if params is not None:
            return self.prepare(sql, config=cfg).explain(
                params, analyze=analyze, format=format
            )
        plan, outcome, _ = self._cached_plan(sql, cfg)
        return self._explain_plan(plan, outcome, analyze=analyze, format=format)

    # -- governance machinery -------------------------------------------------

    def _make_token(
        self, timeout_ms: Optional[float], cancel_token: Optional[CancelToken]
    ) -> Optional[CancelToken]:
        """The query's cancel token: caller-supplied, or a fresh deadline."""
        if cancel_token is not None:
            return cancel_token
        effective = timeout_ms if timeout_ms is not None else self.default_timeout_ms
        if effective is None:
            return None
        return CancelToken(timeout_ms=effective)

    def _count_rejection(self, exc: RetryableAdmissionError) -> None:
        # one rejection, one total increment; the cause label splits
        # the total without double-counting any query
        self.metrics.inc("admission_rejected")
        if exc.cause:
            self.metrics.inc(f"admission_rejected_{exc.cause}")

    def _approx_covers(self, sql: Optional[str]) -> bool:
        """Whether ``sql`` could run approximately (degrade pre-check)."""
        if not sql:
            return False
        try:
            stmt = parse(sql)
        except Exception:
            return False
        if stmt.parameters:
            return False
        return has_usable_sample(stmt, self.catalog)

    def _admit(
        self,
        cached: bool,
        token: Optional[CancelToken],
        entry: Optional[InflightQuery] = None,
        count_rejected: bool = True,
    ) -> Optional[AdmissionSlot]:
        """Acquire an admission slot (None when no governor is attached).

        ``count_rejected=False`` leaves the rejection metrics to the
        caller -- the degrade-to-approximate path only counts a
        rejection when it actually rejects.
        """
        if self.governor is None:
            return None
        try:
            slot = self.governor.admit(cached=cached, token=token)
        except RetryableAdmissionError as exc:
            if count_rejected:
                self._count_rejection(exc)
            raise
        self.metrics.inc("admission_admitted")
        if entry is not None:
            entry.admission_wait_seconds = slot.waited_seconds
            entry.queued = slot.queued
        if slot.queued:
            self.metrics.inc("admission_queued")
            self.metrics.observe("admission_wait_seconds", slot.waited_seconds)
        return slot

    def _release(self, slot: Optional[AdmissionSlot]) -> None:
        if slot is not None and self.governor is not None:
            self.governor.release(slot)

    def _on_memory_pressure(self) -> None:
        """Governor pressure listener: shed plan-cache LRU entries."""
        shed = self.plan_cache.shed_lru()
        self.metrics.inc("memory_pressure_events")
        if shed:
            self.metrics.inc("plan_cache_shed_entries", shed)

    def _effective_budget(self, slot: Optional[AdmissionSlot]):
        """The memory-budget override for this run (or no-override)."""
        if slot is not None and slot.memory_share_bytes is not None:
            return slot.memory_share_bytes
        return None

    # -- correlation & flight recording -----------------------------------------

    def _note_query_failure(self, exc: BaseException, entry: InflightQuery) -> None:
        """Stamp the query_id onto the error and flight-record the failure.

        Runs for *every* exception leaving ``query``/``execute`` -- the
        kill paths already recorded their entry (``entry.recorded``), so
        this catches the rest: admission rejections, compile errors,
        plain execution bugs.
        """
        try:
            if getattr(exc, "query_id", None) is None:
                exc.query_id = entry.query_id
        except Exception:  # pragma: no cover -- exotic exceptions with slots
            pass
        if entry.recorded:
            return
        if isinstance(exc, QueryTimeoutError):
            outcome = "timeout"
        elif isinstance(exc, QueryCancelledError):
            outcome = "cancelled"
        elif isinstance(exc, OutOfMemoryBudgetError):
            outcome = "oom"
        elif isinstance(exc, AdmissionError):
            outcome = "rejected"
        else:
            outcome = "error"
        self._finish_flight(
            entry,
            outcome=outcome,
            execute_seconds=entry.elapsed_seconds(),
            error=str(exc),
        )

    def _finish_flight(
        self,
        entry: Optional[InflightQuery],
        *,
        outcome: str,
        plan: Optional[PhysicalPlan] = None,
        cache_outcome: Optional[str] = None,
        compile_seconds: Optional[float] = None,
        execute_seconds: Optional[float] = None,
        rows: int = 0,
        stats: Optional[ExecutionStats] = None,
        drifted: bool = False,
        bytes_out: int = 0,
        error: Optional[str] = None,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        """Write one flight-recorder entry for a finished query (once).

        Every record carries an ``annotations`` block with the
        ``strategy`` and ``feedback`` sub-blocks *uniformly present*
        (empty on admission rejections and compile failures, where no
        plan exists) -- ``/debug/flight`` consumers never need
        per-outcome key guards.  The approximate-execution annotation
        (``approx``) joins the block only when the query ran on samples.
        """
        if entry is None or entry.recorded:
            return
        entry.recorded = True
        nodes = plan.node_summaries() if plan is not None else []
        block: Dict[str, object] = dict(annotations or {})
        block["strategy"] = [
            {
                "node": summary.get("node_key"),
                "choice": (summary.get("strategy") or {}).get("choice"),
            }
            for summary in nodes
        ]
        block["feedback"] = {
            "q_error_max": (
                float(stats.q_error_max)
                if stats is not None and stats.q_error_max
                else None
            ),
            "drifted": bool(drifted),
        }
        record: Dict[str, object] = {
            "query_id": entry.query_id,
            "ts": round(time.time(), 6),
            "session": entry.session,
            "sql": entry.sql,
            "sql_hash": sql_hash(entry.sql),
            "outcome": outcome,
            "mode": plan.mode if plan is not None else None,
            "cache_outcome": cache_outcome,
            "queued": entry.queued,
            "admission_wait_ms": round(entry.admission_wait_seconds * 1000, 3),
            "compile_ms": (
                None if compile_seconds is None else round(compile_seconds * 1000, 4)
            ),
            "execute_ms": (
                None if execute_seconds is None else round(execute_seconds * 1000, 4)
            ),
            "rows": int(rows),
            "bytes_out": int(bytes_out),
            "cancel_checks": int(stats.cancel_checks) if stats is not None else 0,
            "nodes": [
                {
                    "node": summary.get("node_key"),
                    "order": list(summary.get("attrs") or ()),
                    "strategy": (summary.get("strategy") or {}).get("choice"),
                }
                for summary in nodes
            ],
            "q_error_max": (
                float(stats.q_error_max)
                if stats is not None and stats.q_error_max
                else None
            ),
            "drifted": bool(drifted),
            "annotations": block,
        }
        if error is not None:
            record["error"] = error
        self.flight.record(record)

    def debug_snapshot(
        self, what: str, n: Optional[int] = None, outcome: Optional[str] = None
    ) -> Dict[str, object]:
        """One live-introspection view, JSON-ready, from atomic snapshots.

        ``what`` selects the view the ``/debug/*`` HTTP endpoints and
        the ``debug`` wire frame expose: ``queries`` (in-flight),
        ``flight`` (the recorder ring; ``n`` and ``outcome`` filter),
        ``plans`` (plan-cache entries + feedback drift state),
        ``governor`` (slots, queue, per-session shares), or ``metrics``
        (the engine's counter/gauge/histogram registry -- the view a
        shard coordinator aggregates across workers).
        """
        if what == "queries":
            return {"count": len(self.inflight), "queries": self.inflight.snapshot()}
        if what == "flight":
            return {
                "capacity": self.flight.capacity,
                "recorded": self.flight.recorded,
                "entries": self.flight.snapshot(n=n, outcome=outcome),
            }
        if what == "plans":
            return {
                "capacity": self.plan_cache.capacity,
                "size": len(self.plan_cache),
                "stats": self.plan_cache.stats.as_dict(),
                "entries": self.plan_cache.debug_snapshot(),
            }
        if what == "governor":
            return {
                "governor": (
                    self.governor.snapshot() if self.governor is not None else None
                )
            }
        if what == "metrics":
            return {"metrics": self.metrics.as_dict()}
        raise ReproError(
            f"unknown debug view {what!r} "
            f"(one of: queries, flight, plans, governor, metrics)"
        )

    def debug(
        self, what: str, n: Optional[int] = None, outcome: Optional[str] = None
    ) -> Dict[str, object]:
        """:meth:`debug_snapshot` under the unified QuerySurface name.

        Every topology behind ``repro.connect()`` -- this engine, the
        remote client, the shard coordinator -- answers ``debug(what)``
        with the same view names.
        """
        return self.debug_snapshot(what, n=n, outcome=outcome)

    def close(self) -> None:
        """Release surface resources (a no-op for the in-process engine).

        Part of the QuerySurface contract: remote clients close their
        socket, shard coordinators stop their workers, and the engine has
        nothing to tear down -- callers can ``close()`` whatever
        ``repro.connect()`` returned without caring which topology it is.
        """

    # -- internal query machinery ---------------------------------------------

    def _plan_key(self, sql: str, cfg: EngineConfig) -> Tuple:
        key = (normalize_sql(sql), (), cfg.fingerprint())
        if cfg.approx == "force":
            # sample creation/drop must be picked up by the next
            # approximate query without flushing any cached exact plan
            key = key + (self.catalog.samples_epoch,)
        return key

    def _cached_plan(
        self, sql: str, cfg: EngineConfig, tracer=NULL_TRACER
    ) -> Tuple[PhysicalPlan, str, Tuple]:
        """Look up (or compile and cache) the plan for parameterless SQL.

        On a hit the SQL is never even parsed -- the normalized text,
        config fingerprint, and catalog domain versions fully determine
        the plan.  A ``reoptimized`` outcome recompiles with the cache's
        accumulated per-node observations overriding the estimates
        (:meth:`PlanCache.corrections`).  Returns ``(plan, outcome,
        cache_key)`` so execution can feed q-error measurements back to
        the entry.
        """
        key = self._plan_key(sql, cfg)
        with tracer.span("plan_cache.lookup") as span:
            plan, outcome = self.plan_cache.lookup(key, self.catalog)
            span.set(outcome=outcome)
        if plan is None:
            corrections = (
                self.plan_cache.corrections(key) if outcome == REOPTIMIZED else {}
            )
            with tracer.span("parse"):
                stmt = parse(sql)
            if stmt.parameters:
                raise UnsupportedQueryError(
                    "statement has parameter placeholders; pass params= or "
                    "use engine.prepare(sql)"
                )
            approx_spec = None
            if cfg.approx == "force":
                with tracer.span("approx.rewrite"):
                    stmt, approx_spec = maybe_rewrite(stmt, self.catalog)
            with tracer.span("bind"):
                bound = bind(stmt, self.catalog)
            with tracer.span("translate"):
                compiled = translate(bound)
            with tracer.span("physical_plan"):
                plan = build_plan(compiled, cfg, tracer=tracer, feedback=corrections)
            plan.approx = approx_spec
            self.plan_cache.store(key, plan)
            if outcome == REOPTIMIZED:
                self.metrics.inc("plan_reoptimizations")
        return plan, outcome, key

    def _forces_trace(self) -> bool:
        """Whether the attached query log needs every query traced."""
        return self.query_log is not None and self.query_log.captures_traces

    def enable_query_log(
        self, sink, slow_query_seconds: Optional[float] = None
    ) -> QueryLog:
        """Attach a :class:`~repro.obs.QueryLog` writing to ``sink``.

        ``sink`` is a path or file-like object; one JSON line per served
        query.  With ``slow_query_seconds`` set, queries at or above the
        threshold also capture the plan text and full span tree (the
        engine traces every query while such a log is attached).
        Returns the log; detach with ``engine.query_log = None``.
        """
        self.query_log = QueryLog(sink, slow_query_seconds=slow_query_seconds)
        return self.query_log

    def _run_plan(
        self,
        plan: PhysicalPlan,
        outcome: Optional[str],
        collect_stats: bool = False,
        tracer=None,
        compile_seconds: Optional[float] = None,
        profile: bool = False,
        sql: Optional[str] = None,
        expose_trace: bool = True,
        cancel: Optional[CancelToken] = None,
        slot: Optional[AdmissionSlot] = None,
        cache_key: Optional[Tuple] = None,
        query_id: str = "",
        inflight: Optional[InflightQuery] = None,
        partial: bool = False,
        degraded: bool = False,
    ) -> ResultTable:
        tracer = tracer or NULL_TRACER
        stats: Optional[ExecutionStats] = None
        if collect_stats or tracer.active or cancel is not None or cache_key is not None:
            # a governed query always carries stats (a killed query must
            # report the partial work it did), and so does a cacheable
            # one: per-node row counts feed the q-error drift record
            stats = ExecutionStats()
            stats.query_id = query_id
            self._note_cache_outcome(stats, outcome)
        if inflight is not None:
            inflight.phase = "execute"
            inflight.stats = stats
        profiler = KernelProfiler() if profile else None
        budget = self._effective_budget(slot)
        budget_kwargs = {} if budget is None else {"memory_budget_bytes": budget}
        t0 = time.perf_counter()
        try:
            with tracer.span("execute") as span:
                snapshot = stats.snapshot() if tracer.active else None
                if profiler is not None:
                    # activate around execution only: the profile attributes
                    # execute_plan, not compilation or result decode
                    t_exec = time.perf_counter()
                    with _activate_profiler(profiler):
                        raw = execute_plan(
                            plan,
                            stats=stats,
                            tracer=tracer,
                            profiler=profiler,
                            cancel=cancel,
                            **budget_kwargs,
                        )
                    profiler.execute_seconds = time.perf_counter() - t_exec
                else:
                    raw = execute_plan(
                        plan, stats=stats, tracer=tracer, cancel=cancel, **budget_kwargs
                    )
                if tracer.active:
                    span.set(mode=plan.mode, rows=raw.num_rows)
                    span.stats = stats.delta_since(snapshot)
        except (QueryKilledError, OutOfMemoryBudgetError) as exc:
            self._note_killed(
                exc,
                plan,
                stats,
                tracer,
                sql=sql,
                outcome=outcome,
                compile_seconds=compile_seconds,
                execute_seconds=time.perf_counter() - t0,
                query_id=query_id,
                inflight=inflight,
            )
            if isinstance(exc, OutOfMemoryBudgetError):
                if self.governor is not None:
                    self.governor.note_memory_pressure()
                if budget is not None and (
                    plan.config.memory_budget_bytes is None
                    or budget < plan.config.memory_budget_bytes
                ):
                    # the *governor's share*, not the query's own budget,
                    # was the binding constraint: concurrent callers get
                    # retryable backpressure, never an unhandled OOM
                    retry = RetryableAdmissionError(
                        f"query exceeded its admitted memory share "
                        f"({budget} bytes): {exc}",
                    )
                    retry.partial_stats = exc.partial_stats
                    raise retry from exc
            raise
        if inflight is not None:
            inflight.phase = "decode"
        with tracer.span("decode"):
            if partial:
                result = self._decode_partial(plan.compiled, plan, raw)
            else:
                result = self._decode(plan.compiled, plan, raw)
        approx_meta = None
        if not partial and plan.approx is not None:
            with tracer.span("approx.estimate"):
                approx_meta = apply_estimation(
                    result, plan.approx, mode="degraded" if degraded else "forced"
                )
            self.metrics.inc("approx_queries")
        execute_seconds = time.perf_counter() - t0
        _, drifted = self._record_feedback(plan, stats, cache_key)
        if collect_stats:
            result.stats = stats
        if tracer.active and expose_trace:
            # a trace forced by the slow-query log stays internal: the
            # caller didn't ask for result.trace
            result.trace = tracer.root
        if profiler is not None:
            result.profile = profiler
        result.query_id = query_id or None
        bytes_out = result.nbytes
        annotations: Dict[str, object] = {}
        if approx_meta is not None:
            annotations["approx"] = {
                "mode": approx_meta["mode"],
                "fraction": approx_meta["fraction"],
                "samples": [use["sample"] for use in approx_meta["samples"]],
                "errors": {
                    name: info["error"]
                    for name, info in approx_meta["columns"].items()
                },
            }
        self.metrics.record_query(
            execute_seconds,
            compile_seconds=compile_seconds,
            cache_outcome=outcome,
            rows=result.num_rows,
            bytes_materialized=bytes_out,
            groups_emitted=stats.groups_emitted if stats is not None else None,
        )
        log = self.query_log
        if log is not None:
            slow = (
                log.slow_query_seconds is not None
                and execute_seconds >= log.slow_query_seconds
            )
            log.record(
                sql=sql,
                mode=plan.mode,
                cache_outcome=outcome,
                compile_seconds=compile_seconds,
                execute_seconds=execute_seconds,
                rows=result.num_rows,
                plan_text=plan.explain() if slow else None,
                trace_root=tracer.root if slow else None,
                query_id=query_id or None,
                annotations=annotations,
            )
        self._finish_flight(
            inflight,
            outcome="ok",
            plan=plan,
            cache_outcome=outcome,
            compile_seconds=compile_seconds,
            execute_seconds=execute_seconds,
            rows=result.num_rows,
            stats=stats,
            drifted=drifted,
            bytes_out=bytes_out,
            annotations=annotations,
        )
        return result

    def _record_feedback(
        self,
        plan: PhysicalPlan,
        stats: Optional[ExecutionStats],
        cache_key: Optional[Tuple],
    ) -> Tuple[Optional[QueryFeedback], bool]:
        """Measure this run's q-error and feed it to the plan cache.

        Pairs the executed nodes' ``est_rows`` with the rows they
        actually produced, stamps the per-query q-error onto ``stats``,
        and -- for cached plans -- folds the measurement into the
        entry's drift record.  Returns ``(measurement, newly_drifted)``
        (measurement is None for scan/BLAS plans, which have no join
        estimates to score).
        """
        if stats is None or not stats.node_rows:
            return None, False
        measured = measure(plan, stats.node_rows)
        if measured is None:
            return None, False
        stats.q_error_max = measured.q_error_max
        stats.q_error_root = measured.q_error_root
        self.metrics.observe("q_error_max", measured.q_error_max)
        self.metrics.observe("q_error_root", measured.q_error_root)
        drifted = cache_key is not None and self.plan_cache.record_feedback(
            cache_key, measured
        )
        if drifted:
            self.metrics.inc("plans_drifted")
        return measured, drifted

    def _note_cache_outcome(self, stats: ExecutionStats, outcome: Optional[str]) -> None:
        if outcome == HIT:
            stats.plan_cache_hits += 1
        elif outcome == MISS:
            stats.plan_cache_misses += 1
        elif outcome == INVALIDATED:
            stats.plan_cache_invalidations += 1
        elif outcome == REOPTIMIZED:
            stats.plan_reoptimizations += 1

    def _note_killed(
        self,
        exc: Union[QueryKilledError, OutOfMemoryBudgetError],
        plan: PhysicalPlan,
        stats: Optional[ExecutionStats],
        tracer,
        sql: Optional[str],
        outcome: Optional[str],
        compile_seconds: Optional[float],
        execute_seconds: float,
        query_id: str = "",
        inflight: Optional[InflightQuery] = None,
    ) -> None:
        """Dress up a killed query: partial stats, trace, metrics, log."""
        if isinstance(exc, QueryTimeoutError):
            kind, metric = "timeout", "query_timeouts"
        elif isinstance(exc, QueryCancelledError):
            kind, metric = "cancelled", "query_cancellations"
        else:
            kind, metric = "oom", "query_oom"
        self.metrics.inc(metric)
        if query_id and getattr(exc, "query_id", None) is None:
            exc.query_id = query_id
        if stats is not None and exc.partial_stats is None:
            exc.partial_stats = stats
        if tracer.active:
            tracer.mark("killed", outcome=kind, execute_ms=execute_seconds * 1000)
        if getattr(exc, "trace_root", None) is None and tracer.active:
            exc.trace_root = tracer.root
        log = self.query_log
        if log is not None:
            log.record(
                sql=sql,
                mode=plan.mode,
                cache_outcome=outcome,
                compile_seconds=compile_seconds,
                execute_seconds=execute_seconds,
                rows=0,
                plan_text=plan.explain(),
                trace_root=tracer.root if tracer.active else None,
                outcome=kind,
                query_id=query_id or None,
            )
        self._finish_flight(
            inflight,
            outcome=kind,
            plan=plan,
            cache_outcome=outcome,
            compile_seconds=compile_seconds,
            execute_seconds=execute_seconds,
            rows=0,
            stats=stats,
            error=str(exc),
        )

    def _explain_plan(
        self,
        plan: PhysicalPlan,
        outcome: Optional[str],
        analyze: bool = False,
        format: str = "text",
    ) -> Union[str, Dict]:
        if format not in ("text", "json"):
            raise ValueError(f"explain format must be 'text' or 'json', got {format!r}")
        stats = None
        result = None
        trace_root = None
        measured = None
        if analyze:
            stats = ExecutionStats()
            self._note_cache_outcome(stats, outcome)
            tracer = Tracer()
            with tracer.span("query"):
                with tracer.span("execute") as span:
                    snapshot = stats.snapshot()
                    raw = execute_plan(plan, stats=stats, tracer=tracer)
                    span.set(mode=plan.mode, rows=raw.num_rows)
                    span.stats = stats.delta_since(snapshot)
                with tracer.span("decode"):
                    result = self._decode(plan.compiled, plan, raw)
            trace_root = tracer.root
            measured, _ = self._record_feedback(plan, stats, None)
        cache = self.plan_cache.stats
        if format == "json":
            plan_nodes = plan.node_summaries()
            if measured is not None:
                # pair each node summary with what the node actually did
                for summary in plan_nodes:
                    nf = measured.node(summary.get("node_key", ""))
                    if nf is not None:
                        summary["est_rows"] = float(nf.est_rows)
                        summary["actual_rows"] = int(nf.actual_rows)
                        summary["q_error"] = float(nf.q_error)
            return {
                "schema_version": EXPLAIN_SCHEMA_VERSION,
                "mode": plan.mode,
                "plan": plan.explain(),
                "approx": (
                    plan.approx.as_dict() if plan.approx is not None else None
                ),
                "plan_nodes": plan_nodes,
                "plan_cache": {"outcome": outcome, **cache.as_dict()},
                "domain_versions": dict(plan.domain_versions),
                "stats": stats.as_dict() if stats is not None else None,
                "feedback": measured.as_dict() if measured is not None else None,
                "result_rows": result.num_rows if result is not None else None,
                "trace": trace_root.as_dict() if trace_root is not None else None,
            }
        lines = [plan.explain()]
        if outcome is not None:
            lines.append(f"plan cache: {outcome} ({cache.describe()})")
        if stats is not None:
            lines.append(stats.describe())
        if measured is not None:
            lines.append(
                f"q-error: max={measured.q_error_max:.2f} "
                f"root={measured.q_error_root:.2f}"
            )
            for nf in measured.nodes:
                lines.append(
                    f"  {nf.node_key}: est_rows={nf.est_rows:.0f} "
                    f"actual_rows={nf.actual_rows} q_error={nf.q_error:.2f}"
                )
        if result is not None:
            lines.append(f"result rows: {result.num_rows}")
        if trace_root is not None:
            lines.append("trace:")
            lines.append(trace_root.render(1))
        return "\n".join(lines)

    # -- result decoding -------------------------------------------------------------

    def _decode(
        self, compiled: CompiledQuery, plan: PhysicalPlan, raw: RawResult
    ) -> ResultTable:
        key_env, agg_columns, n_rows = self._decode_env(compiled, plan, raw)
        return finalize_result(compiled, key_env, agg_columns, n_rows)

    def _decode_env(
        self, compiled: CompiledQuery, plan: PhysicalPlan, raw: RawResult
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], int]:
        """Decode a raw result into (group-key env, raw agg columns, rows).

        Group keys come back decoded through their dictionaries; the
        aggregate columns stay raw float64 (COUNT's int cast, the
        identity fill, and the output expressions are finalization --
        :func:`~repro.xcution.finalize.finalize_result`).
        """
        key_env: Dict[str, np.ndarray] = {}
        for position, (kind, ref) in enumerate(raw.group_layout):
            key_env[ref] = self._decode_component(
                compiled, plan, raw, kind, ref, raw.key_columns[position]
            )
        agg_columns: Dict[str, np.ndarray] = {
            agg_id: raw.matrix[:, a_idx] for a_idx, agg_id in enumerate(raw.agg_ids)
        }
        return key_env, agg_columns, raw.matrix.shape[0]

    def _decode_partial(
        self, compiled: CompiledQuery, plan: PhysicalPlan, raw: RawResult
    ) -> ResultTable:
        """Shard-worker decode: decoded group keys + raw partial aggregates.

        The returned table's columns are the group-key refs (decoded, so
        the coordinator merges on values, never on shard-local dictionary
        codes) followed by the aggregate slot ids as float64 partials.
        No identity fill, no COUNT cast, no output expressions, no
        HAVING/ORDER BY/LIMIT -- the coordinator applies those once,
        after the semiring merge.
        """
        key_env, agg_columns, _ = self._decode_env(compiled, plan, raw)
        names = list(key_env) + list(agg_columns)
        columns = list(key_env.values()) + [
            np.asarray(c, dtype=np.float64) for c in agg_columns.values()
        ]
        return ResultTable(names, columns)

    def _decode_component(self, compiled, plan, raw, kind, ref, column):
        if kind == "vertex":
            codes = np.asarray(column, dtype=np.int64)
            if not raw.keys_are_codes:
                return codes
            vertex = compiled.bound.vertex(ref)
            alias, attr_name = vertex.members[0]
            table = compiled.bound.tables[alias]
            dictionary = table._domain_dictionary(attr_name)
            return dictionary.decode(codes)
        # annotation component
        if not raw.keys_are_codes:
            return np.asarray(column)
        dictionary = None
        if plan.root is not None:
            for fetcher in plan.root.group_fetchers + plan.root.deferred_fetchers:
                if fetcher.ref_id == ref:
                    dictionary = fetcher.dictionary
                    break
        if dictionary is not None:
            return dictionary.decode(np.asarray(column, dtype=np.int64))
        return np.asarray(column)
